"""Quickstart: run one data-free attack (DFA-R) against a defended FL system.

This example builds the full pipeline by hand — dataset, model factory,
attack, defense, simulation — so you can see every public API involved.
It takes a few seconds on a laptop CPU.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import DfaHyperParameters, DfaR
from repro.data import load_dataset
from repro.defenses import MultiKrum
from repro.fl import FederatedSimulation, LocalTrainingConfig
from repro.metrics import attack_success_rate, defense_pass_rate
from repro.models import build_classifier_for_task


def main() -> None:
    # 1. A small synthetic stand-in for Fashion-MNIST (16x16 grayscale,
    #    10 classes).  Use image_size=28 / larger sizes for bigger runs.
    task = load_dataset("fashion-mnist", train_size=400, test_size=160, image_size=16, seed=0)

    # 2. Every client and the server share the same architecture.
    def model_factory():
        return build_classifier_for_task(task, architecture="small-cnn", seed=0)

    training = LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.25)

    # 3. Clean baseline: no attack, no defense -> the paper's `acc`.
    clean = FederatedSimulation(
        task=task,
        model_factory=model_factory,
        num_clients=20,
        clients_per_round=8,
        malicious_fraction=0.0,
        beta=0.5,
        training_config=training,
        seed=0,
    ).run(num_rounds=18)
    print(f"clean accuracy (no attack, no defense): {clean.max_accuracy:.2%}")

    # 4. The data-free DFA-R attack against the Multi-Krum defense.
    attack = DfaR(hyper=DfaHyperParameters(num_synthetic=20, synthesis_epochs=4))
    attacked = FederatedSimulation(
        task=task,
        model_factory=model_factory,
        num_clients=20,
        clients_per_round=8,
        malicious_fraction=0.2,
        beta=0.5,
        attack=attack,
        defense=MultiKrum(),
        training_config=training,
        seed=0,
    ).run(num_rounds=18)

    asr = attack_success_rate(clean.max_accuracy, attacked.max_accuracy)
    dpr = defense_pass_rate(attacked.records)
    print(f"attacked accuracy (DFA-R vs mKrum):     {attacked.max_accuracy:.2%}")
    print(f"attack success rate (ASR, Eq. 4):       {asr:.1f}%")
    print(f"defense pass rate  (DPR, Eq. 5):        {dpr:.1f}%")
    print()
    print("per-round accuracy trace:")
    print("  " + " ".join(f"{record.accuracy:.2f}" for record in attacked.records))


if __name__ == "__main__":
    main()
