"""Compare the data-free attacks (DFA-R, DFA-G) against the baselines.

Reproduces the structure of Table II at a small scale: for one dataset and a
set of defenses, run Fang, LIE, Min-Max, DFA-R and DFA-G and report the
maximum accuracy, ASR and DPR of each combination.

Run with:  python examples/attack_comparison.py [dataset]
           (dataset is one of fashion-mnist / cifar-10 / svhn; default fashion-mnist)
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentRunner, benchmark_scale
from repro.utils import format_table

ATTACKS = ("fang", "lie", "min-max", "dfa-r", "dfa-g")
DEFENSES = ("mkrum", "bulyan", "trmean", "median")


def main(dataset: str = "fashion-mnist") -> None:
    runner = ExperimentRunner()
    baseline = runner.baseline_accuracy(benchmark_scale(dataset))
    print(f"dataset={dataset}  clean accuracy acc = {baseline:.2%}\n")

    rows = []
    for defense in DEFENSES:
        for attack in ATTACKS:
            config = benchmark_scale(dataset, attack=attack, defense=defense)
            result = runner.run(config)
            rows.append(
                [
                    defense,
                    attack,
                    100.0 * result.max_accuracy,
                    result.asr,
                    result.dpr,
                ]
            )
    print(format_table(["defense", "attack", "acc_m (%)", "ASR (%)", "DPR (%)"], rows))
    print(
        "\nNote: DFA-R and DFA-G reach ASR comparable to the baselines although"
        " they use neither benign updates nor real data."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "fashion-mnist")
