"""Effect of data heterogeneity on attack success (the paper's Fig. 5 workload).

Sweeps the Dirichlet concentration β over {0.1, 0.5, 0.9} with the Bulyan
defense and reports the ASR of every attack for each heterogeneity level.
Lower β means more heterogeneous client data, which makes outlier detection
harder and attacks stronger.

Run with:  python examples/heterogeneity_study.py
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner, benchmark_scale
from repro.utils import format_table

ATTACKS = ("fang", "lie", "min-max", "dfa-r", "dfa-g")
BETAS = (0.1, 0.5, 0.9)


def main() -> None:
    runner = ExperimentRunner()
    rows = []
    for beta in BETAS:
        baseline = runner.baseline_accuracy(benchmark_scale("fashion-mnist", beta=beta))
        row = [f"beta={beta}", 100.0 * baseline]
        for attack in ATTACKS:
            config = benchmark_scale(
                "fashion-mnist", attack=attack, defense="bulyan", beta=beta
            )
            row.append(runner.run(config).asr)
        rows.append(row)

    headers = ["heterogeneity", "clean acc (%)"] + [f"ASR {a} (%)" for a in ATTACKS]
    print(format_table(headers, rows))
    print(
        "\nExpected shape (paper, Fig. 5): attack success generally increases as"
        " the data becomes more heterogeneous (smaller beta), because diverse"
        " benign updates give defenses a weaker reference for outlier detection."
    )


if __name__ == "__main__":
    main()
