"""REFD in action: defend against the data-free attacks with a reference dataset.

Reproduces the structure of Fig. 9 at a small scale: for DFA-R and DFA-G and
several heterogeneity levels (i.i.d. and Dirichlet β), compare the global
model accuracy under the proposed REFD defense and under Bulyan, next to the
attack-free baseline.

Run with:  python examples/refd_defense.py
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner, benchmark_scale
from repro.utils import format_table

BETAS = (None, 0.9, 0.5, 0.1)  # None = i.i.d.


def main() -> None:
    runner = ExperimentRunner()
    rows = []
    for attack in ("dfa-r", "dfa-g"):
        for beta in BETAS:
            beta_label = "iid" if beta is None else f"{beta:.1f}"
            baseline = runner.baseline_accuracy(benchmark_scale("fashion-mnist", beta=beta))
            accuracies = {}
            for defense in ("refd", "bulyan"):
                config = benchmark_scale(
                    "fashion-mnist", attack=attack, defense=defense, beta=beta
                )
                accuracies[defense] = runner.run(config).max_accuracy
            rows.append(
                [
                    attack,
                    beta_label,
                    100.0 * baseline,
                    100.0 * accuracies["refd"],
                    100.0 * accuracies["bulyan"],
                ]
            )
    print(
        format_table(
            ["attack", "beta", "no-attack acc (%)", "REFD acc (%)", "Bulyan acc (%)"], rows
        )
    )
    print(
        "\nREFD uses a balanced reference dataset at the server and filters the"
        " X lowest D-score updates (Eq. 8); it recovers most of the clean accuracy."
    )


if __name__ == "__main__":
    main()
