"""Fig. 7: convergence of the local synthetic-data optimization of DFA-R / DFA-G.

The paper plots the attacker's synthesis loss over local training epochs on
Fashion-MNIST for all four defenses: DFA-R *minimizes* its loss (cross-entropy
towards the uniform distribution) whereas DFA-G *maximizes* its loss
(cross-entropy towards the chosen class Ỹ); both converge within a few epochs.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Fig. 7): the filter-layer loss of DFA-R decreases and flattens within ~5\n"
    "epochs; the generator objective of DFA-G (cross-entropy towards Ỹ) increases and flattens;\n"
    "only a few epochs of local training are needed per round."
)


def _mean_trace(result) -> list:
    traces = [trace for trace in result.attack_synthesis_losses if trace]
    if not traces:
        return []
    length = min(len(trace) for trace in traces)
    return list(np.mean([trace[:length] for trace in traces], axis=0))


def test_fig7_synthesis_convergence(benchmark, runner, report):
    scenario_list = scenarios.fig7_scenarios(
        benchmark_scale, defenses=scenarios.PAPER_DEFENSES
    )
    # More synthesis epochs than the benchmark default so that the curve shape
    # (convergence to a plateau) is visible.
    scenario_list = [
        (label, config.with_overrides(synthesis_epochs=8)) for label, config in scenario_list
    ]
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )

    rows = []
    traces = {}
    for label, result in results:
        attack, defense = label.split("/")
        trace = _mean_trace(result)
        traces[label] = trace
        rows.append([attack, defense] + [float(v) for v in trace])
    headers = ["attack", "defense"] + [f"epoch {i}" for i in range(1, 9)]

    report(
        "Fig. 7 — Local synthesis-loss trajectory (mean over rounds, Fashion-MNIST)",
        format_table(headers, rows),
        _PAPER_NOTE,
    )

    assert len(results) == 8
    for label, trace in traces.items():
        assert len(trace) == 8
        if label.startswith("dfa-r"):
            assert trace[-1] <= trace[0]  # minimized
        else:
            assert trace[-1] >= trace[0]  # maximized
