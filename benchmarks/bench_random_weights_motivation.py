"""Sec. III-B motivation: random model weights rarely bypass mKrum / Bulyan.

The paper reports that updates with random model weights pass mKrum in only
2.62% (Fashion-MNIST) / 6.57% (CIFAR-10) of cases and Bulyan in 3.27% / 0%,
which motivates optimizing synthetic *data* rather than manipulating weights
directly.  This benchmark regenerates the corresponding defense pass rates.
"""

from __future__ import annotations

from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table


def test_random_weights_motivation(benchmark, runner, report):
    scenario_list = scenarios.random_weights_motivation(benchmark_scale)
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )

    rows = []
    for label, result in results:
        dataset, defense, _ = label.split("/")
        rows.append([dataset, defense, result.dpr, result.asr])

    report(
        "Sec. III-B — Defense pass rate of random-weight updates",
        format_table(["dataset", "defense", "DPR (%)", "ASR (%)"], rows),
        note=(
            "Paper reference: DPR 2.62% (Fashion-MNIST/mKrum), 6.57% (CIFAR-10/mKrum),\n"
            "3.27% (Fashion-MNIST/Bulyan), 0% (CIFAR-10/Bulyan). Expected shape: random\n"
            "weights are filtered out far more often than the optimized DFA updates\n"
            "(compare with the Fig. 4 benchmark)."
        ),
    )

    assert len(results) == len(scenario_list)
    for _, result in results:
        assert result.dpr is not None
        assert 0.0 <= result.dpr <= 100.0
    # Random weights should be a weak, mostly filtered attack.
    mean_dpr = sum(result.dpr for _, result in results) / len(results)
    assert mean_dpr < 60.0
