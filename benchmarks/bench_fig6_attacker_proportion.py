"""Fig. 6: ASR as a function of the attacker proportion (10% / 20% / 30%).

Fashion-MNIST with the mKrum (distance-based) and TRmean (statistics-based)
defenses.  The paper shows that more attackers yield higher attack success,
with DFA achieving the highest ASR in most settings.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Fig. 6): ASR grows with the attacker proportion for every attack;\n"
    "DFA-R usually achieves the best ASR, except for 10% attackers under mKrum where\n"
    "Min-Max is strongest."
)

_FRACTIONS = (0.1, 0.2, 0.3)
_DEFENSES = ("mkrum", "trmean")


def test_fig6_attacker_proportion(benchmark, grid_runner, report):
    scenario_list = scenarios.fig6_scenarios(
        benchmark_scale, fractions=_FRACTIONS, defenses=_DEFENSES
    )
    results = benchmark.pedantic(
        lambda: run_scenarios(grid_runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    blocks = []
    for defense in _DEFENSES:
        rows = []
        for attack in scenarios.PAPER_ATTACKS:
            row = [attack]
            for fraction in _FRACTIONS:
                label = f"{defense}/attackers={fraction:.0%}/{attack}"
                row.append(by_label[label].asr)
            rows.append(row)
        headers = ["attack"] + [f"ASR @ {int(f * 100)}% (%)" for f in _FRACTIONS]
        blocks.append(f"[defense: {defense}] (Fashion-MNIST, β = 0.5)\n" + format_table(headers, rows))

    report("Fig. 6 — ASR vs attacker proportion", "\n\n".join(blocks), _PAPER_NOTE)

    assert len(results) == len(_DEFENSES) * len(_FRACTIONS) * len(scenarios.PAPER_ATTACKS)

    # Shape check: averaged over attacks, 30% attackers should be at least as
    # damaging as 10% attackers.
    def mean_asr(fraction: float) -> float:
        key = f"attackers={fraction:.0%}"
        values = [r.asr for label, r in results if key in label and r.asr is not None]
        return float(np.mean(values))

    assert mean_asr(0.3) >= mean_asr(0.1) - 5.0
