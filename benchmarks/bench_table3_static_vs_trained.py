"""Table III: ablation of the synthetic-data optimization (static vs trained).

"Static" uses a randomly initialized filter layer (DFA-R) or generator
(DFA-G) with no optimization against the global model; "Trained" is the full
attack.  The paper shows that training according to the current global model
is necessary: it increases ASR for DFA-R and increases stealthiness (DPR) for
DFA-G.
"""

from __future__ import annotations

from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Table III): training the synthesizer raises the ASR of DFA-R in almost\n"
    "all settings (e.g. 18.2% -> 35.9% on Fashion-MNIST/mKrum) and raises the DPR of DFA-G\n"
    "(e.g. 37.4% -> 64.0% on CIFAR-10/Bulyan); DPR is N/A for TRmean and Median."
)

_DATASETS = ("fashion-mnist", "cifar-10")


def test_table3_static_vs_trained(benchmark, runner, report):
    scenario_list = scenarios.table3_scenarios(benchmark_scale, datasets=_DATASETS)
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    rows = []
    for dataset in _DATASETS:
        for attack in ("dfa-r", "dfa-g"):
            for defense in scenarios.PAPER_DEFENSES:
                static = by_label[f"{dataset}/{attack}/{defense}/static"]
                trained = by_label[f"{dataset}/{attack}/{defense}/trained"]
                rows.append(
                    [
                        dataset,
                        attack,
                        defense,
                        static.asr,
                        static.dpr,
                        trained.asr,
                        trained.dpr,
                    ]
                )

    report(
        "Table III — Static (untrained) vs trained synthetic-data generation",
        format_table(
            ["dataset", "attack", "defense", "static ASR", "static DPR", "trained ASR", "trained DPR"],
            rows,
        ),
        _PAPER_NOTE,
    )

    assert len(results) == len(_DATASETS) * 2 * 4 * 2
    # DPR must be undefined exactly for the statistical defenses.
    for label, result in results:
        defense = label.split("/")[2]
        if defense in ("trmean", "median"):
            assert result.dpr is None
        else:
            assert result.dpr is not None
