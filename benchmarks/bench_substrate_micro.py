"""Micro-benchmarks of the neural-network substrate.

Not a paper artifact: these measure the building blocks every experiment
relies on (forward/backward of the classifiers, one benign local-training
step, one DFA synthesis step), so that performance regressions in the
substrate are visible independently of the end-to-end experiment benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import DfaHyperParameters, DfaR
from repro.data.synthetic import SyntheticImageSpec, make_synthetic_task
from repro.fl.training import train_on_arrays
from repro.fl.types import AttackRoundContext, LocalTrainingConfig
from repro.models import CifarCNN, FashionCNN, SmallCNN
from repro.nn import functional as F
from repro.nn.serialization import get_flat_params
from repro.nn.tensor import Tensor


def test_fashion_cnn_forward_backward(benchmark):
    model = FashionCNN(rng=np.random.default_rng(0))
    images = np.random.default_rng(0).standard_normal((32, 1, 28, 28)).astype(np.float32)
    labels = np.random.default_rng(1).integers(0, 10, size=32)

    def step():
        model.zero_grad()
        loss = F.cross_entropy(model(Tensor(images)), labels)
        loss.backward()
        return loss.item()

    result = benchmark(step)
    assert np.isfinite(result)


def test_cifar_cnn_forward_backward(benchmark):
    model = CifarCNN(rng=np.random.default_rng(0))
    images = np.random.default_rng(0).standard_normal((16, 3, 32, 32)).astype(np.float32)
    labels = np.random.default_rng(1).integers(0, 10, size=16)

    def step():
        model.zero_grad()
        loss = F.cross_entropy(model(Tensor(images)), labels)
        loss.backward()
        return loss.item()

    result = benchmark(step)
    assert np.isfinite(result)


def test_benign_local_training_epoch(benchmark):
    spec = SyntheticImageSpec(name="micro", channels=1, image_size=16, noise_std=0.3)
    task = make_synthetic_task(spec, train_size=64, test_size=16, seed=0)
    images, labels = task.train.arrays()
    config = LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.2)

    def epoch():
        model = SmallCNN(in_channels=1, image_size=16, num_classes=10, width=8,
                         rng=np.random.default_rng(0))
        return train_on_arrays(model, images, labels, config, np.random.default_rng(0))[-1]

    result = benchmark(epoch)
    assert np.isfinite(result)


def test_dfa_r_synthesis_step(benchmark):
    spec = SyntheticImageSpec(name="micro", channels=1, image_size=16, noise_std=0.3)
    task = make_synthetic_task(spec, train_size=64, test_size=16, seed=0)

    def model_factory():
        return SmallCNN(in_channels=1, image_size=16, num_classes=10, width=8,
                        rng=np.random.default_rng(0))

    context = AttackRoundContext(
        round_number=0,
        global_params=get_flat_params(model_factory()),
        previous_global_params=None,
        model_factory=model_factory,
        num_classes=10,
        image_shape=(1, 16, 16),
        selected_malicious_ids=[0, 1],
        training_config=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.2),
        benign_num_samples=20,
        rng=np.random.default_rng(0),
    )

    def synthesize():
        attack = DfaR(hyper=DfaHyperParameters(num_synthetic=20, synthesis_epochs=4), seed=1)
        return attack.synthesize(context).shape[0]

    count = benchmark(synthesize)
    assert count == 20
