"""Fig. 9: REFD vs Bulyan accuracy under DFA across heterogeneity levels.

For DFA-R and DFA-G, the global model accuracy reached under the proposed
REFD defense is compared with the accuracy under Bulyan at four heterogeneity
levels (i.i.d. and Dirichlet β = 0.9 / 0.5 / 0.1), together with the
attack-free baseline accuracy.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Fig. 9): REFD significantly outperforms Bulyan, with the largest gap at\n"
    "high heterogeneity (β = 0.1, where Bulyan drops to ~40% on Fashion-MNIST while REFD stays\n"
    "above 70%); for i.i.d. data the two defenses are close; REFD accuracy is close to the\n"
    "no-attack baseline."
)

_DATASETS = ("fashion-mnist", "cifar-10")
_BETAS = (None, 0.9, 0.5, 0.1)


def test_fig9_refd_vs_bulyan(benchmark, runner, report):
    scenario_list = scenarios.fig9_scenarios(benchmark_scale, datasets=_DATASETS, betas=_BETAS)
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    rows = []
    for dataset in _DATASETS:
        for attack in ("dfa-r", "dfa-g"):
            for beta in _BETAS:
                beta_label = "iid" if beta is None else f"beta={beta}"
                baseline = runner.baseline_accuracy(benchmark_scale(dataset, beta=beta))
                refd = by_label[f"{dataset}/{attack}/{beta_label}/refd"]
                bulyan = by_label[f"{dataset}/{attack}/{beta_label}/bulyan"]
                rows.append(
                    [
                        dataset,
                        attack,
                        beta_label,
                        100.0 * baseline,
                        100.0 * refd.max_accuracy,
                        100.0 * bulyan.max_accuracy,
                    ]
                )

    report(
        "Fig. 9 — Accuracy of REFD vs Bulyan under the data-free attacks",
        format_table(
            ["dataset", "attack", "heterogeneity", "no-attack acc (%)", "REFD acc (%)", "Bulyan acc (%)"],
            rows,
        ),
        _PAPER_NOTE,
    )

    assert len(results) == len(_DATASETS) * 2 * len(_BETAS) * 2
    # Shape check: averaged over all settings, REFD should defend at least as
    # well as Bulyan against the data-free attacks it was designed for.
    refd_mean = float(np.mean([r.max_accuracy for label, r in results if label.endswith("/refd")]))
    bulyan_mean = float(
        np.mean([r.max_accuracy for label, r in results if label.endswith("/bulyan")])
    )
    assert refd_mean >= bulyan_mean - 0.05
