"""Fig. 5: ASR as a function of data heterogeneity (Dirichlet β) under Bulyan.

β ∈ {0.1, 0.5, 0.9} on Fashion-MNIST and CIFAR-10: the paper shows that
attacks become more effective as data grows more heterogeneous (smaller β)
because diverse benign updates make outlier detection harder.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Fig. 5): for every attack the ASR tends to increase with heterogeneity\n"
    "(β = 0.1 highest); Min-Max is usually the strongest under the aggressive Bulyan defense,\n"
    "with DFA-G overtaking it at low heterogeneity and DFA-R best at β = 0.1 on CIFAR-10."
)

_BETAS = (0.1, 0.5, 0.9)
_DATASETS = ("fashion-mnist", "cifar-10")


def test_fig5_heterogeneity_sweep(benchmark, grid_runner, report):
    scenario_list = scenarios.fig5_scenarios(benchmark_scale, datasets=_DATASETS, betas=_BETAS)
    results = benchmark.pedantic(
        lambda: run_scenarios(grid_runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    blocks = []
    for dataset in _DATASETS:
        rows = []
        for attack in scenarios.PAPER_ATTACKS:
            row = [attack]
            for beta in _BETAS:
                row.append(by_label[f"{dataset}/beta={beta}/{attack}"].asr)
            rows.append(row)
        headers = ["attack"] + [f"ASR @ beta={beta} (%)" for beta in _BETAS]
        blocks.append(f"[{dataset}] (defense: Bulyan)\n" + format_table(headers, rows))

    report("Fig. 5 — ASR vs data heterogeneity (Bulyan defense)", "\n\n".join(blocks), _PAPER_NOTE)

    assert len(results) == len(_DATASETS) * len(_BETAS) * len(scenarios.PAPER_ATTACKS)
    # Shape check: averaged over attacks and datasets, the most heterogeneous
    # setting should not be easier to defend than the least heterogeneous one.
    def mean_asr_at(beta: float) -> float:
        values = [
            result.asr
            for label, result in results
            if f"/beta={beta}/" in label and result.asr is not None
        ]
        return float(np.mean(values))

    assert mean_asr_at(0.1) >= mean_asr_at(0.9) - 10.0
