"""Helpers shared by the benchmark files (not collected as tests)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments import ExperimentResult, GridRunner
from repro.experiments.scenarios import Scenario

__all__ = ["run_scenarios", "results_by_label"]


def run_scenarios(
    runner, scenario_list: Sequence[Scenario]
) -> List[Tuple[str, ExperimentResult]]:
    """Run every (label, config) pair and return (label, result) pairs.

    ``runner`` is either the session :class:`ExperimentRunner` (serial,
    in-memory baseline sharing) or a :class:`GridRunner` (parallel dispatch
    with optional on-disk caching); both return the same shape.
    """
    if isinstance(runner, GridRunner):
        return runner.run(scenario_list)
    return [(label, runner.run(config)) for label, config in scenario_list]


def results_by_label(results: Sequence[Tuple[str, ExperimentResult]]) -> Dict[str, ExperimentResult]:
    """Index results by their scenario label."""
    return {label: result for label, result in results}
