"""Helpers shared by the benchmark files (not collected as tests)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import Scenario

__all__ = ["run_scenarios", "results_by_label"]


def run_scenarios(
    runner: ExperimentRunner, scenario_list: Sequence[Scenario]
) -> List[Tuple[str, ExperimentResult]]:
    """Run every (label, config) pair and return (label, result) pairs."""
    return [(label, runner.run(config)) for label, config in scenario_list]


def results_by_label(results: Sequence[Tuple[str, ExperimentResult]]) -> Dict[str, ExperimentResult]:
    """Index results by their scenario label."""
    return {label: result for label, result in results}
