"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see ``repro.experiments.presets.benchmark_scale``).  A single
session-scoped :class:`ExperimentRunner` is shared by all benchmarks so that
clean baselines (the ``acc`` of Eq. 4) are computed once per dataset setup;
sweep-style benchmarks instead go through a session-scoped
:class:`GridRunner`, which fans scenarios out across worker processes and
can reuse results across *sessions* via an on-disk cache.

Environment knobs
-----------------
``REPRO_BENCH_WORKERS``
    Scenario-level worker processes for the grid runner (default: one per
    core, capped at 4).
``REPRO_BENCH_CACHE``
    Directory for per-scenario result artifacts; unset disables the cache
    so every benchmark session measures real executions.

This module intentionally defines no importable helpers: test modules under
``tests/`` import shared code from ``tests/helpers.py``, and having the same
names importable from two ``conftest`` modules made the import ambiguous
(whichever directory hit ``sys.path`` first won).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentRunner, GridRunner


def bench_workers() -> int:
    """Scenario-level parallelism for sweep benchmarks."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if raw:
        return max(1, int(raw))
    return max(1, min(4, os.cpu_count() or 1))


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner with baseline caching."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def grid_runner() -> GridRunner:
    """Session-wide scenario-grid runner (parallel dispatch + optional cache)."""
    workers = bench_workers()
    return GridRunner(
        policy=f"process:{workers}" if workers > 1 else "serial",
        cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None,
    )


@pytest.fixture
def report(capsys):
    """Print a reproduction table straight to the terminal (bypassing capture)."""

    def _report(title: str, table: str, note: str = "") -> None:
        with capsys.disabled():
            print()
            print("=" * 88)
            print(title)
            print("=" * 88)
            print(table)
            if note:
                print(note)

    return _report
