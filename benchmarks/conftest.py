"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see ``repro.experiments.presets.benchmark_scale``).  A single
session-scoped :class:`ExperimentRunner` is shared by all benchmarks so that
clean baselines (the ``acc`` of Eq. 4) are computed once per dataset setup.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner with baseline caching."""
    return ExperimentRunner()


@pytest.fixture
def report(capsys):
    """Print a reproduction table straight to the terminal (bypassing capture)."""

    def _report(title: str, table: str, note: str = "") -> None:
        with capsys.disabled():
            print()
            print("=" * 88)
            print(title)
            print("=" * 88)
            print(table)
            if note:
                print(note)

    return _report
