"""Fig. 4: defense pass rate (DPR) of every attack under mKrum and Bulyan.

DPR (Eq. 5) is only defined for defenses that select whole updates, i.e.
mKrum and Bulyan.  The benchmark reuses the Table II scenarios restricted to
those defenses and reports the fraction of selected attacker clients whose
updates were accepted.
"""

from __future__ import annotations

from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Fig. 4): LIE and DFA-G have high DPR (often above 60-90%), Fang has the\n"
    "lowest DPR, Min-Max passes frequently despite large shifts, and DPR is generally higher on\n"
    "CIFAR-10 than on Fashion-MNIST because the more diverse benign updates give the defenses a\n"
    "weaker reference point."
)


def test_fig4_defense_pass_rate(benchmark, runner, report):
    scenario_list = scenarios.fig4_scenarios(benchmark_scale)
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    rows = []
    for dataset in scenarios.PAPER_DATASETS:
        for defense in ("mkrum", "bulyan"):
            for attack in scenarios.PAPER_ATTACKS:
                result = by_label[f"{dataset}/{defense}/{attack}"]
                rows.append([dataset, defense, attack, result.dpr])

    report(
        "Fig. 4 — Defense pass rate (DPR) under mKrum and Bulyan",
        format_table(["dataset", "defense", "attack", "DPR (%)"], rows),
        _PAPER_NOTE,
    )

    assert len(results) == 3 * 2 * 5
    for _, result in results:
        assert result.dpr is not None
        assert 0.0 <= result.dpr <= 100.0
