"""Table IV: ablation of the distance-based regularization term (Eq. 3).

The regularization steers the adversarial update's distance from the global
model to match the global model's own change in the previous round.  The
paper shows it increases both ASR and DPR, most visibly for DFA-R under
mKrum and for DFA-G under Bulyan.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Table IV, Fashion-MNIST): with regularization DFA-R/mKrum improves from\n"
    "ASR 17.7% / DPR 41.9% to ASR 35.9% / DPR 70.3%; DFA-G/Bulyan improves from ASR 22.3% /\n"
    "DPR 60.3% to ASR 27.1% / DPR 69.3%.  Expected shape: the regularized variant is at least\n"
    "as stealthy (DPR) as the unregularized one under the update-selecting defenses."
)


def test_table4_regularization_ablation(benchmark, runner, report):
    scenario_list = scenarios.table4_scenarios(benchmark_scale)
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    rows = []
    for attack in ("dfa-r", "dfa-g"):
        for defense in scenarios.PAPER_DEFENSES:
            without = by_label[f"{attack}/{defense}/without-reg"]
            with_reg = by_label[f"{attack}/{defense}/with-reg"]
            rows.append(
                [
                    attack,
                    defense,
                    without.asr,
                    without.dpr,
                    with_reg.asr,
                    with_reg.dpr,
                ]
            )

    report(
        "Table IV — Ablation of the distance-based regularization (Fashion-MNIST)",
        format_table(
            ["attack", "defense", "ASR w/o reg", "DPR w/o reg", "ASR w/ reg", "DPR w/ reg"], rows
        ),
        _PAPER_NOTE,
    )

    assert len(results) == 2 * 4 * 2
    # Averaged over the update-selecting defenses, regularization should not
    # make the attack dramatically easier to detect.
    def mean_dpr(mode: str) -> float:
        values = [
            r.dpr
            for label, r in results
            if label.endswith(mode) and r.dpr is not None
        ]
        return float(np.mean(values))

    assert mean_dpr("/with-reg") >= mean_dpr("/without-reg") - 20.0
