"""Table II: attack success rate (ASR) and maximum accuracy of all attacks.

The paper's main comparison: the five attacks (Fang, LIE, Min-Max, DFA-R,
DFA-G) against the four defenses (mKrum, Bulyan, TRmean, Median) on the three
datasets at Dirichlet β = 0.5 with 20% attackers.  The benchmark regenerates
the full grid at the reduced benchmark scale and prints one block per
dataset, mirroring the table's layout.
"""

from __future__ import annotations

from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (β = 0.5, 20% attackers): acc without attack/defense is 82% / 50% / 86%\n"
    "for Fashion-MNIST / CIFAR-10 / SVHN.  Expected shape: DFA-R and DFA-G reach ASR similar\n"
    "to or higher than the baselines (which need benign updates or real data); Min-Max is the\n"
    "strongest baseline; Fang and LIE are the weakest under update-selecting defenses; on\n"
    "CIFAR-10 every attack evades the defenses in at least half of the settings (ASR >= 50%)."
)


def test_table2_attack_success_rate(benchmark, runner, report):
    scenario_list = scenarios.table2_scenarios(benchmark_scale)
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    blocks = []
    for dataset in scenarios.PAPER_DATASETS:
        baseline = runner.baseline_accuracy(benchmark_scale(dataset))
        rows = []
        for defense in scenarios.PAPER_DEFENSES:
            for attack in scenarios.PAPER_ATTACKS:
                result = by_label[f"{dataset}/{defense}/{attack}"]
                rows.append(
                    [defense, attack, 100.0 * result.max_accuracy, result.asr]
                )
        table = format_table(["defense", "attack", "acc_m (%)", "ASR (%)"], rows)
        blocks.append(f"[{dataset}]  clean accuracy acc = {100.0 * baseline:.1f}%\n{table}")

    report("Table II — ASR and maximum accuracy under attack (β = 0.5)", "\n\n".join(blocks), _PAPER_NOTE)

    assert len(results) == 3 * 4 * 5
    for _, result in results:
        assert result.asr is not None
        assert result.asr <= 100.0
    # The data-free attacks must be competitive: on average within a factor of
    # the strongest baseline rather than orders of magnitude weaker.
    def mean_asr(attack: str) -> float:
        values = [r.asr for label, r in results if label.endswith("/" + attack)]
        return sum(values) / len(values)

    strongest_baseline = max(mean_asr(a) for a in ("fang", "lie", "min-max"))
    dfa_best = max(mean_asr("dfa-r"), mean_asr("dfa-g"))
    assert dfa_best > 0.0
    assert dfa_best > 0.3 * strongest_baseline
