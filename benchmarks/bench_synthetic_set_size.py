"""Sec. IV-A sensitivity study: ASR of DFA across the synthetic set size |S|.

The paper runs initial experiments with |S| in {20, 50, 100} (knowing benign
clients hold ~50 samples on CIFAR-10) and finds that the attack success rate
is largely insensitive to |S|, sometimes even favouring smaller sets.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_SIZES = (20, 50, 100)

_PAPER_NOTE = (
    "Paper reference (Sec. IV-A): DFA achieves similar ASR for |S| = 20, 50 and 100; the paper\n"
    "uses 50 for consistency.  Expected shape: no strong monotone dependence of ASR on |S|."
)


def test_synthetic_set_size_sensitivity(benchmark, runner, report):
    scenario_list = scenarios.synthetic_set_size_scenarios(
        benchmark_scale, sizes=_SIZES, defenses=("mkrum",)
    )
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    rows = []
    for attack in ("dfa-r", "dfa-g"):
        row = [attack]
        for size in _SIZES:
            row.append(by_label[f"{attack}/mkrum/S={size}"].asr)
        rows.append(row)

    report(
        "Sec. IV-A — ASR sensitivity to the synthetic set size |S| (Fashion-MNIST, mKrum)",
        format_table(["attack"] + [f"ASR @ |S|={s} (%)" for s in _SIZES], rows),
        _PAPER_NOTE,
    )

    assert len(results) == 2 * len(_SIZES)
    for _, result in results:
        assert result.asr is not None and np.isfinite(result.asr)
