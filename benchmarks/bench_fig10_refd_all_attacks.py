"""Fig. 10: accuracy of every defense (including REFD) against every attack.

The full defense-vs-attack grid on Fashion-MNIST and CIFAR-10 at β = 0.5 with
20% attackers, reported as the maximum global-model accuracy (higher is a
better defense), together with the no-attack / no-defense baseline.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Fig. 10): REFD defends well in general — best against LIE, second-best\n"
    "against Fang, close to the no-attack baseline against DFA-R/DFA-G — but is weaker than\n"
    "other defenses against Min-Max, whose scaled shift barely affects balance and confidence."
)

_DATASETS = ("fashion-mnist", "cifar-10")
_DEFENSES = ("mkrum", "bulyan", "trmean", "median", "refd")


def test_fig10_all_defenses_vs_all_attacks(benchmark, runner, report):
    scenario_list = scenarios.fig10_scenarios(
        benchmark_scale, datasets=_DATASETS, defenses=_DEFENSES
    )
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    blocks = []
    for dataset in _DATASETS:
        baseline = runner.baseline_accuracy(benchmark_scale(dataset))
        rows = []
        for attack in scenarios.PAPER_ATTACKS:
            row = [attack]
            for defense in _DEFENSES:
                row.append(100.0 * by_label[f"{dataset}/{attack}/{defense}"].max_accuracy)
            rows.append(row)
        headers = ["attack"] + [f"{d} acc (%)" for d in _DEFENSES]
        blocks.append(
            f"[{dataset}]  no-attack / no-defense baseline = {100.0 * baseline:.1f}%\n"
            + format_table(headers, rows)
        )

    report("Fig. 10 — Global accuracy of all defenses against all attacks", "\n\n".join(blocks), _PAPER_NOTE)

    assert len(results) == len(_DATASETS) * len(scenarios.PAPER_ATTACKS) * len(_DEFENSES)
    # Shape check: against the data-free attacks, REFD should be at least as
    # good as the weakest classical defense on average.
    dfa_labels = [l for l, _ in results if "/dfa-" in l]
    refd_acc = float(np.mean([by_label[l].max_accuracy for l in dfa_labels if l.endswith("/refd")]))
    classic = [
        float(np.mean([by_label[l].max_accuracy for l in dfa_labels if l.endswith("/" + d)]))
        for d in ("mkrum", "bulyan", "trmean", "median")
    ]
    assert refd_acc >= min(classic) - 0.05
