"""Extension benchmarks: the paper's future-work directions.

Two ablations beyond the published evaluation, both called out in the paper's
conclusion / Sec. V-A as future work and implemented in this repository:

* **Hybrid data** — "check whether combining synthetic and real data in an
  attack can improve attack effectiveness": sweep the synthetic fraction of
  :class:`repro.attacks.DfaHybrid` from pure real data to pure DFA.
* **Adaptive α for REFD** — "it can also be adaptive and learned over
  epochs": compare plain REFD (α = 1) with :class:`repro.defenses.AdaptiveRefd`
  against a bias-style attack (DFA-G) and a confidence-style attack (DFA-R).
"""

from __future__ import annotations

from harness import run_scenarios

from repro.experiments import benchmark_scale
from repro.utils import format_table

_FRACTIONS = (0.0, 0.5, 1.0)


def test_hybrid_synthetic_fraction_sweep(benchmark, runner, report):
    scenario_list = []
    for fraction in _FRACTIONS:
        config = benchmark_scale(
            "fashion-mnist",
            attack="dfa-hybrid",
            defense="mkrum",
            attack_kwargs={"synthetic_fraction": fraction, "variant": "dfa-r"},
        )
        scenario_list.append((f"synthetic={fraction:.0%}", config))

    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )

    rows = [[label, result.asr, result.dpr] for label, result in results]
    report(
        "Future work — DFA-Hybrid: mixing synthetic and real attacker data (mKrum)",
        format_table(["synthetic fraction", "ASR (%)", "DPR (%)"], rows),
        note=(
            "Paper conclusion: combining synthetic and real data is left as future work.\n"
            "This sweep measures how the attack behaves as the malicious training set moves\n"
            "from pure real data (0%) to pure optimized synthetic data (100%)."
        ),
    )

    assert len(results) == len(_FRACTIONS)
    for _, result in results:
        assert result.asr is not None


def test_adaptive_refd_vs_plain_refd(benchmark, runner, report):
    scenario_list = []
    for attack in ("dfa-r", "dfa-g"):
        for defense in ("refd", "adaptive-refd"):
            config = benchmark_scale("fashion-mnist", attack=attack, defense=defense)
            scenario_list.append((f"{attack}/{defense}", config))

    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    rows = []
    for attack in ("dfa-r", "dfa-g"):
        rows.append(
            [
                attack,
                100.0 * by_label[f"{attack}/refd"].max_accuracy,
                100.0 * by_label[f"{attack}/adaptive-refd"].max_accuracy,
            ]
        )
    report(
        "Future work — Adaptive-α REFD vs plain REFD (Fashion-MNIST, β = 0.5)",
        format_table(["attack", "REFD acc (%)", "adaptive REFD acc (%)"], rows),
        note=(
            "Sec. V-A suggests learning the D-score weight α over rounds.  The adaptive variant\n"
            "shifts α towards whichever statistic (balance vs confidence) better separates the\n"
            "received updates; it should match plain REFD against both DFA variants."
        ),
    )

    assert len(results) == 4
    for attack in ("dfa-r", "dfa-g"):
        adaptive = by_label[f"{attack}/adaptive-refd"].max_accuracy
        plain = by_label[f"{attack}/refd"].max_accuracy
        assert adaptive >= plain - 0.15
