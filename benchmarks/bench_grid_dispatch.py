"""Benchmarks of the multi-host dispatch layer.

Not a paper artifact: these quantify what the grid-level dataset store saves
per cell (attach-and-memoize vs regenerating the synthetic dataset) and what
a claim-lease acquire/release cycle costs, so the coordination overhead of a
sharded sweep stays visibly negligible next to cell runtime.
"""

from __future__ import annotations

from repro.experiments import smoke_scale
from repro.experiments.dispatch import (
    ClaimLedger,
    DatasetBroker,
    load_task_for,
    resolve_task,
)


def _config():
    return smoke_scale("fashion-mnist", attack="lie", defense="mkrum")


def test_dataset_regeneration_per_cell(benchmark):
    """What every cell of a sweep used to pay: a full dataset generation."""
    config = _config()
    task = benchmark(load_task_for, config)
    assert len(task.train.images) == config.train_size


def test_dataset_attach_from_grid_store(benchmark):
    """What a cell pays under the grid-level store: a registry lookup onto
    read-only views of the once-published segment."""
    config = _config()
    with DatasetBroker(use_shared_memory=True) as broker:
        broker.publish([config])
        task = benchmark(resolve_task, config)
        assert task is not None and not task.train.images.flags.writeable


def test_claim_acquire_release_cycle(benchmark, tmp_path):
    """One lease acquire + release — the per-cell coordination overhead of a
    multi-runner sweep."""
    ledger = ClaimLedger(tmp_path, "bench-runner", ttl=60)
    counter = iter(range(10_000_000))

    def cycle():
        cell = f"cell{next(counter)}"
        assert ledger.try_claim(cell)
        ledger.release(cell)

    benchmark(cycle)
