"""Hot-path microbenchmarks: conv kernels, flat params, dispatch, REFD scoring.

Every metric compares the *current* implementation against an in-file copy of
the pre-PR ("legacy") implementation, so the speedups are machine-fair — the
baseline is recomputed on whatever machine runs the benchmark.  The
end-to-end round metric additionally records the absolute pre-PR round time
measured on the reference machine when the optimisation PR was authored (see
``PRE_PR_REFERENCE``).

Run standalone to write ``BENCH_hotpath.json``::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --output BENCH_hotpath.json

or with ``--check`` to additionally enforce the (generous) CI regression
thresholds.  It also runs under pytest like the other benchmarks::

    python -m pytest benchmarks/bench_hotpath.py

Metric notes
------------
``conv_bwd_params`` is the backward pass as the training loop actually runs
it for an input layer: the images tensor does not require grad, so the new
kernels skip the ``grad_x`` column scatter entirely (the legacy kernels
always computed it).  ``conv_step_all_grads`` is a full forward+backward with
every gradient required — the mid-layer profile.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pickle
import platform
import sys
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.defenses import Refd
from repro.defenses.distances import pairwise_sq_distances
from repro.experiments import benchmark_scale, build_simulation
from repro.fl.dispatch_policy import CostModel, DispatchPolicy
from repro.fl.faults import ResilienceConfig
from repro.fl.executor import (
    ParallelExecutor,
    ShardRef,
    SharedArrayStore,
    SharedParamsLease,
)
from repro.fl.training import predict_proba
from repro.models import ClassifierFactory
from repro.fl.types import DefenseContext, ModelUpdate
from repro.models import CifarCNN, SmallCNN
from repro.nn import functional as F
from repro.nn import trace as nn_trace
from repro.nn.serialization import get_flat_params, set_flat_params
from repro.nn.tensor import Tensor
from repro.utils import format_table

# Absolute end-to-end round time of the pre-PR code on the machine that
# authored the optimisation PR (serial FashionCNN/28px/REFD round, see
# ``_e2e_config``).  Kernel metrics do not use this — they re-measure their
# own legacy baselines in-process.
PRE_PR_REFERENCE = {
    "e2e_round_serial_s": 0.1290,
    "e2e_round_process2_s": 0.1420,
    "machine": "Linux-6.18.5-fc-v18-x86_64 (1 CPU, numpy 2.4.6, OpenBLAS)",
}

#: Generous CI regression thresholds (the measured speedups are well above
#: these; the slack absorbs noisy shared runners).
CHECK_THRESHOLDS = {
    "conv_fwd": 1.15,
    "conv_bwd_params": 1.5,
    "conv_step_all_grads": 1.0,
    "flat_roundtrip": 1.2,
    "refd_scoring": 1.0,
    "round_dispatch_shm": 0.7,
    # Shrink factor of a dispatched process-backend task payload once the
    # shard store carries the image/label arrays (deterministic, not timing).
    "shard_broadcast": 4.0,
    # Sanity bound, not a speedup claim: REFD process fan-out must not be
    # pathologically slower than the fused serial loop even on the 1-2 core
    # CI runners where dispatch overhead dominates; multi-core machines see
    # > 1x.
    "refd_fanout": 0.25,
    # Overhead bound for a *correctness* fix: the exact float64 distance
    # plane is necessarily slower than the float32 BLAS Gram trick it
    # replaced (which catastrophically cancelled on near-duplicate
    # updates, see bench_distance_block); ~0.05x measured, bound at 0.02x.
    "distance_block": 0.02,
    "e2e_round": 1.2,
    # The adaptive policy must track the best static backend at bench scale:
    # its headline is min(speedup vs serial, speedup vs best static), so the
    # bound asserts it is never more than ~10% slower than either.
    "adaptive_dispatch": 0.9,
    # Overhead bound for the fault-tolerance plane: a round under an armed
    # (but event-free) ResilienceConfig must stay within ~2% of the plain
    # round loop — the recovery machinery may not tax the fault-free path.
    "fault_hooks": 0.98,
    # Recorded-tape training vs the eager engine on a full FashionCNN/REFD
    # round at the small local batch the tape targets (per-step framework
    # overhead dominant); measured ~1.3x as the median of paired rounds.
    "trace_replay": 1.15,
}


# ----------------------------------------------------------------------
# Legacy (pre-PR) kernel implementations, kept verbatim for fair baselines
# ----------------------------------------------------------------------
def _legacy_im2col(x, kernel, stride, padding):
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, out_h * out_w), out_h, out_w


def _legacy_col2im(cols, input_shape, kernel, stride, padding):
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def _legacy_conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor], stride, padding):
    """The pre-PR conv2d: einsum kernels, every gradient always computed."""
    x_data, w_data = x.data, weight.data
    out_channels = w_data.shape[0]
    kh, kw = w_data.shape[2], w_data.shape[3]
    cols, out_h, out_w = _legacy_im2col(x_data, (kh, kw), stride, padding)
    w_mat = w_data.reshape(out_channels, -1)
    out = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
    out = out.reshape(x_data.shape[0], out_channels, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, out_channels, 1, 1)
    input_shape = x_data.shape

    def backward(grad):
        grad_mat = grad.reshape(grad.shape[0], out_channels, -1)
        grad_w = np.einsum("nol,nfl->of", grad_mat, cols, optimize=True)
        grad_w = grad_w.reshape(w_data.shape)
        grad_cols = np.einsum("of,nol->nfl", w_mat, grad_mat, optimize=True)
        grad_x = _legacy_col2im(grad_cols, input_shape, (kh, kw), stride, padding)
        grad_b = grad.sum(axis=(0, 2, 3)) if bias is not None else None
        if bias is not None:
            return (grad_x, grad_w, grad_b)
        return (grad_x, grad_w)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._from_op(out, parents, backward)


def _legacy_get_flat_params(module, dtype=np.float64):
    chunks = [param.data.ravel().astype(dtype) for param in module.parameters()]
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(chunks)


def _legacy_refd_score(update, images, model_factory):
    """Pre-PR REFD scoring: fresh model per update, list-based predict."""
    from repro.defenses.refd import balance_value, confidence_value, d_score

    model = model_factory()
    set_flat_params(model, update.parameters)
    outputs = []
    batch_size = 256
    from repro.nn.tensor import no_grad

    model.eval()
    with no_grad():
        for start in range(0, images.shape[0], batch_size):
            logits = model(Tensor(images[start : start + batch_size]))
            outputs.append(F.softmax(logits, axis=-1).data)
    probabilities = np.concatenate(outputs, axis=0)
    num_classes = probabilities.shape[1]
    predicted = probabilities.argmax(axis=1)
    counts = np.bincount(predicted, minlength=num_classes)
    balance = balance_value(counts)
    confidence = confidence_value(probabilities)
    return d_score(balance, confidence)


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------
def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


#: (name, input shape, weight shape, stride, padding) — the conv geometries
#: of the paper's primary models (FashionCNN layers 1/2, CifarCNN layer 3).
CONV_CASES = [
    ("fashion_l1", (32, 1, 28, 28), (16, 1, 3, 3), 2, 1),
    ("fashion_l2", (32, 16, 14, 14), (32, 16, 3, 3), 2, 1),
    ("cifar_l3", (32, 16, 16, 16), (32, 16, 3, 3), 1, 1),
]


def _conv_tensors(case, requires_grad_x: bool):
    _, x_shape, w_shape, stride, padding = case
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal(x_shape).astype(np.float32), requires_grad=requires_grad_x)
    w = Tensor(rng.standard_normal(w_shape).astype(np.float32), requires_grad=True)
    b = Tensor(rng.standard_normal(w_shape[0]).astype(np.float32), requires_grad=True)
    return x, w, b, stride, padding


def bench_conv_forward(repeats: int) -> Dict[str, Dict[str, float]]:
    """Forward pass, inference configuration (no gradients recorded)."""
    results = {}
    for case in CONV_CASES:
        x, w, b, stride, padding = _conv_tensors(case, requires_grad_x=False)
        x.requires_grad = False
        w.requires_grad = False
        b.requires_grad = False
        legacy = _best_of(lambda: _legacy_conv2d(x, w, b, stride, padding), repeats)
        current = _best_of(lambda: F.conv2d(x, w, b, stride=stride, padding=padding), repeats)
        results[case[0]] = {"legacy_s": legacy, "current_s": current, "speedup": legacy / current}
    return results


def bench_conv_backward_params(repeats: int) -> Dict[str, Dict[str, float]]:
    """Backward pass, input-layer training profile (grads w.r.t. w and b only).

    This is what every training step runs for the first conv layer: the
    images tensor never requires grad, so the current kernels skip the
    column scatter back to the input.  The legacy kernels computed it
    unconditionally — that waste is exactly what this metric exposes.
    """
    results = {}
    for case in CONV_CASES:
        x, w, b, stride, padding = _conv_tensors(case, requires_grad_x=False)

        legacy_out = _legacy_conv2d(x, w, b, stride, padding)
        current_out = F.conv2d(x, w, b, stride=stride, padding=padding)
        grad = np.ones_like(legacy_out.data)

        def run_legacy():
            w.grad = b.grad = None
            legacy_out.backward(grad)

        def run_current():
            w.grad = b.grad = None
            current_out.backward(grad)

        legacy = _best_of(run_legacy, repeats)
        current = _best_of(run_current, repeats)
        results[case[0]] = {"legacy_s": legacy, "current_s": current, "speedup": legacy / current}
    return results


def bench_conv_step_all_grads(repeats: int) -> Dict[str, Dict[str, float]]:
    """Forward + backward with every gradient required (mid-layer profile)."""
    results = {}
    for case in CONV_CASES:
        x, w, b, stride, padding = _conv_tensors(case, requires_grad_x=True)
        grad_shape = F.conv2d(x, w, b, stride=stride, padding=padding).shape
        grad = np.ones(grad_shape, dtype=np.float32)

        def run_legacy():
            x.grad = w.grad = b.grad = None
            _legacy_conv2d(x, w, b, stride, padding).backward(grad)

        def run_current():
            x.grad = w.grad = b.grad = None
            F.conv2d(x, w, b, stride=stride, padding=padding).backward(grad)

        legacy = _best_of(run_legacy, repeats)
        current = _best_of(run_current, repeats)
        results[case[0]] = {"legacy_s": legacy, "current_s": current, "speedup": legacy / current}
    return results


def bench_flat_params(repeats: int) -> Dict[str, float]:
    """Flat-parameter round trip on the paper's CIFAR model (~300k params)."""
    model = CifarCNN(in_channels=3, image_size=32, width=16, rng=np.random.default_rng(0))
    clone = CifarCNN(in_channels=3, image_size=32, width=16, rng=np.random.default_rng(1))

    def legacy_roundtrip():
        set_flat_params(clone, _legacy_get_flat_params(model))

    def current_roundtrip():
        set_flat_params(clone, get_flat_params(model))

    legacy = _best_of(legacy_roundtrip, repeats)
    current = _best_of(current_roundtrip, repeats)
    return {
        "legacy_s": legacy,
        "current_s": current,
        "speedup": legacy / current,
        "legacy_nbytes": int(_legacy_get_flat_params(model).nbytes),
        "current_nbytes": int(get_flat_params(model).nbytes),
    }


def _legacy_gram_distance_scores(matrix: np.ndarray, num_malicious: int) -> np.ndarray:
    """Pre-fix ``krum_scores``: Gram-trick distances in the matrix dtype.

    Kept verbatim as the baseline for the ``distance_block`` metric.  Fast
    (one BLAS GEMM) but numerically broken: for near-duplicate float32
    updates the ``‖x‖²+‖y‖²−2x·y`` expansion cancels below float32 eps and
    the scores are noise — see ``repro.defenses.distances``.
    """
    n = matrix.shape[0]
    neighbourhood = max(n - num_malicious - 2, 1) if n >= 3 else max(n - 1, 1)
    squared_norms = (matrix ** 2).sum(axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * matrix @ matrix.T
    np.fill_diagonal(distances, np.inf)
    distances = np.maximum(distances, 0.0)
    return np.sort(distances, axis=1)[:, :neighbourhood].sum(axis=1)


def bench_distance_block(repeats: int) -> Dict[str, float]:
    """Defense distance plane vs the legacy float32 Gram trick.

    10 updates × 100k float32 parameters — the paper's round shape.  The
    legacy leg is the pre-fix Gram expansion (one BLAS GEMM in float32);
    the current leg is the exact float64 row-block kernel.  The "speedup"
    is expected *below* 1: this metric is an overhead bound documenting the
    price of correct distances, plus a cancellation probe recording how
    wrong the legacy kernel is on a converged (near-duplicate) round.
    """
    from repro.defenses import krum_scores

    rng = np.random.default_rng(0)
    n, dim = 10, 100_000
    base = rng.standard_normal(dim)
    base *= 100.0 / np.linalg.norm(base)
    # Converged-round geometry: updates ~1e-3 apart at ‖x‖ ≈ 1e2, so the
    # true squared distances (~1e-6) sit below eps32·‖x‖² and the Gram
    # expansion cancels to clipped noise.
    deltas = rng.standard_normal((n, dim))
    deltas *= 5e-4 / np.linalg.norm(deltas, axis=1, keepdims=True)
    matrix = (base[None, :] + deltas).astype(np.float32)

    legacy = _best_of(lambda: _legacy_gram_distance_scores(matrix, 2), repeats)
    current = _best_of(lambda: krum_scores(matrix, 2), repeats)

    truth = krum_scores(matrix.astype(np.float64), 2)
    legacy_scores = _legacy_gram_distance_scores(matrix, 2)
    current_scores = krum_scores(matrix, 2)
    return {
        "legacy_s": legacy,
        "current_s": current,
        "speedup": legacy / current,
        "legacy_max_rel_error": float(
            np.max(np.abs(legacy_scores - truth) / np.abs(truth))
        ),
        "current_max_rel_error": float(
            np.max(np.abs(current_scores - truth) / np.abs(truth))
        ),
    }


def _refd_setup():
    rng = np.random.default_rng(0)
    factory = lambda: SmallCNN(in_channels=1, image_size=16, width=8, rng=np.random.default_rng(5))
    base = get_flat_params(factory())
    updates = [
        ModelUpdate(
            client_id=i,
            parameters=base + 0.1 * rng.standard_normal(base.shape).astype(np.float32),
            num_samples=40,
        )
        for i in range(8)
    ]
    images = rng.standard_normal((160, 1, 16, 16)).astype(np.float32)
    return factory, updates, images


def bench_refd_scoring(repeats: int) -> Dict[str, float]:
    """Per-round REFD scoring of 8 updates on a 160-image reference set."""
    factory, updates, images = _refd_setup()
    defense = Refd(num_rejected=2)
    context = DefenseContext(
        round_number=0,
        global_params=updates[0].parameters,
        expected_num_malicious=2,
        rng=np.random.default_rng(0),
        model_factory=factory,
    )

    def legacy_round():
        return [_legacy_refd_score(update, images, factory) for update in updates]

    def current_round():
        return defense.score_updates(updates, images, context)

    legacy_scores = legacy_round()
    current_scores = [report.score for report in current_round()]
    np.testing.assert_allclose(legacy_scores, current_scores, rtol=1e-12)

    legacy = _best_of(legacy_round, repeats)
    current = _best_of(current_round, repeats)
    return {"legacy_s": legacy, "current_s": current, "speedup": legacy / current}


def _e2e_config(num_rounds: int = 4):
    return benchmark_scale(
        attack="lie",
        defense="refd",
        num_rounds=num_rounds,
        architecture="fashion-cnn",
        image_size=28,
        train_size=800,
        test_size=320,
        batch_size=32,
    )


def bench_round_dispatch(repeats: int) -> Dict[str, float]:
    """Process-pool round dispatch: shared-memory broadcast vs inline pickling.

    The shm leg exercises the full shared-memory data plane — per-round
    parameter lease, once-per-simulation shard store, and REFD reference
    publication — against a fully inline dispatch.
    """
    config = _e2e_config()
    results: Dict[str, float] = {}
    for label, use_shm in (("inline", False), ("shm", True)):
        executor = ParallelExecutor(workers=2, use_shared_memory=use_shm)
        with build_simulation(config, policy=executor) as simulation:
            simulation.run_round()  # warm the pool
            results[f"{label}_s"] = _best_of(simulation.run_round, max(2, repeats // 8))
            if use_shm:
                results["shm_rounds"] = executor.shm_rounds
                results["shard_rounds"] = executor.shard_rounds
    results["speedup"] = results["inline_s"] / results["shm_s"]
    return results


def bench_shard_broadcast() -> Dict[str, float]:
    """Dispatched task payload with the shard store vs inline arrays.

    Measures the bytes a process worker receives per task *as dispatched* —
    parameters rewritten to a :class:`SharedParamsLease` ref exactly like
    ``ParallelExecutor.map`` does — with the client's image/label shard
    carried (a) inline, pickled every round, and (b) as a
    :class:`ShardRef` into the once-per-simulation shard store.  The shrink
    factor is deterministic, so it doubles as the CI regression check for
    the zero-copy task payload.
    """
    config = _e2e_config()
    results: Dict[str, float] = {}
    for label, use_shm in (("inline", False), ("shm", True)):
        executor = ParallelExecutor(workers=2, use_shared_memory=use_shm)
        with build_simulation(config, policy=executor) as simulation:
            client = next(iter(simulation.benign_clients.values()))
            params = simulation.server.distribute()
            task = client.make_task(params, 0)
            if use_shm:
                with SharedParamsLease(params) as lease:
                    task = dataclasses.replace(
                        task, global_params=None, params_ref=lease.ref
                    )
                    results[f"task_nbytes_{label}"] = len(pickle.dumps(task))
            else:
                results[f"task_nbytes_{label}"] = len(pickle.dumps(task))
            results[f"shard_nbytes_{label}"] = sum(
                array.nbytes for array in client.dataset.arrays()
            )
        executor.close()
    results["speedup"] = results["task_nbytes_inline"] / results["task_nbytes_shm"]
    return results


def bench_refd_fanout(repeats: int) -> Dict[str, float]:
    """REFD D-score scoring: fused serial loop vs process-pool registry fan-out.

    The process leg is the production path of a process-backend round: the
    per-update inference ships as registered ``FanoutCall`` envelopes whose
    reference images live in a shared-memory segment, so each work item
    pickles one parameter vector.  Scores must agree bitwise with the
    serial loop.  On 1-2 cores the dispatch overhead dominates (see the
    generous ``refd_fanout`` threshold); the point of the metric is to
    track that overhead and show the multi-core win where there is one.
    """
    factory = ClassifierFactory(
        architecture="small-cnn", in_channels=1, image_size=16, num_classes=10, seed=5
    )
    rng = np.random.default_rng(0)
    base = get_flat_params(factory())
    updates = [
        ModelUpdate(
            client_id=i,
            parameters=base + 0.1 * rng.standard_normal(base.shape).astype(np.float32),
            num_samples=40,
        )
        for i in range(8)
    ]
    images = rng.standard_normal((160, 1, 16, 16)).astype(np.float32)
    labels = rng.integers(0, 10, size=160).astype(np.int64)
    defense = Refd(num_rejected=2)

    def context(executor=None, reference_ref=None):
        return DefenseContext(
            round_number=0,
            global_params=base,
            expected_num_malicious=2,
            rng=np.random.default_rng(0),
            model_factory=factory,
            executor=executor,
            reference_ref=reference_ref,
        )

    serial_context = context()
    with SharedArrayStore({"reference/images": images, "reference/labels": labels}) as store:
        reference_ref = ShardRef(
            images=store.refs["reference/images"], labels=store.refs["reference/labels"]
        )
        with ParallelExecutor(workers=2) as executor:
            process_context = context(executor=executor, reference_ref=reference_ref)
            serial_scores = [
                r.score for r in defense.score_updates(updates, images, serial_context)
            ]
            process_scores = [
                r.score for r in defense.score_updates(updates, images, process_context)
            ]
            np.testing.assert_array_equal(serial_scores, process_scores)
            repeats = max(3, repeats // 5)
            serial = _best_of(
                lambda: defense.score_updates(updates, images, serial_context), repeats
            )
            process = _best_of(
                lambda: defense.score_updates(updates, images, process_context), repeats
            )
            fanout_calls = executor.fanout_calls
    return {
        "serial_s": serial,
        "process_s": process,
        "speedup": serial / process,
        "fanout_calls": fanout_calls,
        "workers": 2,
    }


def bench_distance_fanout(repeats: int) -> Dict[str, float]:
    """Distance-plane row-block fan-out: serial kernels vs a 2-worker pool.

    Times the full production path (content digests, cache probe, block
    fan-out) on the ledger's reference geometry — a 10x100k float32 matrix
    split into 4 row blocks — with the policy's distance cache cleared
    before every run so the kernels are actually recomputed.  The measured
    pair is what calibrates the ``"distance"`` site of the adaptive cost
    model, documenting the regression the adaptive policy exists to avoid:
    at this scale the process fan-out *loses* on 1-2 core machines.
    """
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((10, 100_000)).astype(np.float32)
    repeats = max(3, repeats)
    serial_policy = DispatchPolicy.serial()
    baseline = pairwise_sq_distances(matrix, dispatch=serial_policy)

    def run(policy):
        policy.distance_cache.clear()
        return pairwise_sq_distances(matrix, dispatch=policy)

    serial = _best_of(lambda: run(serial_policy), repeats)
    with ParallelExecutor(workers=2) as executor:
        process_policy = DispatchPolicy.for_executor(executor)
        np.testing.assert_array_equal(baseline, run(process_policy))
        process = _best_of(lambda: run(process_policy), repeats)
    return {
        "serial_s": serial,
        "process_s": process,
        "speedup": serial / process,
        "blocks": 4,
        "workers": 2,
    }


def _legacy_sgd_step(self):
    """Pre-PR out-of-place SGD step (allocates fresh arrays per parameter)."""
    for param in self.parameters:
        if param.grad is None:
            continue
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[id(param)] = velocity
            grad = velocity
        param.data = param.data - self.lr * grad


def _legacy_refd_score_updates(self, updates, images, context):
    """Pre-PR REFD scoring: one fresh model + fresh buffers per update."""
    from repro.defenses.refd import DScoreReport, balance_value, confidence_value, d_score

    reports = []
    for update in updates:
        model = context.model_factory()
        set_flat_params(model, update.parameters)
        probabilities = predict_proba(model, images)
        num_classes = probabilities.shape[1]
        predicted = probabilities.argmax(axis=1)
        counts = np.bincount(predicted, minlength=num_classes)
        balance = balance_value(counts)
        confidence = confidence_value(probabilities)
        reports.append(
            DScoreReport(
                client_id=update.client_id,
                balance=balance,
                confidence=confidence,
                score=d_score(balance, confidence, self.alpha),
            )
        )
    return reports


class _legacy_kernels:
    """Context manager swapping the hot-path kernels back to their pre-PR
    implementations (conv, float64 flat-param transport, out-of-place SGD,
    per-update REFD scoring) so the end-to-end comparison is machine-fair."""

    def __enter__(self):
        import repro.fl.executor as executor_module
        import repro.fl.server as server_module
        from repro.nn.optim import SGD

        self._saved = (
            F.conv2d,
            executor_module.get_flat_params,
            SGD.step,
            Refd.score_updates,
        )
        F.conv2d = lambda x, weight, bias=None, stride=1, padding=0: _legacy_conv2d(
            x, weight, bias, stride, padding
        )
        executor_module.get_flat_params = _legacy_get_flat_params
        SGD.step = _legacy_sgd_step
        Refd.score_updates = _legacy_refd_score_updates
        return self

    def __exit__(self, *exc_info):
        import repro.fl.executor as executor_module
        from repro.nn.optim import SGD

        (F.conv2d, executor_module.get_flat_params, SGD.step, Refd.score_updates) = self._saved


def bench_e2e_round(repeats: int) -> Dict[str, float]:
    """Serial end-to-end round: FashionCNN 28×28, LIE attack, REFD defense.

    The baseline re-runs the same rounds with the pre-PR kernels patched
    back in (legacy conv, float64 flat-param transport, out-of-place SGD,
    per-update REFD scoring), so the speedup is measured on the same
    machine in the same process.  ``PRE_PR_REFERENCE`` additionally records
    the absolute pre-PR round time from the authoring machine.
    """
    rounds = max(3, repeats // 8)
    # Both legs pin eager training: the legacy leg patches the *eager*
    # kernels (F.conv2d etc.), which a replayed tape would silently bypass,
    # and the current leg stays comparable with the metric's history.  The
    # engine comparison has its own metric (``trace_replay``).
    eager_policy = DispatchPolicy.fixed("serial", overrides={"train": "eager"})
    with _legacy_kernels():
        with build_simulation(_e2e_config(), policy=eager_policy) as simulation:
            simulation.run_round()  # warm caches
            legacy = _best_of(simulation.run_round, rounds)
    with build_simulation(
        _e2e_config(),
        policy=DispatchPolicy.fixed("serial", overrides={"train": "eager"}),
    ) as simulation:
        simulation.run_round()
        current = _best_of(simulation.run_round, rounds)
    return {
        "legacy_s": legacy,
        "current_s": current,
        "speedup": legacy / current,
        "pre_pr_reference_s": PRE_PR_REFERENCE["e2e_round_serial_s"],
        "pre_pr_machine": PRE_PR_REFERENCE["machine"],
    }


def _dispatch_site_records(results) -> list:
    """Explicit per-site calibration records for ``CostModel.from_ledger``.

    Rewrites this run's measured serial/pooled pairs into the
    ``dispatch_sites`` section of the ledger (site, backend, items, work,
    serial_s, parallel_s, workers), using the known bench geometries.
    """
    records = []
    refd = results.get("refd_fanout")
    if refd:
        records.append(
            {
                "site": "refd",
                "backend": "process",
                "items": 8,
                "work": float(8 * 3818),  # 8 updates x SmallCNN(1, 16, 8) params
                "serial_s": refd["serial_s"],
                "parallel_s": refd["process_s"],
                "workers": refd.get("workers", 2),
            }
        )
    distance = results.get("distance_fanout")
    if distance:
        records.append(
            {
                "site": "distance",
                "backend": "process",
                "items": distance.get("blocks", 4),
                "work": float(10 * 10 * 100_000),  # n * n * dim of the probe
                "serial_s": distance["serial_s"],
                "parallel_s": distance["process_s"],
                "workers": distance.get("workers", 2),
            }
        )
    round_dispatch = results.get("round_dispatch")
    e2e = results.get("e2e_round")
    if round_dispatch and e2e:
        records.append(
            {
                "site": "round",
                "backend": "process",
                "items": 8,
                "work": float(8 * 20490),  # 8 clients x FashionCNN/28px params
                "serial_s": e2e["current_s"],
                "parallel_s": round_dispatch["inline_s"],
                "workers": 2,
            }
        )
    return records


def bench_adaptive_dispatch(repeats: int, results) -> Dict[str, object]:
    """Adaptive policy vs serial and the best static backend, end to end.

    Builds the cost model from the numbers this very run just measured (the
    in-memory ledger), runs the e2e round under ``DispatchPolicy.adaptive``
    and compares against the serial policy plus every static process timing
    already on record.  The headline is the *minimum* of the two ratios, so
    the CI bound asserts the adaptive policy is never meaningfully slower
    than serial nor than the best static choice at bench scale.
    """
    config = _e2e_config()
    rounds = max(3, repeats // 5)
    out: Dict[str, object] = {}
    model = CostModel.from_ledger({"results": results})
    # Both legs pin eager training so the metric stays a pure executor
    # comparison — otherwise the train-site decision (replay vs eager)
    # would differ between the fixed and adaptive policies and leak into
    # the dispatch ratio.
    policy = DispatchPolicy.adaptive(
        cost_model=model, overrides={"train": "eager"}
    )
    # Interleave the timed rounds of both legs so machine-load drift over the
    # measurement window biases neither ratio leg.
    serial_best = float("inf")
    adaptive_best = float("inf")
    serial_policy = DispatchPolicy.fixed("serial", overrides={"train": "eager"})
    with build_simulation(config, policy=serial_policy) as serial_sim:
        with build_simulation(config, policy=policy) as adaptive_sim:
            serial_sim.run_round()
            adaptive_sim.run_round()
            for _ in range(rounds):
                start = time.perf_counter()
                serial_sim.run_round()
                serial_best = min(serial_best, time.perf_counter() - start)
                start = time.perf_counter()
                adaptive_sim.run_round()
                adaptive_best = min(adaptive_best, time.perf_counter() - start)
            out["serial_s"] = serial_best
            out["adaptive_s"] = adaptive_best
            out["decision_trace"] = policy.trace_dicts()
            out["counters"] = {
                k: v
                for k, v in policy.counter_snapshot().items()
                if isinstance(v, int)
            }

    static = {"serial": out["serial_s"]}
    round_dispatch = results.get("round_dispatch")
    if round_dispatch:
        static["process_inline"] = round_dispatch["inline_s"]
        static["process_shm"] = round_dispatch["shm_s"]
    best = min(static, key=static.get)
    out["best_static"] = best
    out["best_static_s"] = static[best]
    out["speedup_vs_serial"] = out["serial_s"] / out["adaptive_s"]
    out["speedup_vs_best_static"] = out["best_static_s"] / out["adaptive_s"]
    out["speedup"] = min(out["speedup_vs_serial"], out["speedup_vs_best_static"])
    return out


def bench_fault_hooks(repeats: int) -> Dict[str, float]:
    """Fault-free round with the recovery plane armed vs the plain loop.

    Both legs run serially on identical configs; the resilient leg carries a
    full ``ResilienceConfig`` (retry budget, backoff, stats) but no fault
    plan and no deadline, so every hook is live and every fault is absent —
    exactly the production posture of a long sweep run with ``--max-retries``
    as insurance.  The "speedup" is plain/resilient: 1.0 means free, and the
    CI bound holds it above 0.98 (≤ ~2% overhead).
    """
    config = _e2e_config()
    rounds = max(3, repeats // 5)
    plain_best = float("inf")
    resilient_best = float("inf")
    resilience = ResilienceConfig(max_retries=2)
    with build_simulation(config, policy="serial") as plain_sim:
        with build_simulation(
            config, policy="serial", resilience=resilience
        ) as resilient_sim:
            plain_sim.run_round()
            resilient_sim.run_round()
            # Interleave so load drift biases neither leg.
            for _ in range(rounds):
                start = time.perf_counter()
                plain_sim.run_round()
                plain_best = min(plain_best, time.perf_counter() - start)
                start = time.perf_counter()
                resilient_sim.run_round()
                resilient_best = min(resilient_best, time.perf_counter() - start)
    return {
        "plain_s": plain_best,
        "resilient_s": resilient_best,
        "speedup": plain_best / resilient_best,
    }


def _trace_config():
    """FashionCNN/REFD round config for the trace-engine metrics.

    Small local batches (4) over two local epochs put every optimizer step
    in the regime the recorded tape targets — per-step framework overhead
    (graph construction, closure dispatch, temporary allocation) on par
    with or above the GEMM work.  At batch 32 the convolution GEMMs
    dominate and both engines converge; that regime is already covered by
    ``e2e_round``.
    """
    return benchmark_scale(
        attack="lie",
        defense="refd",
        num_rounds=4,
        architecture="fashion-cnn",
        image_size=28,
        train_size=800,
        test_size=320,
        batch_size=4,
        local_epochs=2,
    )


def bench_trace_replay(repeats: int) -> Dict[str, float]:
    """Replayed training vs the eager engine on a full e2e round.

    Two identical FashionCNN/REFD simulations run side by side: one pins
    the train site to the eager engine, the other resolves ``trace="auto"``
    to replay through the recorded buffer plans.  Rounds are timed in
    adjacent eager/replay pairs and the headline speedup is the *median* of
    the per-pair ratios — on shared 1-core runners a single lucky-fast
    round would otherwise set a min-based ratio, while paired medians see
    the same machine state on both legs.  Both engines are bit-identical
    (asserted by tests/test_nn_trace.py), so this ratio is pure wall-clock.
    """
    config = _trace_config()
    rounds = max(6, repeats)
    nn_trace.reset_trace_cache()
    eager_policy = DispatchPolicy.fixed("serial", overrides={"train": "eager"})
    ratios = []
    eager_times = []
    replay_times = []
    with build_simulation(config, policy=eager_policy) as eager_sim:
        with build_simulation(config, policy="serial") as replay_sim:
            # Warm rounds: record every batch signature the Dirichlet
            # shards produce and fault in both sims' working sets.
            for _ in range(3):
                eager_sim.run_round()
                replay_sim.run_round()
            for _ in range(rounds):
                start = time.perf_counter()
                eager_sim.run_round()
                eager_s = time.perf_counter() - start
                start = time.perf_counter()
                replay_sim.run_round()
                replay_s = time.perf_counter() - start
                eager_times.append(eager_s)
                replay_times.append(replay_s)
                ratios.append(eager_s / replay_s)
    counters = nn_trace.trace_counters()
    return {
        "eager_s": float(np.median(eager_times)),
        "replay_s": float(np.median(replay_times)),
        "speedup": float(np.median(ratios)),
        "records": counters["records"],
        "replays": counters["replays"],
        "fallbacks": counters["fallbacks"],
    }


def bench_trace_record_overhead(repeats: int) -> Dict[str, float]:
    """Per-step engine costs: eager step, replayed step, one-time record.

    Emits exactly the keys ``CostModel.from_ledger`` reads into its train
    cost table (``eager_step_s``, ``replay_step_s``, ``overhead_s``), so
    regenerating the ledger recalibrates the adaptive policy's
    record-vs-replay break-even on this machine.  The step is a FashionCNN
    forward/backward at the trace-metric batch size; the record cost is the
    first step on a cold signature (trace + compile + the step itself).
    """
    factory = ClassifierFactory(
        architecture="fashion-cnn", in_channels=1, image_size=28,
        num_classes=10, seed=0,
    )
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 1, 28, 28)).astype(np.float32)
    y = rng.integers(0, 10, size=4).astype(np.int64)
    steps = max(10, repeats)

    def eager_step(model):
        for param in model.parameters():
            param.grad = None
        loss = F.cross_entropy(model(Tensor(x)), y)
        loss.backward()
        return float(loss.item())

    model = factory()
    eager_step(model)  # warm
    eager_step_s = _best_of(lambda: eager_step(model), steps)

    nn_trace.reset_trace_cache()
    record_best = float("inf")
    for _ in range(max(3, repeats // 4)):
        nn_trace.reset_trace_cache()
        session = nn_trace.session_for(factory())
        start = time.perf_counter()
        session.step(x, y)
        record_best = min(record_best, time.perf_counter() - start)

    nn_trace.reset_trace_cache()
    model = factory()
    session = nn_trace.session_for(model)
    session.step(x, y)  # record once; the timed loop below only replays

    def replay_step():
        for param in model.parameters():
            param.grad = None
        session.step(x, y)

    replay_step_s = _best_of(replay_step, steps)
    nn_trace.reset_trace_cache()
    return {
        "eager_step_s": eager_step_s,
        "replay_step_s": replay_step_s,
        "record_s": record_best,
        "overhead_s": max(record_best - eager_step_s, 0.0),
        "speedup": eager_step_s / replay_step_s,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_suite(repeats: int = 25, include_dispatch: bool = True, include_e2e: bool = True):
    """Run every hot-path benchmark and return the results dict."""
    results: Dict[str, object] = {}
    results["conv_fwd"] = bench_conv_forward(repeats)
    results["conv_bwd_params"] = bench_conv_backward_params(repeats)
    results["conv_step_all_grads"] = bench_conv_step_all_grads(repeats)
    results["flat_roundtrip"] = bench_flat_params(repeats)
    results["refd_scoring"] = bench_refd_scoring(max(3, repeats // 5))
    results["distance_block"] = bench_distance_block(max(3, repeats // 5))
    if include_dispatch:
        results["round_dispatch"] = bench_round_dispatch(repeats)
        results["shard_broadcast"] = bench_shard_broadcast()
        results["refd_fanout"] = bench_refd_fanout(repeats)
        results["distance_fanout"] = bench_distance_fanout(max(3, repeats // 5))
    if include_e2e:
        results["e2e_round"] = bench_e2e_round(repeats)
    # Cheap (no legacy-kernel leg), so it runs even under --skip-e2e: CI
    # always enforces the fault-plane overhead bound.
    results["fault_hooks"] = bench_fault_hooks(repeats)
    # Same deal: no legacy leg, and CI must always enforce the replayed-tape
    # round speedup and refresh the train-site cost calibration, so both
    # trace metrics run even under --skip-e2e.
    results["trace_replay"] = bench_trace_replay(repeats)
    results["trace_record_overhead"] = bench_trace_record_overhead(repeats)
    site_records = _dispatch_site_records(results)
    if site_records:
        results["dispatch_sites"] = site_records
    if include_dispatch:
        results["adaptive_dispatch"] = bench_adaptive_dispatch(repeats, results)
    return results


def _aggregate_speedups(results) -> Dict[str, float]:
    """One headline speedup per metric (geometric mean over conv cases)."""
    headline: Dict[str, float] = {}
    for metric in ("conv_fwd", "conv_bwd_params", "conv_step_all_grads"):
        if metric in results:
            speedups = [case["speedup"] for case in results[metric].values()]
            headline[metric] = float(np.exp(np.mean(np.log(speedups))))
    for metric in ("flat_roundtrip", "refd_scoring", "distance_block"):
        if metric in results:
            headline[metric] = float(results[metric]["speedup"])
    if "round_dispatch" in results:
        headline["round_dispatch_shm"] = float(results["round_dispatch"]["speedup"])
    for metric in (
        "shard_broadcast",
        "refd_fanout",
        "distance_fanout",
        "adaptive_dispatch",
        "fault_hooks",
        "trace_replay",
        "trace_record_overhead",
    ):
        if metric in results:
            headline[metric] = float(results[metric]["speedup"])
    if "e2e_round" in results:
        headline["e2e_round"] = float(results["e2e_round"]["speedup"])
    return headline


def check_thresholds(headline: Dict[str, float]) -> Dict[str, Tuple[float, float, bool]]:
    """Compare headline speedups against the generous CI thresholds."""
    verdicts = {}
    for metric, minimum in CHECK_THRESHOLDS.items():
        if metric in headline:
            verdicts[metric] = (headline[metric], minimum, headline[metric] >= minimum)
    return verdicts


def render_table(results, headline) -> str:
    rows = []
    for metric in ("conv_fwd", "conv_bwd_params", "conv_step_all_grads"):
        if metric not in results:
            continue
        for case, numbers in results[metric].items():
            rows.append(
                [
                    f"{metric}/{case}",
                    f"{numbers['legacy_s'] * 1e6:.0f}",
                    f"{numbers['current_s'] * 1e6:.0f}",
                    f"{numbers['speedup']:.2f}x",
                ]
            )
    for metric in ("flat_roundtrip", "refd_scoring", "distance_block"):
        if metric in results:
            numbers = results[metric]
            rows.append(
                [
                    metric,
                    f"{numbers['legacy_s'] * 1e6:.0f}",
                    f"{numbers['current_s'] * 1e6:.0f}",
                    f"{numbers['speedup']:.2f}x",
                ]
            )
    if "round_dispatch" in results:
        numbers = results["round_dispatch"]
        rows.append(
            [
                "round_dispatch(shm vs inline)",
                f"{numbers['inline_s'] * 1e6:.0f}",
                f"{numbers['shm_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "shard_broadcast" in results:
        numbers = results["shard_broadcast"]
        rows.append(
            [
                "shard_broadcast(task bytes)",
                f"{numbers['task_nbytes_inline']:.0f}",
                f"{numbers['task_nbytes_shm']:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "refd_fanout" in results:
        numbers = results["refd_fanout"]
        rows.append(
            [
                "refd_fanout(serial vs process)",
                f"{numbers['serial_s'] * 1e6:.0f}",
                f"{numbers['process_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "distance_fanout" in results:
        numbers = results["distance_fanout"]
        rows.append(
            [
                "distance_fanout(serial vs process)",
                f"{numbers['serial_s'] * 1e6:.0f}",
                f"{numbers['process_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "e2e_round" in results:
        numbers = results["e2e_round"]
        rows.append(
            [
                "e2e_round(legacy kernels)",
                f"{numbers['legacy_s'] * 1e6:.0f}",
                f"{numbers['current_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "adaptive_dispatch" in results:
        numbers = results["adaptive_dispatch"]
        rows.append(
            [
                f"adaptive_dispatch(vs {numbers['best_static']})",
                f"{numbers['best_static_s'] * 1e6:.0f}",
                f"{numbers['adaptive_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "fault_hooks" in results:
        numbers = results["fault_hooks"]
        rows.append(
            [
                "fault_hooks(plain vs armed)",
                f"{numbers['plain_s'] * 1e6:.0f}",
                f"{numbers['resilient_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "trace_replay" in results:
        numbers = results["trace_replay"]
        rows.append(
            [
                "trace_replay(eager vs replay round)",
                f"{numbers['eager_s'] * 1e6:.0f}",
                f"{numbers['replay_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    if "trace_record_overhead" in results:
        numbers = results["trace_record_overhead"]
        rows.append(
            [
                "trace_record_overhead(step)",
                f"{numbers['eager_step_s'] * 1e6:.0f}",
                f"{numbers['replay_step_s'] * 1e6:.0f}",
                f"{numbers['speedup']:.2f}x",
            ]
        )
    return format_table(["metric", "before (us)", "after (us)", "speedup"], rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_hotpath.json", help="JSON output path")
    parser.add_argument("--repeats", type=int, default=25, help="timing repeats per metric")
    parser.add_argument("--check", action="store_true", help="enforce CI regression thresholds")
    parser.add_argument("--skip-dispatch", action="store_true", help="skip the process-pool metric")
    parser.add_argument("--skip-e2e", action="store_true", help="skip the end-to-end round metric")
    args = parser.parse_args(argv)

    results = run_suite(
        repeats=args.repeats,
        include_dispatch=not args.skip_dispatch,
        include_e2e=not args.skip_e2e,
    )
    headline = _aggregate_speedups(results)
    print(render_table(results, headline))
    print()
    for metric, value in headline.items():
        print(f"{metric:24s} {value:5.2f}x")

    payload = {
        "meta": {
            "machine": platform.platform(),
            "cpus": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "pre_pr_reference": PRE_PR_REFERENCE,
        "results": results,
        "headline_speedups": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {args.output}")

    adaptive = results.get("adaptive_dispatch")
    if adaptive:
        trace_path = os.path.join(
            os.path.dirname(os.path.abspath(args.output)), "BENCH_dispatch_trace.json"
        )
        with open(trace_path, "w") as handle:
            json.dump(
                {
                    "decision_trace": adaptive["decision_trace"],
                    "counters": adaptive["counters"],
                    "speedup_vs_serial": adaptive["speedup_vs_serial"],
                    "speedup_vs_best_static": adaptive["speedup_vs_best_static"],
                },
                handle,
                indent=2,
            )
        print(f"wrote {trace_path}")

    if args.check:
        verdicts = check_thresholds(headline)
        failed = {m: v for m, v in verdicts.items() if not v[2]}
        for metric, (value, minimum, ok) in verdicts.items():
            print(f"check {metric:24s} {value:5.2f}x >= {minimum:.2f}x  {'ok' if ok else 'FAIL'}")
        if failed:
            return 1
    return 0


# ----------------------------------------------------------------------
# pytest entry point (same suite, smaller repeat counts)
# ----------------------------------------------------------------------
def test_hotpath_kernels_beat_legacy(report):
    results = run_suite(repeats=8, include_dispatch=False, include_e2e=False)
    headline = _aggregate_speedups(results)
    report(
        "Hot-path microbenchmarks (legacy vs current)",
        render_table(results, headline),
        note="conv_bwd_params is the input-layer training profile (no grad_x).",
    )
    assert headline["conv_fwd"] > 1.0
    assert headline["conv_bwd_params"] >= 1.5
    assert headline["flat_roundtrip"] > 1.0
    assert results["flat_roundtrip"]["legacy_nbytes"] == 2 * results["flat_roundtrip"]["current_nbytes"]
    # The distance plane trades speed for correctness: it must stay within
    # the overhead bound while the legacy Gram trick is orders of magnitude
    # wrong on the near-duplicate probe and the plane is float64-exact.
    assert headline["distance_block"] >= 0.02
    assert results["distance_block"]["legacy_max_rel_error"] > 0.5
    assert results["distance_block"]["current_max_rel_error"] < 1e-9


if __name__ == "__main__":
    sys.exit(main())
