"""Fig. 8: attack effectiveness of synthetic data (DFA) vs real attacker data.

The real-data comparator assigns the attacker real image shards under the
same Dirichlet distribution as benign clients, labels them with the fixed
class Ỹ and trains with the same distance-regularized loss.  The paper shows
that the optimized synthetic data is at least as effective, so attackers gain
nothing from investing in data acquisition.
"""

from __future__ import annotations

import numpy as np
from harness import run_scenarios

from repro.experiments import benchmark_scale, scenarios
from repro.utils import format_table

_PAPER_NOTE = (
    "Paper reference (Fig. 8): on both Fashion-MNIST and CIFAR-10 and for all four defenses,\n"
    "the ASR of DFA-R / DFA-G is higher than the ASR of the same pipeline fed with real data."
)

_DATASETS = ("fashion-mnist", "cifar-10")


def test_fig8_synthetic_vs_real_data(benchmark, runner, report):
    scenario_list = scenarios.fig8_scenarios(benchmark_scale, datasets=_DATASETS)
    results = benchmark.pedantic(
        lambda: run_scenarios(runner, scenario_list), rounds=1, iterations=1
    )
    by_label = dict(results)

    rows = []
    for dataset in _DATASETS:
        for defense in scenarios.PAPER_DEFENSES:
            rows.append(
                [
                    dataset,
                    defense,
                    by_label[f"{dataset}/{defense}/dfa-r"].asr,
                    by_label[f"{dataset}/{defense}/dfa-g"].asr,
                    by_label[f"{dataset}/{defense}/real-data"].asr,
                ]
            )

    report(
        "Fig. 8 — ASR of synthetic (DFA) vs real attacker data",
        format_table(
            ["dataset", "defense", "DFA-R ASR (%)", "DFA-G ASR (%)", "real-data ASR (%)"], rows
        ),
        _PAPER_NOTE,
    )

    assert len(results) == len(_DATASETS) * 4 * 3
    # Shape check: on average the optimized synthetic data should be at least
    # roughly competitive with the naive real-data pipeline.
    def mean_asr(attack: str) -> float:
        values = [r.asr for label, r in results if label.endswith("/" + attack)]
        return float(np.mean(values))

    assert max(mean_asr("dfa-r"), mean_asr("dfa-g")) >= mean_asr("real-data") - 15.0
