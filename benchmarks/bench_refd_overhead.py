"""Sec. V-C: computational overhead of the REFD defense.

REFD evaluates every received update on the reference dataset, so its cost is
O(|Dr| * K) model inferences per round plus an O(|Dr|) statistic per update.
This benchmark measures the wall-clock cost of a single REFD aggregation step
for growing reference-set sizes and compares it against Bulyan and plain
FedAvg on the same updates, confirming that the overhead scales linearly in
|Dr| and stays far below the cost of local training.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.synthetic import SyntheticImageSpec, make_synthetic_task
from repro.defenses import Bulyan, NoDefense, Refd
from repro.fl.training import train_local_model
from repro.fl.types import DefenseContext, LocalTrainingConfig, ModelUpdate
from repro.models import SmallCNN
from repro.nn.serialization import get_flat_params
from repro.utils import format_table

_REFERENCE_SIZES = (40, 80, 160)
_NUM_UPDATES = 8


def _setup():
    spec = SyntheticImageSpec(name="overhead", channels=1, image_size=16, noise_std=0.3)
    task = make_synthetic_task(spec, train_size=200, test_size=200, seed=0)

    def model_factory():
        return SmallCNN(in_channels=1, image_size=16, num_classes=10, width=8,
                        rng=np.random.default_rng(0))

    rng = np.random.default_rng(0)
    config = LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.2)
    updates = []
    for client_id in range(_NUM_UPDATES):
        model = model_factory()
        shard = task.train.subset(rng.choice(len(task.train), size=25, replace=False))
        train_local_model(model, shard, config, np.random.default_rng(client_id))
        updates.append(
            ModelUpdate(client_id=client_id, parameters=get_flat_params(model), num_samples=25)
        )
    return task, model_factory, updates


def _time_aggregation(defense, updates, context, repeats: int = 3) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        defense.aggregate(updates, context)
    return (time.perf_counter() - start) / repeats


def test_refd_overhead_scales_linearly(benchmark, report):
    task, model_factory, updates = _setup()

    def context_with(reference):
        return DefenseContext(
            round_number=0,
            global_params=get_flat_params(model_factory()),
            expected_num_malicious=2,
            rng=np.random.default_rng(0),
            model_factory=model_factory,
            reference_dataset=reference,
        )

    def measure():
        timings = {}
        timings["fedavg"] = _time_aggregation(NoDefense(), updates, context_with(None))
        timings["bulyan"] = _time_aggregation(Bulyan(), updates, context_with(None))
        for size in _REFERENCE_SIZES:
            reference = task.test.subset(range(size))
            timings[f"refd@{size}"] = _time_aggregation(
                Refd(num_rejected=2), updates, context_with(reference)
            )
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [[name, 1000.0 * seconds] for name, seconds in timings.items()]
    report(
        "Sec. V-C — Aggregation cost of REFD vs Bulyan vs FedAvg (per round)",
        format_table(["aggregator", "time (ms)"], rows),
        note=(
            "Expected shape: REFD cost grows roughly linearly with the reference-set size |Dr|\n"
            "(it performs |Dr| x K model inferences per round) and remains a small constant\n"
            "factor, far cheaper than the clients' local training."
        ),
    )

    assert timings["refd@160"] >= timings["refd@40"]
    # Doubling |Dr| should not blow up the cost super-linearly by a large factor.
    assert timings["refd@160"] <= 10.0 * timings["refd@40"] + 0.05
