"""Sec. V-C: computational overhead of the REFD defense — plus the cost side
of the experiment pipeline itself.

REFD evaluates every received update on the reference dataset, so its cost is
O(|Dr| * K) model inferences per round plus an O(|Dr|) statistic per update.
This benchmark measures the wall-clock cost of a single REFD aggregation step
for growing reference-set sizes and compares it against Bulyan and plain
FedAvg on the same updates, confirming that the overhead scales linearly in
|Dr| and stays far below the cost of local training.

The second half measures the sweep machinery the paper's figures run on: a
scenario grid dispatched serially vs across worker processes
(:class:`~repro.experiments.grid.GridRunner`) and then re-run against a warm
result cache, which should skip every completed cell.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.data.synthetic import SyntheticImageSpec, make_synthetic_task
from repro.defenses import Bulyan, NoDefense, Refd
from repro.experiments import GridRunner, expand_grid, smoke_scale
from repro.fl.training import train_local_model
from repro.fl.types import DefenseContext, LocalTrainingConfig, ModelUpdate
from repro.models import SmallCNN
from repro.nn.serialization import get_flat_params
from repro.utils import format_table

_REFERENCE_SIZES = (40, 80, 160)
_NUM_UPDATES = 8


def _setup():
    spec = SyntheticImageSpec(name="overhead", channels=1, image_size=16, noise_std=0.3)
    task = make_synthetic_task(spec, train_size=200, test_size=200, seed=0)

    def model_factory():
        return SmallCNN(in_channels=1, image_size=16, num_classes=10, width=8,
                        rng=np.random.default_rng(0))

    rng = np.random.default_rng(0)
    config = LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.2)
    updates = []
    for client_id in range(_NUM_UPDATES):
        model = model_factory()
        shard = task.train.subset(rng.choice(len(task.train), size=25, replace=False))
        train_local_model(model, shard, config, np.random.default_rng(client_id))
        updates.append(
            ModelUpdate(client_id=client_id, parameters=get_flat_params(model), num_samples=25)
        )
    return task, model_factory, updates


def _time_aggregation(defense, updates, context, repeats: int = 3) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        defense.aggregate(updates, context)
    return (time.perf_counter() - start) / repeats


def test_refd_overhead_scales_linearly(benchmark, report):
    task, model_factory, updates = _setup()

    def context_with(reference):
        return DefenseContext(
            round_number=0,
            global_params=get_flat_params(model_factory()),
            expected_num_malicious=2,
            rng=np.random.default_rng(0),
            model_factory=model_factory,
            reference_dataset=reference,
        )

    def measure():
        timings = {}
        timings["fedavg"] = _time_aggregation(NoDefense(), updates, context_with(None))
        timings["bulyan"] = _time_aggregation(Bulyan(), updates, context_with(None))
        for size in _REFERENCE_SIZES:
            reference = task.test.subset(range(size))
            timings[f"refd@{size}"] = _time_aggregation(
                Refd(num_rejected=2), updates, context_with(reference)
            )
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [[name, 1000.0 * seconds] for name, seconds in timings.items()]
    report(
        "Sec. V-C — Aggregation cost of REFD vs Bulyan vs FedAvg (per round)",
        format_table(["aggregator", "time (ms)"], rows),
        note=(
            "Expected shape: REFD cost grows roughly linearly with the reference-set size |Dr|\n"
            "(it performs |Dr| x K model inferences per round) and remains a small constant\n"
            "factor, far cheaper than the clients' local training."
        ),
    )

    assert timings["refd@160"] >= timings["refd@40"]
    # Doubling |Dr| should not blow up the cost super-linearly by a large factor.
    assert timings["refd@160"] <= 10.0 * timings["refd@40"] + 0.05


_GRID_WORKERS = 4


def _sweep_grid():
    """An 8-cell attack × defense × heterogeneity grid at smoke scale."""
    return expand_grid(
        attacks=("lie", "min-max"),
        defenses=("mkrum", "median"),
        betas=(0.5, None),
        scale=smoke_scale,
        num_rounds=4,
        train_size=240,
        test_size=80,
    )


def test_grid_sweep_parallel_speedup_and_cache(benchmark, report, tmp_path):
    scenario_list = _sweep_grid()
    cache_dir = tmp_path / "grid-cache"

    def timed_run(runner):
        start = time.perf_counter()
        results = runner.run(scenario_list)
        return time.perf_counter() - start, results

    def measure():
        serial_seconds, serial_results = timed_run(GridRunner(policy="serial"))
        # Cold cache: executes everything, writes one artifact per cell.
        parallel = GridRunner(policy=f"process:{_GRID_WORKERS}", cache_dir=cache_dir)
        parallel_seconds, parallel_results = timed_run(parallel)
        # Warm cache: every cell (and baseline) must be a hit.
        cached = GridRunner(policy=f"process:{_GRID_WORKERS}", cache_dir=cache_dir)
        cached_seconds, _ = timed_run(cached)
        return {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "cached_seconds": cached_seconds,
            "serial_results": serial_results,
            "parallel_results": parallel_results,
            "cached_stats": cached.last_stats,
        }

    outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    # sched_getaffinity sees cgroup/taskset limits that cpu_count() ignores,
    # so quota-limited CI containers take the lenient branch below.
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    speedup = outcome["serial_seconds"] / max(outcome["parallel_seconds"], 1e-9)

    rows = [
        ["serial (1 worker)", outcome["serial_seconds"], 1.0],
        [f"parallel ({_GRID_WORKERS} workers)", outcome["parallel_seconds"], speedup],
        [
            "re-run, warm cache",
            outcome["cached_seconds"],
            outcome["serial_seconds"] / max(outcome["cached_seconds"], 1e-9),
        ],
    ]
    report(
        f"Grid-sweep dispatch cost — {len(scenario_list)} scenarios, {cores} cores",
        format_table(["mode", "time (s)", "speedup vs serial"], rows),
        note=(
            "Expected shape: with >= 4 cores the process-pool sweep beats serial by >= 2x;\n"
            "the warm-cache re-run skips every completed cell regardless of core count."
        ),
    )

    # Parallel dispatch must not change the science: identical metrics per cell.
    for (label_a, result_a), (label_b, result_b) in zip(
        outcome["serial_results"], outcome["parallel_results"]
    ):
        assert label_a == label_b
        assert result_a.max_accuracy == result_b.max_accuracy
        assert result_a.asr == result_b.asr

    # The cache re-run executes nothing.
    assert outcome["cached_stats"].cache_hits == len(scenario_list)
    assert outcome["cached_stats"].executed == 0
    assert outcome["cached_stats"].baselines_executed == 0
    assert outcome["cached_seconds"] <= outcome["serial_seconds"]

    # Wall-clock speedup needs real cores; single-core CI boxes only check
    # that the pool does not catastrophically regress.
    if cores >= 4:
        assert speedup >= 2.0
    elif cores >= 2:
        assert speedup >= 1.2
    else:
        assert outcome["parallel_seconds"] <= 5.0 * outcome["serial_seconds"] + 5.0
