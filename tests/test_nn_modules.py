"""Tests for the Module system, layers, containers and initialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor


class TestModuleInfrastructure:
    def test_parameter_registration_order_is_stable(self):
        model_a = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(0)), nn.ReLU(),
                                nn.Linear(8, 2, rng=np.random.default_rng(1)))
        model_b = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(2)), nn.ReLU(),
                                nn.Linear(8, 2, rng=np.random.default_rng(3)))
        names_a = [name for name, _ in model_a.named_parameters()]
        names_b = [name for name, _ in model_b.named_parameters()]
        assert names_a == names_b
        assert len(names_a) == 4  # two weights + two biases

    def test_num_parameters(self):
        layer = nn.Linear(3, 5)
        assert layer.num_parameters() == 3 * 5 + 5

    def test_zero_grad_clears_all(self):
        layer = nn.Linear(3, 2)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert all(p.grad is not None for p in layer.parameters())
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())

    def test_requires_grad_toggle(self):
        layer = nn.Linear(3, 2)
        layer.requires_grad_(False)
        assert all(not p.requires_grad for p in layer.parameters())
        out = layer(Tensor(np.ones((1, 3)))).sum()
        assert not out.requires_grad

    def test_state_dict_roundtrip(self):
        source = nn.Linear(4, 3, rng=np.random.default_rng(0))
        target = nn.Linear(4, 3, rng=np.random.default_rng(9))
        target.load_state_dict(source.state_dict())
        for (_, p_src), (_, p_dst) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_allclose(p_src.data, p_dst.data)

    def test_state_dict_returns_copies(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(layer.weight.data, 0.0)

    def test_load_state_dict_missing_key_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert all(not layer.training for layer in model)
        model.train()
        assert all(layer.training for layer in model)


class TestLayers:
    def test_linear_forward_shape(self):
        layer = nn.Linear(6, 4)
        assert layer(Tensor(np.zeros((3, 6)))).shape == (3, 4)

    def test_linear_no_bias(self):
        layer = nn.Linear(6, 4, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv2d_forward_shape(self):
        layer = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        assert layer(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 8, 8, 8)

    def test_conv_transpose2d_forward_shape(self):
        layer = nn.ConvTranspose2d(8, 4, kernel_size=4, stride=2, padding=1)
        assert layer(Tensor(np.zeros((2, 8, 7, 7)))).shape == (2, 4, 14, 14)

    def test_flatten(self):
        assert nn.Flatten()(Tensor(np.zeros((2, 3, 4, 4)))).shape == (2, 48)

    def test_activation_modules_match_tensor_methods(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose(nn.ReLU()(x).data, x.relu().data)
        np.testing.assert_allclose(nn.Tanh()(x).data, x.tanh().data)
        np.testing.assert_allclose(nn.Sigmoid()(x).data, x.sigmoid().data)
        np.testing.assert_allclose(nn.LeakyReLU(0.3)(x).data, x.leaky_relu(0.3).data)
        np.testing.assert_allclose(nn.Softmax()(x).data, F.softmax(x).data)

    def test_pooling_modules(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 4, 4)

    def test_dropout_train_vs_eval(self, rng):
        dropout = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out_train = dropout(x).data
        assert np.any(out_train == 0.0)
        # Inverted dropout keeps the expectation approximately constant.
        assert out_train.mean() == pytest.approx(1.0, abs=0.05)
        dropout.eval()
        np.testing.assert_allclose(dropout(x).data, x.data)

    def test_dropout_validates_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_batchnorm_normalizes_in_train_mode(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)) * 3.0 + 2.0)
        out = bn(x).data
        assert abs(out.mean()) < 0.1
        assert out.std() == pytest.approx(1.0, abs=0.1)

    def test_batchnorm_updates_running_stats_and_eval_uses_them(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.standard_normal((16, 2, 4, 4)) + 5.0)
        bn(x)
        assert np.all(bn._buffers["running_mean"] > 0.5)
        bn.eval()
        out = bn(Tensor(np.full((2, 2, 4, 4), 5.0))).data
        assert np.all(np.isfinite(out))

    def test_batchnorm_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state
        fresh = nn.BatchNorm2d(3)
        state["running_mean"] = np.full(3, 7.0, dtype=np.float32)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh._buffers["running_mean"], np.full(3, 7.0))

    def test_sequential_iteration_and_len(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert len(model) == 2
        assert isinstance(list(model)[1], nn.ReLU)

    def test_sequential_trains_end_to_end(self, rng):
        model = nn.Sequential(
            nn.Linear(2, 16, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.Linear(16, 2, rng=np.random.default_rng(1)),
        )
        optimizer = nn.Adam(model.parameters(), lr=0.02)
        inputs = rng.standard_normal((128, 2)).astype(np.float32)
        labels = (inputs[:, 0] > 0).astype(np.int64)
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(inputs)), labels)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.5
        accuracy = (model(Tensor(inputs)).data.argmax(axis=1) == labels).mean()
        assert accuracy > 0.9


class TestInit:
    def test_fan_in_out_linear(self):
        assert init.calculate_fan_in_and_fan_out((8, 3)) == (3, 8)

    def test_fan_in_out_conv(self):
        assert init.calculate_fan_in_and_fan_out((16, 4, 3, 3)) == (36, 144)

    def test_fan_rejects_1d(self):
        with pytest.raises(ValueError):
            init.calculate_fan_in_and_fan_out((5,))

    def test_kaiming_uniform_bound(self, rng):
        values = init.kaiming_uniform((64, 32), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 32)
        assert values.max() <= bound and values.min() >= -bound
        assert values.dtype == np.float32

    def test_xavier_uniform_bound(self, rng):
        values = init.xavier_uniform((64, 32), rng)
        bound = np.sqrt(6.0 / 96)
        assert values.max() <= bound and values.min() >= -bound

    def test_normal_std(self, rng):
        values = init.normal((2000,), rng, std=0.05)
        assert values.std() == pytest.approx(0.05, rel=0.15)

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0.0)
