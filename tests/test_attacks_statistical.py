"""Tests for the statistical baseline attacks (LIE, Fang, Min-Max, Min-Sum) and simple attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    FangAttack,
    LabelFlip,
    LieAttack,
    MinMaxAttack,
    MinSumAttack,
    RandomWeights,
    SignFlip,
    available_attacks,
    build_attack,
    lie_z_max,
)
from repro.fl.types import AttackRoundContext, LocalTrainingConfig, ModelUpdate
from repro.models import MLP
from repro.nn.serialization import get_flat_params


def _make_context(
    benign_matrix: np.ndarray | None = None,
    num_malicious: int = 2,
    global_params: np.ndarray | None = None,
    attacker_datasets=None,
    dim: int = 6,
):
    if global_params is None:
        global_params = np.zeros(dim)
    benign_updates = None
    if benign_matrix is not None:
        benign_updates = [
            ModelUpdate(client_id=i, parameters=row, num_samples=10)
            for i, row in enumerate(benign_matrix)
        ]

    def model_factory():
        return MLP(in_channels=1, image_size=4, num_classes=3, hidden=4,
                   rng=np.random.default_rng(0))

    return AttackRoundContext(
        round_number=1,
        global_params=global_params,
        previous_global_params=None,
        model_factory=model_factory,
        num_classes=3,
        image_shape=(1, 4, 4),
        selected_malicious_ids=list(range(100, 100 + num_malicious)),
        training_config=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.1),
        benign_num_samples=10,
        rng=np.random.default_rng(0),
        benign_updates=benign_updates,
        attacker_datasets=attacker_datasets,
    )


class TestLie:
    def test_z_max_formula_nonnegative_for_small_cohorts(self):
        assert lie_z_max(10, 2) >= 0.0

    def test_z_max_matches_original_paper_example(self):
        # n = 50, m = 24 is the worked example of the LIE paper: s = 2 and the
        # quantile (n - m - s) / (n - m) = 24/26 gives z of roughly 1.4.
        assert lie_z_max(50, 24) == pytest.approx(1.42, abs=0.1)

    def test_z_max_larger_systems_allow_larger_shifts(self):
        assert lie_z_max(50, 10) >= lie_z_max(10, 2) - 1e-9

    def test_min_z_floor_applies_when_formula_degenerates(self):
        benign = np.random.default_rng(0).standard_normal((8, 6)) + 1.0
        attack = LieAttack(min_z=0.3)
        updates = attack.craft_updates(_make_context(benign, num_malicious=2))
        expected = benign.mean(axis=0) - 0.3 * benign.std(axis=0)
        np.testing.assert_allclose(updates[0].parameters, expected)

    def test_z_max_rejects_all_malicious(self):
        with pytest.raises(ValueError):
            lie_z_max(5, 5)

    def test_crafted_vector_is_mean_minus_z_std(self):
        benign = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        attack = LieAttack(z=1.0)
        updates = attack.craft_updates(_make_context(benign, dim=2))
        expected = benign.mean(axis=0) - benign.std(axis=0)
        for update in updates:
            np.testing.assert_allclose(update.parameters, expected)

    def test_all_sybils_receive_same_update(self):
        benign = np.random.default_rng(0).standard_normal((5, 6))
        updates = LieAttack().craft_updates(_make_context(benign, num_malicious=3))
        assert len(updates) == 3
        for update in updates[1:]:
            np.testing.assert_array_equal(update.parameters, updates[0].parameters)
        assert all(u.is_malicious for u in updates)

    def test_requires_benign_updates(self):
        with pytest.raises(ValueError):
            LieAttack().craft_updates(_make_context(None))


class TestFang:
    def test_moves_opposite_to_benign_direction(self):
        rng = np.random.default_rng(0)
        global_params = np.zeros(6)
        benign = 1.0 + 0.1 * rng.standard_normal((6, 6))  # benign direction: positive
        updates = FangAttack().craft_updates(_make_context(benign, global_params=global_params))
        mean = benign.mean(axis=0)
        assert np.all(updates[0].parameters < mean)

    def test_deviation_is_within_configured_band(self):
        rng = np.random.default_rng(1)
        benign = 1.0 + 0.1 * rng.standard_normal((8, 6))
        attack = FangAttack(low=3.0, high=4.0)
        updates = attack.craft_updates(_make_context(benign))
        mean, std = benign.mean(axis=0), benign.std(axis=0)
        deviation = np.abs(updates[0].parameters - mean) / std
        assert np.all(deviation >= 3.0 - 1e-9) and np.all(deviation <= 4.0 + 1e-9)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            FangAttack(low=4.0, high=3.0)


class TestMinMaxAndMinSum:
    def _benign(self, n: int = 8, dim: int = 10):
        rng = np.random.default_rng(2)
        return 0.5 + 0.2 * rng.standard_normal((n, dim))

    def test_minmax_constraint_satisfied(self):
        benign = self._benign()
        attack = MinMaxAttack(perturbation="std")
        updates = attack.craft_updates(_make_context(benign, dim=10))
        crafted = updates[0].parameters
        pairwise = np.linalg.norm(benign[:, None] - benign[None, :], axis=-1).max()
        distance = np.linalg.norm(benign - crafted, axis=1).max()
        assert distance <= pairwise + 1e-6

    def test_minmax_moves_away_from_mean(self):
        benign = self._benign()
        attack = MinMaxAttack(perturbation="unit_vec")
        updates = attack.craft_updates(_make_context(benign, dim=10))
        assert attack.last_gamma > 0.0
        assert not np.allclose(updates[0].parameters, benign.mean(axis=0))

    def test_minsum_constraint_satisfied(self):
        benign = self._benign()
        attack = MinSumAttack(perturbation="std")
        updates = attack.craft_updates(_make_context(benign, dim=10))
        crafted = updates[0].parameters
        budget = ((benign[:, None] - benign[None, :]) ** 2).sum(axis=-1).sum(axis=1).max()
        cost = ((benign - crafted) ** 2).sum()
        assert cost <= budget + 1e-6

    def test_single_benign_update_falls_back_to_mean(self):
        benign = self._benign(n=1)
        updates = MinMaxAttack().craft_updates(_make_context(benign, dim=10))
        np.testing.assert_allclose(updates[0].parameters, benign[0])

    @pytest.mark.parametrize("perturbation", ["unit_vec", "std", "sign"])
    def test_all_perturbation_types_produce_finite_updates(self, perturbation):
        benign = self._benign()
        updates = MinMaxAttack(perturbation=perturbation).craft_updates(
            _make_context(benign, dim=10)
        )
        assert np.all(np.isfinite(updates[0].parameters))

    def test_unknown_perturbation_rejected(self):
        with pytest.raises(ValueError):
            MinMaxAttack(perturbation="bogus")


class TestSimpleAttacks:
    def test_random_weights_scale_follows_global_model(self):
        global_params = np.random.default_rng(0).standard_normal(1000) * 5.0
        updates = RandomWeights().craft_updates(
            _make_context(None, global_params=global_params, dim=1000)
        )
        crafted_std = updates[0].parameters.std()
        assert crafted_std == pytest.approx(global_params.std(), rel=0.2)

    def test_random_weights_differ_from_global(self):
        global_params = np.ones(50)
        updates = RandomWeights().craft_updates(
            _make_context(None, global_params=global_params, dim=50)
        )
        assert not np.allclose(updates[0].parameters, global_params)

    def test_sign_flip_reflects_mean_update(self):
        global_params = np.zeros(4)
        benign = np.tile(np.array([1.0, -2.0, 0.5, 0.0]), (5, 1))
        updates = SignFlip(gamma=1.0).craft_updates(
            _make_context(benign, global_params=global_params, dim=4)
        )
        np.testing.assert_allclose(updates[0].parameters, [-1.0, 2.0, -0.5, 0.0])

    def test_label_flip_requires_data(self):
        with pytest.raises(ValueError):
            LabelFlip().craft_updates(_make_context(None))

    def test_knowledge_flags_match_threat_model(self):
        assert LieAttack.requires_benign_updates
        assert FangAttack.requires_benign_updates
        assert MinMaxAttack.requires_benign_updates
        assert not RandomWeights.requires_benign_updates
        assert not RandomWeights.requires_attacker_data
        assert LabelFlip.requires_attacker_data


class TestRegistry:
    def test_all_names_build(self):
        for name in available_attacks():
            assert build_attack(name) is not None

    def test_none_returns_none(self):
        assert build_attack(None) is None
        assert build_attack("none") is None

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_attack("unknown-attack")

    def test_kwargs_forwarded(self):
        attack = build_attack("lie", z=0.5)
        assert attack.z == 0.5

    def test_expected_attacks_registered(self):
        names = set(available_attacks())
        assert {"lie", "fang", "min-max", "min-sum", "dfa-r", "dfa-g", "real-data"} <= names
