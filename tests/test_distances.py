"""Tests for the shared defense distance plane (repro.defenses.distances)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses.distances import (
    COSINE_BLOCK_FANOUT,
    DISTANCE_BLOCK_FANOUT,
    cosine_block,
    distance_block,
    pairwise_cosine_similarities,
    pairwise_sq_distances,
)
from repro.fl.executor import (
    ParallelExecutor,
    SerialExecutor,
    ThreadedExecutor,
    pooled_fanout_ready,
    resolve_fanout_fn,
)


def _random_matrix(n=8, dim=192, dtype=np.float32, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim)).astype(dtype)


def _brute_force_sq_distances(matrix):
    m64 = np.asarray(matrix, dtype=np.float64)
    diff = m64[:, None, :] - m64[None, :, :]
    return (diff ** 2).sum(axis=2)


class TestPairwiseSqDistances:
    def test_matches_float64_brute_force(self):
        matrix = _random_matrix()
        distances = pairwise_sq_distances(matrix)
        np.testing.assert_allclose(distances, _brute_force_sq_distances(matrix), rtol=1e-12)
        assert distances.dtype == np.float64

    def test_diagonal_is_exactly_zero(self):
        distances = pairwise_sq_distances(_random_matrix())
        np.testing.assert_array_equal(np.diag(distances), np.zeros(8))

    def test_symmetric(self):
        distances = pairwise_sq_distances(_random_matrix())
        np.testing.assert_array_equal(distances, distances.T)

    def test_bitwise_invariant_to_block_rows(self):
        matrix = _random_matrix(n=7, dim=130)
        full = pairwise_sq_distances(matrix, block_rows=7)
        for rows in (1, 2, 3, 5):
            np.testing.assert_array_equal(
                pairwise_sq_distances(matrix, block_rows=rows), full
            )

    def test_float64_input_accepted(self):
        matrix = _random_matrix(dtype=np.float64)
        np.testing.assert_allclose(
            pairwise_sq_distances(matrix), _brute_force_sq_distances(matrix), rtol=1e-12
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pairwise_sq_distances(np.zeros(5))

    def test_empty_matrix_gives_empty_result(self):
        assert pairwise_sq_distances(np.empty((0, 7))).shape == (0, 0)
        assert pairwise_cosine_similarities(np.empty((0, 7))).shape == (0, 0)

    def test_bitwise_invariant_to_right_row_tiling(self, monkeypatch):
        """Shrinking the temp budget forces the right-hand row tiling of
        ``_exact_distance_block``; the bits must not change."""
        import repro.defenses.distances as distances_module

        matrix = _random_matrix(n=9, dim=70, seed=9)
        full = pairwise_sq_distances(matrix)
        monkeypatch.setattr(distances_module, "_TARGET_BLOCK_ELEMENTS", 64)
        tiled = pairwise_sq_distances(matrix)
        np.testing.assert_array_equal(tiled, full)

    def test_near_duplicate_rows_keep_relative_precision(self):
        """The scenario that broke the Gram trick: tiny distances at large norm."""
        rng = np.random.default_rng(3)
        base = rng.standard_normal(2048)
        base *= 100.0 / np.linalg.norm(base)
        perturbations = 1e-3 * rng.standard_normal((4, 2048))
        matrix = (base[None, :] + perturbations).astype(np.float32)
        distances = pairwise_sq_distances(matrix)
        truth = _brute_force_sq_distances(matrix)
        off_diagonal = ~np.eye(4, dtype=bool)
        np.testing.assert_allclose(
            distances[off_diagonal], truth[off_diagonal], rtol=1e-10
        )
        # All pairwise distances are ~1e-6; none may collapse to zero.
        assert distances[off_diagonal].min() > 0.0


class TestPairwiseCosineSimilarities:
    def _direct(self, matrix, epsilon=0.0):
        m64 = np.asarray(matrix, dtype=np.float64)
        norms = np.sqrt((m64 ** 2).sum(axis=1)) + epsilon
        normalized = m64 / norms[:, None]
        return normalized @ normalized.T

    def test_matches_direct_computation(self):
        matrix = _random_matrix(seed=1)
        similarity = pairwise_cosine_similarities(matrix, epsilon=1e-5)
        np.testing.assert_allclose(similarity, self._direct(matrix, 1e-5), rtol=1e-12)
        assert similarity.dtype == np.float64

    def test_unit_diagonal_without_epsilon(self):
        similarity = pairwise_cosine_similarities(_random_matrix(seed=2))
        np.testing.assert_allclose(np.diag(similarity), np.ones(8), rtol=1e-12)

    def test_epsilon_guards_zero_rows(self):
        matrix = np.zeros((3, 16), dtype=np.float32)
        similarity = pairwise_cosine_similarities(matrix, epsilon=1e-5)
        assert np.all(np.isfinite(similarity))
        np.testing.assert_array_equal(similarity, np.zeros((3, 3)))

    def test_bitwise_invariant_to_block_rows(self):
        matrix = _random_matrix(n=6, dim=90, seed=4)
        full = pairwise_cosine_similarities(matrix, epsilon=1e-5, block_rows=6)
        for rows in (1, 2, 4):
            np.testing.assert_array_equal(
                pairwise_cosine_similarities(matrix, epsilon=1e-5, block_rows=rows), full
            )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pairwise_cosine_similarities(np.zeros((2, 2, 2)))


class TestFanoutParity:
    """Every backend must produce bitwise identical matrices."""

    def test_registered_names_resolve(self):
        assert resolve_fanout_fn(DISTANCE_BLOCK_FANOUT) is distance_block
        assert resolve_fanout_fn(COSINE_BLOCK_FANOUT) is cosine_block

    def test_thread_fanout_bit_identical(self):
        matrix = _random_matrix(seed=5)
        serial = pairwise_sq_distances(matrix)
        with ThreadedExecutor(workers=3) as executor:
            threaded = pairwise_sq_distances(matrix, executor=executor)
        np.testing.assert_array_equal(serial, threaded)

    def test_process_fanout_bit_identical_and_counts(self):
        matrix = _random_matrix(seed=6)
        serial = pairwise_sq_distances(matrix)
        serial_cos = pairwise_cosine_similarities(matrix, epsilon=1e-5)
        with ParallelExecutor(workers=2) as executor:
            pooled = pairwise_sq_distances(matrix, executor=executor)
            assert executor.fanout_calls > 1  # row blocks went through the pool
            assert executor.published_stores == 1  # the matrix shipped once
            pooled_cos = pairwise_cosine_similarities(
                matrix, epsilon=1e-5, executor=executor
            )
            assert executor.published_stores == 2
        np.testing.assert_array_equal(serial, pooled)
        np.testing.assert_array_equal(serial_cos, pooled_cos)

    def test_process_without_shared_memory_falls_back_to_serial(self):
        """Inlining the matrix into every block envelope would re-ship it
        once per block, so the shm opt-out must compute serially instead."""
        matrix = _random_matrix(seed=7)
        serial = pairwise_sq_distances(matrix)
        with ParallelExecutor(workers=2, use_shared_memory=False) as executor:
            result = pairwise_sq_distances(matrix, executor=executor)
            assert executor.fanout_calls == 0
            assert executor.published_stores == 0
        np.testing.assert_array_equal(serial, result)

    def test_single_block_skips_the_pool(self):
        matrix = _random_matrix(n=3, seed=8)
        with ParallelExecutor(workers=2) as executor:
            result = pairwise_sq_distances(matrix, executor=executor, block_rows=3)
            assert executor.fanout_calls == 0
        np.testing.assert_array_equal(result, pairwise_sq_distances(matrix))


class TestPooledFanoutReady:
    def test_none_executor(self):
        assert not pooled_fanout_ready(None)

    def test_serial_backend(self):
        assert not pooled_fanout_ready(SerialExecutor())

    def test_thread_backend(self):
        assert pooled_fanout_ready(ThreadedExecutor(workers=1))
        assert pooled_fanout_ready(ThreadedExecutor(workers=1), payload_by_ref=False)

    def test_process_backend_requires_by_ref_payloads(self):
        executor = ParallelExecutor(workers=1)
        assert pooled_fanout_ready(executor)
        assert not pooled_fanout_ready(executor, payload_by_ref=False)
