"""Chaos-path tests: fault injection, recovery, checkpoints, lease steals.

The contract under test is stronger than "the run survives": a run that
recovers from injected faults must be *bit-identical* to the fault-free
run, because the recovery plane only ever re-executes pure tasks whose RNG
state travels with them.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import build_simulation, smoke_scale
from repro.experiments.dispatch import ClaimLedger
from repro.experiments.io import atomic_write_json, quarantine_count, read_json
from repro.fl.executor import (
    ParallelExecutor,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.fl.faults import (
    FaultEvent,
    FaultPlan,
    FaultStats,
    ResilienceConfig,
    RoundExecutionError,
)


def _records_signature(result):
    return [
        (
            record.round_number,
            tuple(record.selected_client_ids),
            record.accuracy,
            record.test_loss,
            tuple(record.cut_client_ids),
        )
        for record in result.records
    ]


def _run(resilience=None, executor=None, num_rounds=2, **scale_overrides):
    config = smoke_scale(
        attack="lie", defense="mkrum", num_rounds=num_rounds, **scale_overrides
    )
    with build_simulation(
        config, executor=executor, resilience=resilience
    ) as simulation:
        result = simulation.run(num_rounds)
        params = simulation.server.global_params.copy()
        stats = simulation.fault_stats
    return result, params, stats


class TestFaultPlan:
    def test_roundtrip_through_json(self, tmp_path):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", round=1, slot=0, cell="mkrum"),
                FaultEvent(kind="hang", round=0, client=3, seconds=2.5),
                FaultEvent(kind="corrupt-artifact", cell="median"),
            ),
            seed=7,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.from_file(path) == plan

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(seed=3, num_rounds=4, num_slots=8, rate=0.5)
        b = FaultPlan.random(seed=3, num_rounds=4, num_slots=8, rate=0.5)
        c = FaultPlan.random(seed=4, num_rounds=4, num_slots=8, rate=0.5)
        assert a == b
        assert a != c

    def test_for_cell_narrows_by_label_substring(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", cell="mkrum"),
                FaultEvent(kind="hang", seconds=1.0),  # cell=None: all cells
            )
        )
        narrowed = plan.for_cell("fashion-mnist/median/lie")
        assert [event.kind for event in narrowed.events] == ["hang"]
        assert len(plan.for_cell("fashion-mnist/mkrum/lie").events) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(kind="meteor-strike")


class TestRecoveryBitIdentical:
    """Injected faults + recovery must not perturb the science."""

    def test_serial_crash_recovery(self):
        clean, clean_params, _ = _run()
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", round=0, slot=0),
                FaultEvent(kind="crash", round=1, slot=2),
            )
        )
        chaos, chaos_params, stats = _run(
            ResilienceConfig(max_retries=2, backoff_base=0.0, fault_plan=plan)
        )
        assert stats.crashes_injected == 2
        assert stats.retries >= 2
        assert np.array_equal(clean_params, chaos_params)
        assert _records_signature(clean) == _records_signature(chaos)

    def test_shm_failure_degrades_to_inline_payloads(self):
        clean, clean_params, _ = _run()
        plan = FaultPlan(events=(FaultEvent(kind="shm", round=0, slot=1),))
        chaos, chaos_params, stats = _run(
            ResilienceConfig(max_retries=1, backoff_base=0.0, fault_plan=plan)
        )
        assert stats.shm_failures_injected == 1
        assert stats.shm_fallbacks == 1
        assert np.array_equal(clean_params, chaos_params)
        assert _records_signature(clean) == _records_signature(chaos)

    @pytest.mark.slow
    def test_process_pool_worker_kill_recovery(self):
        """A hard worker kill mid-round breaks the pool; the rebuilt pool
        re-executes only the lost tasks and the run stays bit-identical."""
        clean, clean_params, _ = _run(executor=SerialExecutor())
        plan = FaultPlan(events=(FaultEvent(kind="crash", round=0, slot=0),))
        chaos, chaos_params, stats = _run(
            resilience=ResilienceConfig(
                max_retries=2, backoff_base=0.0, fault_plan=plan
            ),
            executor=ParallelExecutor(workers=2),
        )
        assert stats.crashes_injected == 1
        assert stats.pool_rebuilds >= 1
        assert np.array_equal(clean_params, chaos_params)
        assert _records_signature(clean) == _records_signature(chaos)


class TestStragglerCutoff:
    def test_hung_client_is_cut_and_recorded(self):
        """With no retry budget, a straggler past the deadline is dropped
        from aggregation and shows up in the round record."""
        plan = FaultPlan(events=(FaultEvent(kind="hang", round=0, slot=1, seconds=5.0),))
        result, _, stats = _run(
            ResilienceConfig(
                max_retries=0,
                backoff_base=0.0,
                round_deadline=0.4,
                fault_plan=plan,
            ),
            executor=ThreadedExecutor(workers=4),
        )
        assert stats.hangs_injected == 1
        assert stats.tasks_cut >= 1
        assert stats.clients_cut == 1
        cut = [record.cut_client_ids for record in result.records]
        assert len(cut[0]) == 1
        assert cut[1] == []

    def test_hang_with_retry_budget_stays_bit_identical(self):
        """A per-attempt deadline window means the retry (without the
        injected hang) completes and nothing is cut."""
        clean, clean_params, _ = _run(executor=ThreadedExecutor(workers=4))
        plan = FaultPlan(events=(FaultEvent(kind="hang", round=0, slot=0, seconds=5.0),))
        chaos, chaos_params, stats = _run(
            ResilienceConfig(
                max_retries=1,
                backoff_base=0.0,
                round_deadline=0.4,
                fault_plan=plan,
            ),
            executor=ThreadedExecutor(workers=4),
        )
        assert stats.tasks_cut == 1
        assert stats.clients_cut == 0
        assert np.array_equal(clean_params, chaos_params)
        assert _records_signature(clean) == _records_signature(chaos)


class TestErrorBudget:
    def test_exhausted_budget_names_round_and_client(self):
        plan = FaultPlan(
            events=tuple(
                FaultEvent(kind="crash", round=0, slot=0) for _ in range(1)
            )
        )
        # max_retries=0: the single injected crash exhausts the budget.
        config = smoke_scale(attack="lie", defense="mkrum", num_rounds=1)
        with build_simulation(
            config,
            resilience=ResilienceConfig(
                max_retries=0, backoff_base=0.0, fault_plan=plan
            ),
        ) as simulation:
            with pytest.raises(RoundExecutionError) as excinfo:
                simulation.run(1)
        assert excinfo.value.round_number == 0
        assert excinfo.value.client_id is not None
        assert "round 0" in str(excinfo.value)


class TestCheckpointResume:
    def test_resume_is_bit_identical_to_straight_run(self, tmp_path):
        config = smoke_scale(attack="lie", defense="mkrum", num_rounds=3)
        ckpt = tmp_path / "sim.ckpt.json"

        with build_simulation(config) as straight:
            full = straight.run(3)
            full_params = straight.server.global_params.copy()

        with build_simulation(config) as first:
            first.run(2, checkpoint_path=ckpt)
        assert ckpt.exists()

        with build_simulation(config) as resumed:
            result = resumed.run(3, checkpoint_path=ckpt, resume=True)
            assert resumed.fault_stats.rounds_resumed == 2
            assert np.array_equal(resumed.server.global_params, full_params)
        assert _records_signature(result) == _records_signature(full)

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        config = smoke_scale(attack="lie", defense="mkrum", num_rounds=2)
        ckpt = tmp_path / "missing.ckpt.json"
        with build_simulation(config) as simulation:
            result = simulation.run(2, checkpoint_path=ckpt, resume=True)
        assert len(result.records) == 2
        assert simulation.fault_stats.rounds_resumed == 0


class TestArtifactQuarantine:
    def test_read_json_quarantines_corrupt_artifacts(self, tmp_path):
        path = tmp_path / "cell.json"
        atomic_write_json(path, {"accuracy": 0.5})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        before = quarantine_count()
        assert read_json(path) is None
        assert quarantine_count() == before + 1
        assert not path.exists()
        assert (tmp_path / "cell.json.corrupt").exists()
        # A clean artifact written under the original name reads fine.
        atomic_write_json(path, {"accuracy": 0.5})
        assert read_json(path) == {"accuracy": 0.5}

    def test_read_json_missing_file_is_a_clean_miss(self, tmp_path):
        before = quarantine_count()
        assert read_json(tmp_path / "nope.json") is None
        assert quarantine_count() == before


class TestPoolRebuildBetweenRounds:
    @pytest.mark.slow
    def test_plain_map_survives_a_worker_killed_between_rounds(self):
        """Satellite contract: ParallelExecutor.map() detects a pool broken
        while idle and transparently rebuilds it once."""
        executor = ParallelExecutor(workers=2)
        try:
            config = smoke_scale(attack=None, defense="fedavg", num_rounds=1)
            with build_simulation(config, executor=executor) as simulation:
                simulation.run(1)
                # Kill one idle worker; the *next* map() sees a broken pool.
                processes = dict(executor._pool._processes)
                os.kill(next(iter(processes)), signal.SIGKILL)
                time.sleep(0.2)
                simulation.run(1)
            assert executor.pool_rebuilds == 1
        finally:
            executor.close()


class TestLeaseStealUnderKill:
    @pytest.mark.slow
    def test_sigkilled_peer_lease_is_stolen(self, tmp_path):
        """A peer holding a claim with a live heartbeat dies via SIGKILL;
        once its lease goes stale the survivor steals the cell."""
        ttl = 0.5
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                (
                    "import sys, time; sys.path.insert(0, %r); "
                    "from repro.experiments.dispatch import ClaimLedger; "
                    "ledger = ClaimLedger(%r, 'doomed-peer', %r); "
                    "assert ledger.try_claim('cell0'); "
                    "ledger.start_heartbeat(); "
                    "print('claimed', flush=True); "
                    "time.sleep(60)"
                )
                % (str(Path(__file__).resolve().parents[1] / "src"), str(tmp_path), ttl),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "claimed"
            survivor = ClaimLedger(tmp_path, "survivor", ttl=ttl)
            # While the peer heartbeats, the claim must hold.
            assert not survivor.try_claim("cell0")
            child.kill()
            child.wait(timeout=10)
            deadline = time.monotonic() + 10 * ttl
            stolen = False
            while time.monotonic() < deadline:
                if survivor.try_claim("cell0"):
                    stolen = True
                    break
                time.sleep(ttl / 4)
            assert stolen, "lease of SIGKILL'd peer was never stolen"
            assert survivor.stolen == 1
            survivor.release_all()
        finally:
            if child.poll() is None:
                child.kill()
            child.wait()


class TestFaultStats:
    def test_merge_adds_matching_counters_only(self):
        stats = FaultStats(retries=1)
        stats.merge({"retries": 2, "clients_cut": 3, "not_a_counter": 9})
        assert stats.retries == 3
        assert stats.clients_cut == 3
        assert not hasattr(stats, "not_a_counter")

    def test_any_and_to_dict(self):
        stats = FaultStats()
        assert not stats.any()
        stats.note_injected("crash")
        assert stats.any()
        assert stats.to_dict()["crashes_injected"] == 1
