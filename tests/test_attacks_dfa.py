"""Tests for the data-free attacks DFA-R and DFA-G and their shared machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import DfaG, DfaHyperParameters, DfaR, RealDataFlip
from repro.attacks.dfa_common import _ArrayView, train_adversarial_classifier
from repro.attacks.regularization import DistanceRegularizer
from repro.fl.types import AttackRoundContext, LocalTrainingConfig, ModelUpdate
from repro.models import MLP, SmallCNN
from repro.nn.serialization import get_flat_params


def _model_factory():
    return SmallCNN(in_channels=1, image_size=12, num_classes=10, width=4,
                    rng=np.random.default_rng(0))


def _context(
    num_malicious: int = 2,
    previous: np.ndarray | None = None,
    attacker_datasets=None,
    seed: int = 0,
) -> AttackRoundContext:
    global_params = get_flat_params(_model_factory())
    return AttackRoundContext(
        round_number=1,
        global_params=global_params,
        previous_global_params=previous,
        model_factory=_model_factory,
        num_classes=10,
        image_shape=(1, 12, 12),
        selected_malicious_ids=list(range(100, 100 + num_malicious)),
        training_config=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.1),
        benign_num_samples=10,
        rng=np.random.default_rng(seed),
        benign_updates=None,
        attacker_datasets=attacker_datasets,
    )


def _fast_hyper(**overrides) -> DfaHyperParameters:
    defaults = dict(num_synthetic=8, synthesis_epochs=3, synthesis_lr=0.02)
    defaults.update(overrides)
    return DfaHyperParameters(**defaults)


class TestHyperParameters:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_synthetic": 0},
            {"synthesis_epochs": 0},
            {"synthesis_lr": 0.0},
            {"regularization_weight": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DfaHyperParameters(**kwargs)

    def test_defaults_match_paper(self):
        hyper = DfaHyperParameters()
        assert hyper.num_synthetic == 50
        assert hyper.train_synthesizer and hyper.use_regularization


class TestDistanceRegularizer:
    def test_value_matches_closed_form(self):
        model = _model_factory()
        global_params = get_flat_params(model)
        previous = global_params + 0.1
        regularizer = DistanceRegularizer(model, global_params, previous, weight=1.0)
        # Model parameters equal the global model => first term is ~0.
        value = regularizer(model).item()
        expected = -np.linalg.norm(global_params - previous)
        assert value == pytest.approx(expected, rel=1e-4, abs=1e-4)

    def test_without_previous_round_constant_is_zero(self):
        model = _model_factory()
        global_params = get_flat_params(model)
        regularizer = DistanceRegularizer(model, global_params, None)
        assert regularizer.previous_round_distance == 0.0
        assert regularizer(model).item() == pytest.approx(0.0, abs=1e-3)

    def test_weight_scales_term(self):
        model = _model_factory()
        global_params = get_flat_params(model) + 1.0
        one = DistanceRegularizer(model, global_params, None, weight=1.0)(model).item()
        five = DistanceRegularizer(model, global_params, None, weight=5.0)(model).item()
        assert five == pytest.approx(5 * one, rel=1e-5)

    def test_gradient_flows_to_model_parameters(self):
        model = _model_factory()
        global_params = get_flat_params(model) + 0.5
        regularizer = DistanceRegularizer(model, global_params, None)
        regularizer(model).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestAdversarialClassifierTraining:
    def test_produces_vector_of_right_size_and_losses(self, rng):
        context = _context()
        images = rng.standard_normal((8, 1, 12, 12)).astype(np.float32)
        labels = np.zeros(8, dtype=np.int64)
        vector, losses = train_adversarial_classifier(context, images, labels, _fast_hyper())
        assert vector.shape == context.global_params.shape
        assert len(losses) == context.training_config.local_epochs

    def test_regularization_keeps_update_closer_to_global(self, rng):
        context = _context()
        images = rng.standard_normal((16, 1, 12, 12)).astype(np.float32)
        labels = np.zeros(16, dtype=np.int64)
        with_reg, _ = train_adversarial_classifier(
            context, images, labels, _fast_hyper(use_regularization=True, regularization_weight=5.0)
        )
        without_reg, _ = train_adversarial_classifier(
            context, images, labels, _fast_hyper(use_regularization=False)
        )
        dist_with = np.linalg.norm(with_reg - context.global_params)
        dist_without = np.linalg.norm(without_reg - context.global_params)
        assert dist_with < dist_without

    def test_array_view_adapter(self):
        view = _ArrayView(np.zeros((4, 1, 2, 2)), np.array([0, 1, 0, 1]))
        assert len(view) == 4
        images, labels = view.arrays()
        assert images.shape == (4, 1, 2, 2) and labels.dtype == np.int64


class TestDfaR:
    def test_requires_no_benign_updates_or_data(self):
        assert not DfaR.requires_benign_updates
        assert not DfaR.requires_attacker_data

    def test_synthesize_shapes(self):
        attack = DfaR(hyper=_fast_hyper(), seed=1)
        images = attack.synthesize(_context())
        assert images.shape == (8, 1, 12, 12)
        assert images.dtype == np.float32

    def test_synthesis_loss_decreases(self):
        attack = DfaR(hyper=_fast_hyper(synthesis_epochs=10, synthesis_lr=0.05), seed=1)
        attack.synthesize(_context())
        losses = attack.synthesis_loss_history[0]
        assert losses[-1] < losses[0]

    def test_craft_updates_one_per_sybil(self):
        attack = DfaR(hyper=_fast_hyper(), seed=1)
        updates = attack.craft_updates(_context(num_malicious=3))
        assert len(updates) == 3
        assert all(u.is_malicious for u in updates)
        assert all(u.num_samples == 8 for u in updates)

    def test_target_label_fixed_across_rounds(self):
        attack = DfaR(hyper=_fast_hyper(), seed=2)
        attack.craft_updates(_context())
        first = attack.target_label
        attack.craft_updates(_context(seed=5))
        assert attack.target_label == first

    def test_static_mode_skips_training(self):
        attack = DfaR(hyper=_fast_hyper(train_synthesizer=False), seed=1)
        attack.synthesize(_context())
        # No optimization epochs recorded (all zeros placeholder).
        assert np.allclose(attack.synthesis_loss_history[0], 0.0)

    def test_multiple_filter_groups(self):
        attack = DfaR(hyper=_fast_hyper(num_synthetic=6), num_filter_groups=3, seed=1)
        images = attack.synthesize(_context())
        assert images.shape[0] == 6

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            DfaR(kernel_size=0)
        with pytest.raises(ValueError):
            DfaR(num_filter_groups=0)

    def test_crafted_update_differs_from_global(self):
        attack = DfaR(hyper=_fast_hyper(), seed=1)
        context = _context()
        updates = attack.craft_updates(context)
        assert not np.allclose(updates[0].parameters, context.global_params)


class TestDfaG:
    def test_requires_no_benign_updates_or_data(self):
        assert not DfaG.requires_benign_updates
        assert not DfaG.requires_attacker_data

    def test_generator_is_created_lazily_and_persists(self):
        attack = DfaG(hyper=_fast_hyper(), noise_dim=8, base_width=4, seed=3)
        assert attack.generator is None
        attack.craft_updates(_context())
        generator = attack.generator
        assert generator is not None
        attack.craft_updates(_context(seed=9))
        assert attack.generator is generator

    def test_fixed_noise_reused_across_rounds(self):
        attack = DfaG(hyper=_fast_hyper(), noise_dim=8, base_width=4, seed=3)
        attack.craft_updates(_context())
        noise_first = attack._fixed_noise.copy()
        attack.craft_updates(_context(seed=11))
        np.testing.assert_array_equal(attack._fixed_noise, noise_first)

    def test_generator_objective_increases_cross_entropy(self):
        attack = DfaG(
            hyper=_fast_hyper(synthesis_epochs=10, synthesis_lr=0.05),
            noise_dim=8,
            base_width=4,
            seed=3,
        )
        attack.target_label = 0
        attack.synthesize(_context())
        losses = attack.synthesis_loss_history[0]
        assert losses[-1] > losses[0]

    def test_synthetic_images_match_task_shape(self):
        attack = DfaG(hyper=_fast_hyper(), noise_dim=8, base_width=4, seed=3)
        attack.target_label = 1
        images = attack.synthesize(_context())
        assert images.shape == (8, 1, 12, 12)

    def test_static_mode_records_no_losses(self):
        attack = DfaG(hyper=_fast_hyper(train_synthesizer=False), noise_dim=8, base_width=4, seed=3)
        attack.target_label = 1
        attack.synthesize(_context())
        assert attack.synthesis_loss_history[0] == []

    def test_craft_updates_count_and_flags(self):
        attack = DfaG(hyper=_fast_hyper(), noise_dim=8, base_width=4, seed=3)
        updates = attack.craft_updates(_context(num_malicious=2))
        assert len(updates) == 2
        assert all(u.is_malicious for u in updates)

    def test_invalid_noise_dim(self):
        with pytest.raises(ValueError):
            DfaG(noise_dim=0)


class TestRealDataFlip:
    def _attacker_datasets(self, tiny_task):
        return {100: tiny_task.train.subset(range(20)), 101: tiny_task.train.subset(range(20, 30))}

    def test_requires_attacker_data(self):
        with pytest.raises(ValueError):
            RealDataFlip(hyper=_fast_hyper()).craft_updates(_context())

    def test_crafts_updates_from_real_data(self, tiny_task):
        attack = RealDataFlip(hyper=_fast_hyper(), seed=5)
        context = _context(attacker_datasets=self._attacker_datasets(tiny_task))
        updates = attack.craft_updates(context)
        assert len(updates) == 2
        assert not np.allclose(updates[0].parameters, context.global_params)

    def test_caps_at_num_synthetic_samples(self, tiny_task):
        attack = RealDataFlip(hyper=_fast_hyper(num_synthetic=5), seed=5)
        context = _context(attacker_datasets=self._attacker_datasets(tiny_task))
        updates = attack.craft_updates(context)
        assert updates[0].num_samples == 5
