"""Tests for ArrayDataset, Subset, DataLoader and train/test splitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataLoader, Subset, train_test_split


def _dataset(n: int = 20, classes: int = 4) -> ArrayDataset:
    rng = np.random.default_rng(0)
    images = rng.standard_normal((n, 1, 8, 8)).astype(np.float32)
    labels = np.arange(n) % classes
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_length_and_getitem(self):
        ds = _dataset(10)
        assert len(ds) == 10
        image, label = ds[3]
        assert image.shape == (1, 8, 8)
        assert label == 3 % 4

    def test_rejects_non_4d_images(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 8, 8)), np.zeros(5))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 1, 8, 8)), np.zeros(4))

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 1, 8, 8)), np.zeros((5, 1)))

    def test_image_shape_and_num_classes(self):
        ds = _dataset(12, classes=3)
        assert ds.image_shape == (1, 8, 8)
        assert ds.num_classes == 3

    def test_class_counts(self):
        ds = _dataset(12, classes=4)
        np.testing.assert_array_equal(ds.class_counts(), [3, 3, 3, 3])

    def test_class_counts_with_min_length(self):
        ds = _dataset(12, classes=4)
        assert len(ds.class_counts(num_classes=10)) == 10

    def test_arrays_returns_full_data(self):
        ds = _dataset(6)
        images, labels = ds.arrays()
        assert images.shape[0] == 6 and labels.shape[0] == 6


class TestSubset:
    def test_subset_indexing(self):
        ds = _dataset(10)
        sub = ds.subset([2, 4, 6])
        assert len(sub) == 3
        image, label = sub[1]
        np.testing.assert_allclose(image, ds[4][0])
        assert label == ds[4][1]

    def test_subset_out_of_range_raises(self):
        ds = _dataset(5)
        with pytest.raises(IndexError):
            Subset(ds, [0, 7])

    def test_subset_class_counts(self):
        ds = _dataset(12, classes=4)
        sub = ds.subset([0, 4, 8])  # all label 0
        counts = sub.class_counts()
        assert counts[0] == 3 and counts[1:].sum() == 0

    def test_subset_arrays_materialize(self):
        ds = _dataset(10)
        sub = ds.subset([1, 3])
        images, labels = sub.arrays()
        assert images.shape[0] == 2
        np.testing.assert_array_equal(labels, ds.labels[[1, 3]])

    def test_subset_image_shape(self):
        ds = _dataset(10)
        assert ds.subset([0]).image_shape == ds.image_shape


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ds = _dataset(23)
        loader = DataLoader(ds, batch_size=5)
        total = sum(len(labels) for _, labels in loader)
        assert total == 23
        assert len(loader) == 5

    def test_drop_last(self):
        ds = _dataset(23)
        loader = DataLoader(ds, batch_size=5, drop_last=True)
        sizes = [len(labels) for _, labels in loader]
        assert sizes == [5, 5, 5, 5]
        assert len(loader) == 4

    def test_shuffle_changes_order_but_not_content(self):
        ds = _dataset(30)
        loader = DataLoader(ds, batch_size=30, shuffle=True, rng=np.random.default_rng(1))
        _, labels = next(iter(loader))
        assert not np.array_equal(labels, ds.labels)
        assert sorted(labels) == sorted(ds.labels)

    def test_shuffle_reproducible_with_seeded_rng(self):
        ds = _dataset(30)
        loader_a = DataLoader(ds, batch_size=10, shuffle=True, rng=np.random.default_rng(3))
        loader_b = DataLoader(ds, batch_size=10, shuffle=True, rng=np.random.default_rng(3))
        for (_, la), (_, lb) in zip(loader_a, loader_b):
            np.testing.assert_array_equal(la, lb)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(_dataset(5), batch_size=0)

    def test_works_on_subset(self):
        ds = _dataset(20)
        sub = ds.subset(range(7))
        total = sum(len(labels) for _, labels in DataLoader(sub, batch_size=3))
        assert total == 7


class TestTrainTestSplit:
    def test_split_sizes(self, rng):
        ds = _dataset(40)
        train, test = train_test_split(ds, 0.25, rng)
        assert len(train) == 30 and len(test) == 10

    def test_split_is_disjoint_and_complete(self, rng):
        ds = _dataset(40)
        train, test = train_test_split(ds, 0.3, rng)
        combined = sorted(list(train.indices) + list(test.indices))
        assert combined == list(range(40))

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(_dataset(10), 1.5, rng)
