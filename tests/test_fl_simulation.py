"""Integration tests for the Server and the end-to-end FederatedSimulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import DfaG, DfaHyperParameters, DfaR, LieAttack
from repro.defenses import Median, MultiKrum, NoDefense, Refd
from repro.fl.server import Server
from repro.fl.simulation import FederatedSimulation
from repro.fl.types import LocalTrainingConfig, ModelUpdate
from repro.nn.serialization import get_flat_params


def _fast_hyper():
    return DfaHyperParameters(num_synthetic=6, synthesis_epochs=2, synthesis_lr=0.02)


def _simulation(tiny_task, mlp_factory, **kwargs):
    defaults = dict(
        task=tiny_task,
        model_factory=mlp_factory,
        num_clients=10,
        clients_per_round=5,
        malicious_fraction=0.2,
        beta=0.5,
        training_config=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.1),
        seed=0,
    )
    defaults.update(kwargs)
    return FederatedSimulation(**defaults)


class TestServer:
    def test_aggregate_updates_global_model_and_history(self, mlp_factory):
        server = Server(model_factory=mlp_factory, defense=NoDefense())
        initial = server.distribute()
        update = ModelUpdate(client_id=0, parameters=initial + 1.0, num_samples=5)
        server.aggregate([update])
        np.testing.assert_allclose(server.global_params, initial + 1.0)
        np.testing.assert_allclose(server.previous_global_params, initial)
        assert server.round_number == 1
        np.testing.assert_allclose(get_flat_params(server.global_model), initial + 1.0)

    def test_aggregate_rejects_empty(self, mlp_factory):
        server = Server(model_factory=mlp_factory)
        with pytest.raises(ValueError):
            server.aggregate([])

    def test_evaluate_returns_fractional_accuracy(self, mlp_factory, tiny_task):
        server = Server(model_factory=mlp_factory)
        accuracy, loss = server.evaluate(tiny_task.test)
        assert 0.0 <= accuracy <= 1.0 and loss > 0.0


class TestSimulationSetup:
    def test_validation_errors(self, tiny_task, mlp_factory):
        with pytest.raises(ValueError):
            _simulation(tiny_task, mlp_factory, num_clients=1)
        with pytest.raises(ValueError):
            _simulation(tiny_task, mlp_factory, clients_per_round=20)
        with pytest.raises(ValueError):
            _simulation(tiny_task, mlp_factory, malicious_fraction=1.0)

    def test_malicious_clients_have_no_benign_role(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory)
        assert len(sim.malicious_client_ids) == 2
        for cid in sim.malicious_client_ids:
            assert cid not in sim.benign_clients
            assert cid in sim.attacker_datasets

    def test_all_clients_are_covered(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory)
        assert len(sim.benign_clients) + len(sim.malicious_client_ids) == 10

    def test_refd_gets_reference_split(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory, defense=Refd(num_rejected=1))
        assert sim.server.reference_dataset is not None
        assert len(sim.server.reference_dataset) + len(sim.eval_dataset) == len(tiny_task.test)

    def test_non_refd_defense_uses_full_test_set(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory, defense=MultiKrum())
        assert sim.server.reference_dataset is None
        assert len(sim.eval_dataset) == len(tiny_task.test)


class TestSimulationRounds:
    def test_round_record_consistency_without_attack(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory, malicious_fraction=0.0)
        record = sim.run_round()
        assert len(record.selected_client_ids) == 5
        assert record.selected_malicious_ids == []
        assert 0.0 <= record.accuracy <= 1.0

    def test_run_returns_one_record_per_round(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory, malicious_fraction=0.0)
        result = sim.run(3)
        assert len(result.records) == 3
        assert [r.round_number for r in result.records] == [0, 1, 2]
        assert result.final_params.shape == get_flat_params(mlp_factory()).shape

    def test_run_rejects_zero_rounds(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory)
        with pytest.raises(ValueError):
            sim.run(0)

    def test_accuracy_improves_over_clean_training(self, tiny_task, mlp_factory):
        sim = _simulation(
            tiny_task,
            mlp_factory,
            malicious_fraction=0.0,
            training_config=LocalTrainingConfig(local_epochs=2, batch_size=16, learning_rate=0.2),
        )
        result = sim.run(8)
        assert result.max_accuracy > 0.4
        assert result.accuracies[-1] > result.accuracies[0]

    def test_attack_receives_correct_number_of_slots(self, tiny_task, mlp_factory):
        attack = DfaR(hyper=_fast_hyper(), seed=1)
        sim = _simulation(tiny_task, mlp_factory, attack=attack, defense=MultiKrum(), seed=3)
        result = sim.run(4)
        for record in result.records:
            if record.num_malicious_selected:
                assert record.num_malicious_passed is not None
                assert 0 <= record.num_malicious_passed <= record.num_malicious_selected

    def test_statistical_defense_reports_no_pass_counts(self, tiny_task, mlp_factory):
        attack = LieAttack()
        sim = _simulation(tiny_task, mlp_factory, attack=attack, defense=Median(), seed=3)
        result = sim.run(3)
        assert all(record.num_malicious_passed is None for record in result.records)

    def test_simulation_is_deterministic_given_seed(self, tiny_task, mlp_factory):
        result_a = _simulation(tiny_task, mlp_factory, malicious_fraction=0.0, seed=5).run(3)
        result_b = _simulation(tiny_task, mlp_factory, malicious_fraction=0.0, seed=5).run(3)
        np.testing.assert_allclose(result_a.final_params, result_b.final_params)
        assert result_a.accuracies == result_b.accuracies

    def test_different_seeds_select_different_clients(self, tiny_task, mlp_factory):
        records_a = _simulation(tiny_task, mlp_factory, malicious_fraction=0.0, seed=1).run(3).records
        records_b = _simulation(tiny_task, mlp_factory, malicious_fraction=0.0, seed=2).run(3).records
        selections_a = [tuple(r.selected_client_ids) for r in records_a]
        selections_b = [tuple(r.selected_client_ids) for r in records_b]
        assert selections_a != selections_b

    def test_dfa_g_end_to_end_with_refd(self, tiny_task, mlp_factory):
        attack = DfaG(hyper=_fast_hyper(), noise_dim=8, base_width=4, seed=2)
        sim = _simulation(
            tiny_task, mlp_factory, attack=attack, defense=Refd(num_rejected=1), seed=4
        )
        result = sim.run(3)
        assert len(result.records) == 3
        # REFD selects updates, so pass counts are defined whenever attackers
        # were sampled.
        for record in result.records:
            if record.num_malicious_selected:
                assert record.num_malicious_passed is not None

    def test_iid_split_supported(self, tiny_task, mlp_factory):
        sim = _simulation(tiny_task, mlp_factory, beta=None, malicious_fraction=0.0)
        result = sim.run(2)
        assert len(result.records) == 2
