"""Tests for the synthetic dataset generators (Fashion-MNIST / CIFAR-10 / SVHN stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    DATASET_FACTORIES,
    SyntheticImageSpec,
    cifar10_like,
    fashion_mnist_like,
    load_dataset,
    make_synthetic_task,
    svhn_like,
)


class TestSpecValidation:
    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            SyntheticImageSpec(name="x", channels=2, image_size=16)

    def test_too_small_image(self):
        with pytest.raises(ValueError):
            SyntheticImageSpec(name="x", channels=1, image_size=4)

    def test_too_few_classes(self):
        with pytest.raises(ValueError):
            SyntheticImageSpec(name="x", channels=1, image_size=16, num_classes=1)

    def test_negative_noise(self):
        with pytest.raises(ValueError):
            SyntheticImageSpec(name="x", channels=1, image_size=16, noise_std=-0.1)


class TestGeneration:
    def test_shapes_and_counts(self):
        spec = SyntheticImageSpec(name="t", channels=1, image_size=16)
        task = make_synthetic_task(spec, train_size=100, test_size=40, seed=0)
        assert task.train.images.shape == (100, 1, 16, 16)
        assert task.test.images.shape == (40, 1, 16, 16)
        assert task.image_shape == (1, 16, 16)
        assert task.num_classes == 10

    def test_invalid_sizes(self):
        spec = SyntheticImageSpec(name="t", channels=1, image_size=16)
        with pytest.raises(ValueError):
            make_synthetic_task(spec, train_size=0, test_size=10)

    def test_deterministic_given_seed(self):
        spec = SyntheticImageSpec(name="t", channels=1, image_size=16)
        a = make_synthetic_task(spec, 50, 20, seed=3)
        b = make_synthetic_task(spec, 50, 20, seed=3)
        np.testing.assert_array_equal(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        spec = SyntheticImageSpec(name="t", channels=1, image_size=16)
        a = make_synthetic_task(spec, 50, 20, seed=3)
        b = make_synthetic_task(spec, 50, 20, seed=4)
        assert not np.array_equal(a.train.images, b.train.images)

    def test_balanced_classes_by_default(self):
        spec = SyntheticImageSpec(name="t", channels=1, image_size=16)
        task = make_synthetic_task(spec, train_size=200, test_size=20, seed=0)
        counts = task.train.class_counts(10)
        assert counts.min() >= 19 and counts.max() <= 21

    def test_imbalanced_classes_when_requested(self):
        spec = SyntheticImageSpec(
            name="t", channels=1, image_size=16, class_imbalance=0.3
        )
        task = make_synthetic_task(spec, train_size=300, test_size=20, seed=0)
        counts = task.train.class_counts(10)
        assert counts[0] > counts[-1]
        assert counts.sum() == 300

    def test_normalization_zero_mean_unit_std(self):
        spec = SyntheticImageSpec(name="t", channels=3, image_size=16)
        task = make_synthetic_task(spec, train_size=150, test_size=20, seed=1)
        assert abs(task.train.images.mean()) < 0.05
        assert task.train.images.std() == pytest.approx(1.0, abs=0.05)

    def test_classes_are_separable_by_nearest_prototype(self):
        # A nearest-class-mean classifier fit on train should beat the 10%
        # chance level by a wide margin on test (the CNNs used in the FL
        # experiments reach substantially higher accuracy than this simple
        # pixel-space baseline).
        spec = SyntheticImageSpec(name="t", channels=1, image_size=16, noise_std=0.3)
        task = make_synthetic_task(spec, train_size=400, test_size=100, seed=0)
        train_x = task.train.images.reshape(len(task.train), -1)
        test_x = task.test.images.reshape(len(task.test), -1)
        means = np.stack(
            [train_x[task.train.labels == c].mean(axis=0) for c in range(10)]
        )
        distances = ((test_x[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == task.test.labels).mean()
        assert accuracy > 0.3


class TestNamedFactories:
    def test_fashion_mnist_like_shapes(self):
        task = fashion_mnist_like(train_size=60, test_size=20)
        assert task.image_shape == (1, 28, 28)
        assert task.spec.name == "fashion-mnist"

    def test_cifar10_like_shapes(self):
        task = cifar10_like(train_size=50, test_size=20)
        assert task.image_shape == (3, 32, 32)

    def test_svhn_like_is_imbalanced(self):
        task = svhn_like(train_size=400, test_size=40)
        counts = task.train.class_counts(10)
        assert counts.max() > counts.min()

    def test_registry_contains_all_three(self):
        assert set(DATASET_FACTORIES) == {"fashion-mnist", "cifar-10", "svhn"}

    def test_load_dataset_overrides(self):
        task = load_dataset("cifar-10", train_size=40, test_size=20, image_size=16)
        assert task.image_shape == (3, 16, 16)
        assert len(task.train) == 40

    def test_load_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_load_dataset_case_insensitive(self):
        task = load_dataset("Fashion-MNIST", train_size=30, test_size=10, image_size=16)
        assert task.spec.name == "fashion-mnist"
