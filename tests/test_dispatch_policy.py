"""Tests for the unified dispatch policy: cost model, cache, shims, parity."""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.defenses import Bulyan, Krum
from repro.defenses.distances import pairwise_cosine_similarities, pairwise_sq_distances
from repro.experiments import ExperimentRunner, GridRunner, smoke_scale
from repro.experiments.runner import build_simulation
from repro.fl.dispatch_policy import (
    BenchRecord,
    CostModel,
    DispatchPolicy,
    DistanceCache,
    dispatch_for,
)
from repro.fl.executor import ParallelExecutor, SerialExecutor, ThreadedExecutor
from repro.fl.types import DefenseContext, ModelUpdate

LEDGER_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _synthetic_model() -> CostModel:
    """A hand-calibrated model with a known serial/process crossover.

    At the recorded scale (items=8, work=8e4): serial 10ms, process 20ms —
    pooling loses.  Scaling work x1000 with the same item count leaves the
    per-item overhead constant while the compute halves across 2 workers,
    so process wins decisively.
    """
    return CostModel(
        [
            BenchRecord(
                site="refd",
                backend="process",
                items=8,
                work=8e4,
                serial_s=0.01,
                parallel_s=0.02,
                workers=2,
            )
        ]
    )


class TestCostModel:
    def test_golden_decision_table(self):
        model = _synthetic_model()
        table = [
            # (items, work, workers) -> expected backend
            ((8, 8e4, 2), "serial"),  # bench scale: pooling measured slower
            ((8, 8e7, 2), "process"),  # 1000x work: compute dominates overhead
            ((8, 8e7, 1), "serial"),  # one worker can never win
            ((1, 8e7, 2), "serial"),  # single item: nothing to fan out
            ((8, None, 2), "serial"),  # unknown work: stay serial
        ]
        for (items, work, workers), expected in table:
            backend, reason, _, _ = model.choose(
                "refd", items=items, work=work, workers=workers
            )
            assert backend == expected, (items, work, workers, reason)

    def test_serial_bias_margin(self):
        # Pooled estimate must beat margin * serial, not merely tie it.
        model = _synthetic_model()
        est_serial = model.estimate_serial("refd", 8e4)
        est_par = model.estimate_parallel("refd", "process", 8e4, items=8, workers=2)
        assert est_serial == pytest.approx(0.01)
        assert est_par == pytest.approx(0.02)
        # Find roughly where the raw estimates tie and check the margin keeps
        # the decision serial there.
        work = 8e4
        while True:
            est_serial = model.estimate_serial("refd", work)
            est_par = model.estimate_parallel("refd", "process", work, 8, 2)
            if est_par < est_serial:
                break
            work *= 1.5
        if est_par >= model.margin * est_serial:
            backend, _, _, _ = model.choose("refd", items=8, work=work, workers=2)
            assert backend == "serial"

    def test_grid_site_rule(self):
        model = CostModel()
        assert model.choose("grid", items=6, work=6.0, workers=4)[0] == "process"
        assert model.choose("grid", items=1, work=1.0, workers=4)[0] == "serial"
        assert model.choose("grid", items=6, work=6.0, workers=1)[0] == "serial"

    def test_from_ledger_dispatch_sites_shape(self):
        payload = {
            "results": {
                "dispatch_sites": [
                    {
                        "site": "refd",
                        "backend": "process",
                        "items": 8,
                        "work": 8e4,
                        "serial_s": 0.01,
                        "parallel_s": 0.02,
                        "workers": 2,
                    }
                ]
            }
        }
        model = CostModel.from_ledger(payload)
        assert model.choose("refd", items=8, work=8e4, workers=2)[0] == "serial"
        assert model.choose("refd", items=8, work=8e7, workers=2)[0] == "process"

    def test_from_ledger_legacy_shape(self, tmp_path):
        payload = {
            "results": {
                "refd_fanout": {"serial_s": 0.012, "process_s": 0.0195, "workers": 2},
                "round_dispatch": {"inline_s": 0.11, "shm_s": 0.13},
                "e2e_round": {"current_s": 0.104},
            }
        }
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps(payload))
        model = CostModel.from_ledger(path)
        # The measured refd fan-out lost at bench scale -> serial there.
        assert model.choose("refd", items=8, work=8 * 3818.0, workers=2)[0] == "serial"
        # shm cost 20ms slower than inline -> crossover well above tiny payloads.
        assert model.shm_min_bytes > 1 << 20

    def test_committed_ledger_pins_distance_serial_at_bench_scale(self):
        # Regression guard for the ledger-documented 0.12x distance-block
        # fan-out: at bench scale (4 blocks of a 10x100k matrix) the model
        # built from the committed ledger must keep the row blocks inline.
        model = CostModel.from_ledger(LEDGER_PATH)
        backend, reason, _, _ = model.choose(
            "distance", items=4, work=10 * 10 * 100_000.0, workers=2
        )
        assert backend == "serial", reason

    def test_adaptive_pairwise_stays_serial_at_bench_scale(self):
        policy = DispatchPolicy.adaptive(
            workers=2, cost_model=CostModel.from_ledger(LEDGER_PATH)
        )
        matrix = np.random.default_rng(0).normal(size=(10, 4096)).astype(np.float32)
        pairwise_sq_distances(matrix, dispatch=policy)
        distance_decisions = [d for d in policy.trace if d.site == "distance"]
        assert distance_decisions, "distance site never consulted"
        assert all(d.backend == "serial" for d in distance_decisions)

    def test_bad_site_rejected(self):
        with pytest.raises(ValueError):
            CostModel([BenchRecord("bogus", "process", 8, 8e4, 0.01, 0.02)])


class TestParseAndCoerce:
    def test_parse_specs(self):
        assert DispatchPolicy.parse("serial").backend == "serial"
        policy = DispatchPolicy.parse("process:4")
        assert policy.backend == "process" and policy.workers == 4
        policy = DispatchPolicy.parse("adaptive:2,distance=serial")
        assert policy.is_adaptive and policy.workers == 2
        assert policy.overrides == {"distance": "serial"}
        assert DispatchPolicy.parse(None).backend == "serial"
        assert DispatchPolicy.parse("").backend == "serial"
        existing = DispatchPolicy.serial()
        assert DispatchPolicy.parse(existing) is existing

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            DispatchPolicy.parse("bogus")
        with pytest.raises(ValueError):
            DispatchPolicy.parse("adaptive,distance")
        with pytest.raises(ValueError):
            DispatchPolicy.parse("adaptive,bogus=serial")
        with pytest.raises(ValueError):
            DispatchPolicy.parse("adaptive,distance=bogus")

    def test_coerce(self):
        assert DispatchPolicy.coerce(None).backend == "serial"
        executor = SerialExecutor()
        assert DispatchPolicy.coerce(executor)._pinned is executor
        assert DispatchPolicy.coerce("thread:2").backend == "thread"

    def test_from_legacy_matches_build_executor_semantics(self):
        # build_executor(None, workers) ignored workers -> serial.
        assert DispatchPolicy.from_legacy(None, 4).backend == "serial"
        policy = DispatchPolicy.from_legacy("thread", 2)
        assert policy.backend == "thread" and policy.workers == 2


class TestPinningAndOverrides:
    def test_for_executor_is_cached_per_instance(self):
        executor = ThreadedExecutor(workers=2)
        try:
            p1 = DispatchPolicy.for_executor(executor)
            p2 = dispatch_for(SimpleNamespace(dispatch=None, executor=executor))
            assert p1 is p2
            decision = p1.decide("refd", items=4, work=1e3)
            assert decision.backend == "thread"
            assert p1.executor_for(decision) is executor
        finally:
            executor.close()

    def test_dispatch_for_prefers_context_dispatch(self):
        policy = DispatchPolicy.serial()
        context = SimpleNamespace(dispatch=policy, executor=ThreadedExecutor(workers=2))
        try:
            assert dispatch_for(context) is policy
            assert dispatch_for(SimpleNamespace(dispatch=None, executor=None)) is None
        finally:
            context.executor.close()

    def test_overrides_pin_sites(self):
        policy = DispatchPolicy.adaptive(workers=2, overrides={"distance": "serial"})
        decision = policy.decide("distance", items=8, work=1e12)
        assert decision.backend == "serial"
        assert "override" in decision.reason
        with pytest.raises(ValueError):
            DispatchPolicy.adaptive(overrides={"distance": "bogus"})
        with pytest.raises(ValueError):
            DispatchPolicy.adaptive(overrides={"bogus": "serial"})

    def test_trace_deduplicates_with_counts(self):
        policy = DispatchPolicy.serial()
        policy.decide("round", items=4, work=10.0)
        policy.decide("round", items=4, work=10.0)
        policy.decide("refd", items=4, work=10.0)
        assert len(policy.trace) == 2
        round_entry = next(d for d in policy.trace if d.site == "round")
        assert round_entry.count == 2
        snapshot = policy.counter_snapshot()
        assert snapshot["decisions"] == 3
        assert snapshot["serial"] == 3
        assert "distance_cache_hits" in snapshot
        dicts = policy.trace_dicts()
        assert all({"site", "backend", "reason", "count"} <= set(d) for d in dicts)


class TestDeprecationShims:
    def test_experiment_runner_workers_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="policy="):
            ExperimentRunner(workers=2)

    def test_grid_runner_workers_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="policy="):
            GridRunner(workers=2)
        with pytest.raises(ValueError):
            GridRunner(workers=0)
        with pytest.raises(ValueError):
            GridRunner(workers=2, policy="serial")

    def test_build_simulation_executor_kwarg_warns(self):
        config = smoke_scale("fashion-mnist", defense="fedavg")
        with pytest.warns(DeprecationWarning, match="policy="):
            simulation = build_simulation(config, executor="thread", workers=2)
        try:
            assert isinstance(simulation.executor, ThreadedExecutor)
        finally:
            simulation.close()

    def test_policy_and_legacy_kwargs_conflict(self):
        config = smoke_scale("fashion-mnist", defense="fedavg")
        with pytest.raises(ValueError):
            build_simulation(config, executor="thread", policy="serial")

    def test_policy_kwarg_warns_nothing(self):
        config = smoke_scale("fashion-mnist", defense="fedavg")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulation = build_simulation(config, policy="serial")
        try:
            assert isinstance(simulation.executor, SerialExecutor)
        finally:
            simulation.close()

    def test_config_dispatch_field_sets_policy_but_not_identity(self):
        config = smoke_scale("fashion-mnist", defense="fedavg")
        tuned = config.with_overrides(dispatch="thread:2")
        assert tuned.to_dict() == config.to_dict()
        simulation = build_simulation(tuned)
        try:
            assert isinstance(simulation.executor, ThreadedExecutor)
        finally:
            simulation.close()


class TestMidRunBackendSwitchParity:
    def test_bitwise_parity_across_backend_switches(self):
        config = smoke_scale(
            "fashion-mnist", attack="lie", defense="mkrum", num_rounds=3
        )

        with build_simulation(config, policy="serial") as simulation:
            for _ in range(3):
                simulation.run_round()
            reference = simulation.server.global_params.copy()

        policy = DispatchPolicy.fixed("serial")
        with build_simulation(config, policy=policy) as simulation:
            simulation.run_round()  # round 1: serial
            policy.overrides.update(
                {"round": "thread", "distance": "thread", "refd": "thread"}
            )
            policy.workers = 2
            simulation.run_round()  # round 2: threads
            policy.overrides.update(
                {"round": "process", "distance": "process", "refd": "process"}
            )
            simulation.run_round()  # round 3: processes
            switched = simulation.server.global_params.copy()
            backends = {d.backend for d in policy.trace}

        assert np.array_equal(reference, switched)
        assert {"serial", "thread", "process"} <= backends


class TestDistanceCache:
    def test_row_digests_are_content_exact(self):
        matrix = np.arange(12, dtype=np.float64).reshape(3, 4)
        digests = DistanceCache.row_digests(matrix)
        assert digests == DistanceCache.row_digests(matrix.copy())
        bumped = matrix.copy()
        bumped[1, 2] = np.nextafter(bumped[1, 2], np.inf)  # a single ulp
        assert digests[1] != DistanceCache.row_digests(bumped)[1]

    def test_repeat_call_hits_every_pair(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(6, 64)).astype(np.float32)
        policy = DispatchPolicy.serial()
        first = pairwise_sq_distances(matrix, dispatch=policy)
        hits_before = policy.distance_cache.hits
        second = pairwise_sq_distances(matrix, dispatch=policy)
        assert np.array_equal(first, second)
        assert policy.distance_cache.hits - hits_before == 6 * 7 // 2
        assert np.array_equal(first, pairwise_sq_distances(matrix))

    def test_mutation_invalidates_exactly_affected_pairs(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(6, 64)).astype(np.float32)
        policy = DispatchPolicy.serial()
        pairwise_sq_distances(matrix, dispatch=policy)

        mutated = matrix.copy()
        mutated[3] += 1.0
        hits_before = policy.distance_cache.hits
        misses_before = policy.distance_cache.misses
        cached = pairwise_sq_distances(mutated, dispatch=policy)
        # Row 3 participates in 6 of the 21 unordered pairs (incl. (3,3));
        # the other 15 pairs must come straight from the cache.
        assert policy.distance_cache.misses - misses_before == 6
        assert policy.distance_cache.hits - hits_before == 15
        assert np.array_equal(cached, pairwise_sq_distances(mutated))

    def test_krum_bulyan_selections_bitwise_stable_across_cache_hits(self):
        rng = np.random.default_rng(3)
        updates = [
            ModelUpdate(client_id=i, parameters=rng.normal(size=256).astype(np.float32), num_samples=10)
            for i in range(8)
        ]
        policy = DispatchPolicy.serial()

        def context():
            return DefenseContext(
                round_number=0,
                global_params=np.zeros(256, dtype=np.float32),
                expected_num_malicious=2,
                rng=np.random.default_rng(0),
                dispatch=policy,
            )

        for defense in (Krum(), Bulyan()):
            cold = defense.aggregate(list(updates), context())
            hits_before = policy.distance_cache.hits
            warm = defense.aggregate(list(updates), context())
            assert policy.distance_cache.hits > hits_before
            assert cold.accepted_client_ids == warm.accepted_client_ids
            assert np.array_equal(cold.new_params, warm.new_params)

    def test_cosine_epsilon_namespaces_do_not_cross_hit(self):
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(5, 64)).astype(np.float64)
        policy = DispatchPolicy.serial()
        base = pairwise_cosine_similarities(matrix, epsilon=0.0, dispatch=policy)
        misses_before = policy.distance_cache.misses
        other = pairwise_cosine_similarities(matrix, epsilon=1e-3, dispatch=policy)
        # A different epsilon renormalizes the rows: different namespace,
        # zero reuse, and the values genuinely differ.
        assert policy.distance_cache.misses - misses_before == 5 * 6 // 2
        assert not np.array_equal(base, other)
        repeat = pairwise_cosine_similarities(matrix, epsilon=1e-3, dispatch=policy)
        assert np.array_equal(other, repeat)

    def test_fifo_bound_evicts(self):
        cache = DistanceCache(max_pairs=2)
        ns = ("sq", 4, "<f8")
        cache.put(ns, b"a", b"b", 1.0)
        cache.put(ns, b"a", b"c", 2.0)
        cache.put(ns, b"a", b"d", 3.0)
        assert len(cache) == 2
        assert cache.evictions == 1


class TestGridPolicy:
    def test_grid_stats_carry_dispatch_trace(self, tmp_path):
        grid = [
            (
                "cell/0",
                smoke_scale("fashion-mnist", attack=None, defense="fedavg"),
            )
        ]
        runner = GridRunner(policy="serial", cache_dir=tmp_path)
        runner.run(grid)
        decisions = runner.last_stats.dispatch_decisions
        assert decisions and any(d["site"] == "grid" for d in decisions)

    def test_run_many_policy_serial_matches_run(self):
        configs = [smoke_scale("fashion-mnist", attack=None, defense="fedavg")]
        runner = ExperimentRunner()
        results = runner.run_many(configs, policy="serial")
        assert len(results) == 1
        assert results[0].max_accuracy == runner.run(configs[0]).max_accuracy
