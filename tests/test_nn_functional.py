"""Tests for convolution, pooling and loss primitives (values and gradients)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from helpers import numerical_gradient


class TestShapeArithmetic:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(28, 3, 1, 1, 28), (28, 3, 2, 1, 14), (32, 5, 1, 0, 28), (16, 3, 2, 1, 8)],
    )
    def test_conv_output_size(self, size, kernel, stride, padding, expected):
        assert F.conv_output_size(size, kernel, stride, padding) == expected

    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(14, 4, 2, 1, 28), (7, 4, 2, 1, 14), (8, 4, 2, 1, 16), (4, 3, 1, 0, 6)],
    )
    def test_conv_transpose_output_size(self, size, kernel, stride, padding, expected):
        assert F.conv_transpose_output_size(size, kernel, stride, padding) == expected

    def test_conv_and_transpose_are_shape_inverses(self):
        for size in (7, 8, 14, 16):
            up = F.conv_transpose_output_size(size, 4, 2, 1)
            down = F.conv_output_size(up, 4, 2, 1)
            assert down == size


def _naive_im2col(x, kernel, stride, padding):
    """Nested-loop reference for the stride-trick ``_im2col``."""
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.zeros((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for b in range(n):
        for ch in range(c):
            for i in range(kh):
                for j in range(kw):
                    for oy in range(out_h):
                        for ox in range(out_w):
                            cols[b, ch, i, j, oy, ox] = padded[
                                b, ch, oy * stride + i, ox * stride + j
                            ]
    return cols.reshape(n, c * kh * kw, out_h * out_w), out_h, out_w


def _naive_col2im(cols, input_shape, kernel, stride, padding):
    """Nested-loop scatter-add reference for ``_col2im``."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for b in range(n):
        for ch in range(c):
            for i in range(kh):
                for j in range(kw):
                    for oy in range(out_h):
                        for ox in range(out_w):
                            padded[b, ch, oy * stride + i, ox * stride + j] += cols[
                                b, ch, i, j, oy, ox
                            ]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


GEOMETRIES = [
    # (kernel, stride, padding) combinations covering every conv in the repo's
    # models plus non-square kernels and kernel-sized strides.
    ((3, 3), 1, 0),
    ((3, 3), 1, 1),
    ((3, 3), 2, 1),
    ((4, 4), 2, 1),
    ((5, 5), 1, 2),
    ((2, 3), 1, 0),
    ((2, 2), 2, 0),
    ((1, 1), 1, 0),
    ((3, 3), 3, 1),
]


class TestIm2colGoldenValues:
    """The stride-trick im2col/col2im must match the naive nested-loop kernels."""

    @pytest.mark.parametrize("kernel,stride,padding", GEOMETRIES)
    def test_im2col_matches_naive(self, kernel, stride, padding, rng):
        x = rng.standard_normal((2, 3, 9, 8))
        cols, out_h, out_w = F._im2col(x, kernel, stride, padding)
        naive_cols, naive_h, naive_w = _naive_im2col(x, kernel, stride, padding)
        assert (out_h, out_w) == (naive_h, naive_w)
        np.testing.assert_array_equal(cols, naive_cols)

    @pytest.mark.parametrize("kernel,stride,padding", GEOMETRIES)
    def test_col2im_matches_naive(self, kernel, stride, padding, rng):
        input_shape = (2, 3, 9, 8)
        _, out_h, out_w = F._im2col(np.zeros(input_shape), kernel, stride, padding)
        kh, kw = kernel
        cols = rng.standard_normal((2, 3 * kh * kw, out_h * out_w))
        np.testing.assert_allclose(
            F._col2im(cols, input_shape, kernel, stride, padding),
            _naive_col2im(cols, input_shape, kernel, stride, padding),
            atol=1e-12,
        )

    @pytest.mark.parametrize("kernel,stride,padding", GEOMETRIES)
    def test_col2im_is_adjoint_of_im2col(self, kernel, stride, padding, rng):
        # <col2im(g), x> == <g, im2col(x)> — the defining property of the
        # convolution backward pass.
        input_shape = (2, 2, 9, 8)
        x = rng.standard_normal(input_shape)
        cols, out_h, out_w = F._im2col(x, kernel, stride, padding)
        g = rng.standard_normal(cols.shape)
        lhs = float((F._col2im(g, input_shape, kernel, stride, padding) * x).sum())
        rhs = float((g * cols).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_im2col_preserves_dtype(self, rng):
        x = rng.standard_normal((1, 1, 6, 6)).astype(np.float32)
        cols, _, _ = F._im2col(x, (3, 3), 1, 1)
        assert cols.dtype == np.float32

    def test_window_view_is_zero_copy_without_padding(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        windows, out_h, out_w = F._window_view(x, (3, 3), 1, 0)
        assert (out_h, out_w) == (4, 4)
        assert windows.base is not None  # a view, not a copy
        x[0, 0, 0, 0] = 123.0
        assert windows[0, 0, 0, 0, 0, 0] == 123.0


class TestConvGradientSkipping:
    """Backward closures must not spend work on gradients nobody needs."""

    def test_conv2d_frozen_weight_gets_no_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=False)
        F.conv2d(x, w, padding=1).sum().backward()
        assert x.grad is not None
        assert w.grad is None

    def test_conv2d_input_layer_matches_full_backward(self, rng):
        # grad_w must be identical whether or not grad_x is also computed.
        x_data = rng.standard_normal((2, 2, 6, 6))
        w_data = rng.standard_normal((3, 2, 3, 3))
        w_only = Tensor(w_data.copy(), requires_grad=True)
        F.conv2d(Tensor(x_data), w_only, stride=2, padding=1).sum().backward()
        x_full = Tensor(x_data.copy(), requires_grad=True)
        w_full = Tensor(w_data.copy(), requires_grad=True)
        F.conv2d(x_full, w_full, stride=2, padding=1).sum().backward()
        np.testing.assert_array_equal(w_only.grad, w_full.grad)

    def test_conv2d_1x1_kernel_gradients(self, rng):
        # 1×1 kernels make the im2col reshape view-compatible: the column
        # buffer is a read-only stride-trick view of the input, so the
        # backward must not try to reuse it as scratch storage.
        x = Tensor(rng.standard_normal((2, 3, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 1, 1)), requires_grad=True)
        snapshot = x.data.copy()
        out = F.conv2d(x, w)
        (out * out).sum().backward()
        np.testing.assert_array_equal(x.data, snapshot)  # input not clobbered

        def value():
            return float((F.conv2d(Tensor(x.data), Tensor(w.data)).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-5)
        np.testing.assert_allclose(numerical_gradient(value, w.data), w.grad, atol=1e-5)

    def test_conv_transpose2d_frozen_weight_gets_no_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 4, 4)), requires_grad=False)
        F.conv_transpose2d(x, w, stride=2, padding=1).sum().backward()
        assert x.grad is not None
        assert w.grad is None

    def test_conv2d_repeated_backward_keeps_grads_correct(self, rng):
        # The column-buffer reuse must never clobber data a later backward
        # pass still needs: two backward() calls accumulate exactly 2x the
        # single-pass gradients.
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        out = F.conv2d(x, w, padding=1)
        out.sum().backward()
        first_x, first_w = x.grad.copy(), w.grad.copy()
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 2 * first_x, rtol=1e-7)
        np.testing.assert_allclose(w.grad, 2 * first_w, rtol=1e-7)


class TestLinear:
    def test_linear_matches_manual(self, rng):
        x = Tensor(rng.standard_normal((5, 3)))
        w = Tensor(rng.standard_normal((4, 3)))
        b = Tensor(rng.standard_normal(4))
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data, atol=1e-6)

    def test_linear_without_bias(self, rng):
        x = Tensor(rng.standard_normal((5, 3)))
        w = Tensor(rng.standard_normal((4, 3)))
        np.testing.assert_allclose(F.linear(x, w).data, x.data @ w.data.T, atol=1e-6)


class TestConv2d:
    def test_identity_kernel_preserves_input(self):
        x = Tensor(np.random.default_rng(0).standard_normal((1, 1, 5, 5)))
        kernel = np.zeros((1, 1, 3, 3), dtype=np.float64)
        kernel[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, Tensor(kernel), padding=1)
        np.testing.assert_allclose(out.data, x.data, atol=1e-6)

    def test_matches_naive_convolution(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0).data
        naive = np.zeros((2, 3, 3, 3))
        for n in range(2):
            for o in range(3):
                for i in range(3):
                    for j in range(3):
                        naive[n, o, i, j] = (x[n, :, i : i + 3, j : j + 3] * w[o]).sum()
        np.testing.assert_allclose(out, naive, atol=1e-6)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 5, 5)))
        w = Tensor(rng.standard_normal((3, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_empty_output_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 2, 2)))
        w = Tensor(rng.standard_normal((1, 1, 5, 5)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_gradients(self, stride, padding, rng):
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        (out * out).sum().backward()

        def value():
            o = F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data), stride=stride, padding=padding)
            return float((o.data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-5)
        np.testing.assert_allclose(numerical_gradient(value, w.data), w.grad, atol=1e-5)
        np.testing.assert_allclose(numerical_gradient(value, b.data), b.grad, atol=1e-5)

    def test_gradient_without_bias(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 1, 3, 3)), requires_grad=True)
        F.conv2d(x, w, padding=1).sum().backward()
        assert x.grad is not None and w.grad is not None


class TestConvTranspose2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 7, 7)))
        w = Tensor(rng.standard_normal((3, 4, 4, 4)))
        out = F.conv_transpose2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 4, 14, 14)

    def test_is_adjoint_of_conv(self, rng):
        # <conv(x), y> == <x, conv_transpose(y)> for matching geometry.
        x = rng.standard_normal((1, 2, 8, 8))
        y = rng.standard_normal((1, 3, 4, 4))
        w = rng.standard_normal((3, 2, 4, 4))  # conv weight (out, in, k, k)
        conv_x = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
        # conv_transpose expects weight shaped (in, out, k, k) w.r.t. its own input y.
        convt_y = F.conv_transpose2d(Tensor(y), Tensor(w), stride=2, padding=1).data
        lhs = float((conv_x * y).sum())
        rhs = float((x * convt_y).sum())
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        w = Tensor(rng.standard_normal((3, 2, 4, 4)))
        with pytest.raises(ValueError):
            F.conv_transpose2d(x, w)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_gradients(self, stride, padding, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 4, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal(2), requires_grad=True)
        out = F.conv_transpose2d(x, w, b, stride=stride, padding=padding)
        (out * out).sum().backward()

        def value():
            o = F.conv_transpose2d(
                Tensor(x.data), Tensor(w.data), Tensor(b.data), stride=stride, padding=padding
            )
            return float((o.data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-5)
        np.testing.assert_allclose(numerical_gradient(value, w.data), w.grad, atol=1e-5)
        np.testing.assert_allclose(numerical_gradient(value, b.data), b.grad, atol=1e-5)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 6, 6)), requires_grad=True)
        (F.max_pool2d(x, 2) ** 2).sum().backward()

        def value():
            return float((F.max_pool2d(Tensor(x.data), 2).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-5)

    def test_avg_pool_gradient(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)), requires_grad=True)
        (F.avg_pool2d(x, 2) ** 2).sum().backward()

        def value():
            return float((F.avg_pool2d(Tensor(x.data), 2).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-5)

    def test_pad2d_shape_and_gradient(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 3, 3)), requires_grad=True)
        y = F.pad2d(x, 2)
        assert y.shape == (1, 1, 7, 7)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 3, 3)))


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = F.softmax(Tensor(rng.standard_normal((6, 10)))).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-6)
        assert np.all(probs >= 0)

    def test_softmax_is_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0, 1000.0]]))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs, np.full((1, 3), 1 / 3), atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-6
        )

    def test_softmax_gradient(self, rng):
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        (F.softmax(x) ** 2).sum().backward()

        def value():
            return float((F.softmax(Tensor(x.data)).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-6)

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, np.eye(3)[[0, 2, 1]])

    def test_cross_entropy_matches_manual(self, rng):
        logits_data = rng.standard_normal((5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        loss = F.cross_entropy(Tensor(logits_data), targets).item()
        shifted = logits_data - logits_data.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_cross_entropy_gradient(self, rng):
        logits = Tensor(rng.standard_normal((6, 5)), requires_grad=True)
        targets = rng.integers(0, 5, size=6)
        F.cross_entropy(logits, targets).backward()

        def value():
            return float(F.cross_entropy(Tensor(logits.data), targets).item())

        np.testing.assert_allclose(numerical_gradient(value, logits.data), logits.grad, atol=1e-7)

    def test_cross_entropy_validates_inputs(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1]))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1, 7]))

    def test_nll_loss_equals_cross_entropy(self, rng):
        logits_data = rng.standard_normal((6, 4))
        targets = rng.integers(0, 4, size=6)
        ce = F.cross_entropy(Tensor(logits_data), targets).item()
        nll = F.nll_loss(F.log_softmax(Tensor(logits_data)), targets).item()
        assert ce == pytest.approx(nll, rel=1e-5)

    def test_soft_cross_entropy_uniform_target_gradient(self, rng):
        logits = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        uniform = np.full(6, 1.0 / 6.0)
        F.soft_cross_entropy(logits, uniform).backward()

        def value():
            return float(F.soft_cross_entropy(Tensor(logits.data), uniform).item())

        np.testing.assert_allclose(numerical_gradient(value, logits.data), logits.grad, atol=1e-7)

    def test_soft_cross_entropy_minimized_by_uniform_logits(self):
        uniform = np.full(4, 0.25)
        flat = F.soft_cross_entropy(Tensor(np.zeros((2, 4))), uniform).item()
        peaked = F.soft_cross_entropy(Tensor(np.array([[10.0, 0, 0, 0], [10.0, 0, 0, 0]])), uniform).item()
        assert flat < peaked

    def test_cross_entropy_equals_soft_cross_entropy_with_one_hot(self, rng):
        logits_data = rng.standard_normal((5, 3))
        targets = np.array([0, 2, 1, 1, 0])
        hard = F.cross_entropy(Tensor(logits_data), targets).item()
        soft = F.soft_cross_entropy(Tensor(logits_data), F.one_hot(targets, 3)).item()
        assert hard == pytest.approx(soft, rel=1e-6)

    def test_mse_loss_value_and_gradient(self, rng):
        pred = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        target = rng.standard_normal((4, 3))
        loss = F.mse_loss(pred, target)
        assert loss.item() == pytest.approx(((pred.data - target) ** 2).mean(), rel=1e-6)
        loss.backward()
        np.testing.assert_allclose(pred.grad, 2 * (pred.data - target) / pred.data.size, atol=1e-7)
