"""Tests for the SGD and Adam optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.modules import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def _single_param(value: np.ndarray) -> Parameter:
    return Parameter(np.asarray(value, dtype=np.float64))


class TestOptimizerValidation:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([_single_param(np.ones(2))], lr=0.0)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([_single_param(np.ones(2))], lr=0.1, momentum=1.5)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD([_single_param(np.ones(2))], lr=0.1, weight_decay=-1.0)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([_single_param(np.ones(2))], lr=0.1, betas=(1.0, 0.9))

    def test_zero_grad_clears(self):
        param = _single_param(np.ones(2))
        param.grad = np.ones(2)
        opt = SGD([param], lr=0.1)
        opt.zero_grad()
        assert param.grad is None

    def test_step_skips_parameters_without_grad(self):
        param = _single_param(np.ones(2))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, np.ones(2))


class TestSgdMath:
    def test_vanilla_update_rule(self):
        param = _single_param(np.array([1.0, 2.0]))
        param.grad = np.array([0.5, -0.5])
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [0.95, 2.05])

    def test_weight_decay_added_to_gradient(self):
        param = _single_param(np.array([1.0]))
        param.grad = np.array([0.0])
        SGD([param], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(param.data, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates(self):
        param = _single_param(np.array([0.0]))
        opt = SGD([param], lr=1.0, momentum=0.9)
        param.grad = np.array([1.0])
        opt.step()  # velocity = 1, param = -1
        param.grad = np.array([1.0])
        opt.step()  # velocity = 1.9, param = -2.9
        np.testing.assert_allclose(param.data, [-2.9])

    def test_sgd_minimizes_quadratic(self):
        param = _single_param(np.array([5.0]))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = ((Tensor(np.zeros(1)) - param) ** 2).sum() if False else (param * param).sum()
            loss.backward()
            opt.step()
        assert abs(param.data[0]) < 1e-4


def _reference_sgd_step(params, grads, state, lr, momentum, weight_decay):
    """Textbook out-of-place SGD step (the pre-in-place formulation)."""
    new_params = []
    for index, (param, grad) in enumerate(zip(params, grads)):
        if weight_decay:
            grad = grad + weight_decay * param
        if momentum:
            velocity = state.setdefault(index, np.zeros_like(param))
            velocity = momentum * velocity + grad
            state[index] = velocity
            grad = velocity
        new_params.append(param - lr * grad)
    return new_params


def _reference_adam_step(params, grads, state, lr, beta1, beta2, eps, weight_decay):
    """Textbook out-of-place Adam step (the pre-in-place formulation)."""
    state["t"] = state.get("t", 0) + 1
    bc1 = 1.0 - beta1 ** state["t"]
    bc2 = 1.0 - beta2 ** state["t"]
    new_params = []
    for index, (param, grad) in enumerate(zip(params, grads)):
        if weight_decay:
            grad = grad + weight_decay * param
        m = state.setdefault(("m", index), np.zeros_like(param))
        v = state.setdefault(("v", index), np.zeros_like(param))
        m = beta1 * m + (1.0 - beta1) * grad
        v = beta2 * v + (1.0 - beta2) * grad * grad
        state[("m", index)] = m
        state[("v", index)] = v
        new_params.append(param - lr * (m / bc1) / (np.sqrt(v / bc2) + eps))
    return new_params


class TestInPlaceTrajectories:
    """The in-place optimizers must track the out-of-place reference exactly."""

    def _grad_stream(self, shapes, steps, seed=0):
        rng = np.random.default_rng(seed)
        return [[rng.standard_normal(shape) for shape in shapes] for _ in range(steps)]

    @pytest.mark.parametrize("momentum,weight_decay", [(0.0, 0.0), (0.9, 0.0), (0.9, 0.01)])
    def test_sgd_trajectory_unchanged(self, momentum, weight_decay):
        shapes = [(4, 3), (3,)]
        rng = np.random.default_rng(7)
        initial = [rng.standard_normal(shape) for shape in shapes]
        params = [Parameter(value.copy()) for value in initial]
        opt = SGD(params, lr=0.05, momentum=momentum, weight_decay=weight_decay)
        reference = [value.copy() for value in initial]
        state = {}
        for grads in self._grad_stream(shapes, steps=12):
            for param, grad in zip(params, grads):
                param.grad = grad.copy()
            opt.step()
            reference = _reference_sgd_step(
                reference, grads, state, 0.05, momentum, weight_decay
            )
        for param, expected in zip(params, reference):
            np.testing.assert_array_equal(param.data, expected)

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_adam_trajectory_unchanged(self, weight_decay):
        shapes = [(5, 2), (2,)]
        rng = np.random.default_rng(11)
        initial = [rng.standard_normal(shape) for shape in shapes]
        params = [Parameter(value.copy()) for value in initial]
        opt = Adam(params, lr=0.01, weight_decay=weight_decay)
        reference = [value.copy() for value in initial]
        state = {}
        for grads in self._grad_stream(shapes, steps=12, seed=3):
            for param, grad in zip(params, grads):
                param.grad = grad.copy()
            opt.step()
            reference = _reference_adam_step(
                reference, grads, state, 0.01, 0.9, 0.999, 1e-8, weight_decay
            )
        for param, expected in zip(params, reference):
            np.testing.assert_array_equal(param.data, expected)

    def test_sgd_step_does_not_mutate_the_gradient(self):
        param = _single_param(np.array([1.0, 2.0]))
        grad = np.array([0.5, -0.5])
        param.grad = grad
        SGD([param], lr=0.1, momentum=0.9).step()
        np.testing.assert_array_equal(grad, [0.5, -0.5])

    def test_adam_step_does_not_mutate_the_gradient(self):
        param = _single_param(np.array([1.0, 2.0]))
        grad = np.array([0.5, -0.5])
        param.grad = grad
        Adam([param], lr=0.1).step()
        np.testing.assert_array_equal(grad, [0.5, -0.5])


class TestAdam:
    def test_first_step_moves_by_about_lr(self):
        param = _single_param(np.array([1.0]))
        param.grad = np.array([10.0])
        Adam([param], lr=0.01).step()
        # Bias-corrected Adam moves by ~lr regardless of gradient scale.
        assert param.data[0] == pytest.approx(1.0 - 0.01, abs=1e-4)

    def test_adam_minimizes_quadratic_faster_than_plain_value(self):
        param = _single_param(np.array([3.0, -4.0]))
        opt = Adam([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (param * param).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, [0.0, 0.0], atol=1e-2)

    def test_adam_with_weight_decay_shrinks_parameters(self):
        param = _single_param(np.array([5.0]))
        opt = Adam([param], lr=0.05, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            param.grad = np.array([0.0])
            opt.step()
        assert abs(param.data[0]) < 5.0

    def test_adam_trains_classifier_better_than_initial(self, rng):
        model = nn.Sequential(
            nn.Linear(4, 16, rng=np.random.default_rng(2)),
            nn.ReLU(),
            nn.Linear(16, 3, rng=np.random.default_rng(3)),
        )
        inputs = rng.standard_normal((90, 4)).astype(np.float32)
        labels = rng.integers(0, 3, size=90)
        # Make labels learnable: correlate with the argmax of the first 3 features.
        labels = inputs[:, :3].argmax(axis=1)
        initial = F.cross_entropy(model(Tensor(inputs)), labels).item()
        opt = Adam(model.parameters(), lr=0.02)
        for _ in range(80):
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(inputs)), labels)
            loss.backward()
            opt.step()
        assert loss.item() < initial * 0.5
