"""Tests for the SGD and Adam optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.modules import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def _single_param(value: np.ndarray) -> Parameter:
    return Parameter(np.asarray(value, dtype=np.float64))


class TestOptimizerValidation:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([_single_param(np.ones(2))], lr=0.0)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([_single_param(np.ones(2))], lr=0.1, momentum=1.5)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD([_single_param(np.ones(2))], lr=0.1, weight_decay=-1.0)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([_single_param(np.ones(2))], lr=0.1, betas=(1.0, 0.9))

    def test_zero_grad_clears(self):
        param = _single_param(np.ones(2))
        param.grad = np.ones(2)
        opt = SGD([param], lr=0.1)
        opt.zero_grad()
        assert param.grad is None

    def test_step_skips_parameters_without_grad(self):
        param = _single_param(np.ones(2))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, np.ones(2))


class TestSgdMath:
    def test_vanilla_update_rule(self):
        param = _single_param(np.array([1.0, 2.0]))
        param.grad = np.array([0.5, -0.5])
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [0.95, 2.05])

    def test_weight_decay_added_to_gradient(self):
        param = _single_param(np.array([1.0]))
        param.grad = np.array([0.0])
        SGD([param], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(param.data, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates(self):
        param = _single_param(np.array([0.0]))
        opt = SGD([param], lr=1.0, momentum=0.9)
        param.grad = np.array([1.0])
        opt.step()  # velocity = 1, param = -1
        param.grad = np.array([1.0])
        opt.step()  # velocity = 1.9, param = -2.9
        np.testing.assert_allclose(param.data, [-2.9])

    def test_sgd_minimizes_quadratic(self):
        param = _single_param(np.array([5.0]))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = ((Tensor(np.zeros(1)) - param) ** 2).sum() if False else (param * param).sum()
            loss.backward()
            opt.step()
        assert abs(param.data[0]) < 1e-4


class TestAdam:
    def test_first_step_moves_by_about_lr(self):
        param = _single_param(np.array([1.0]))
        param.grad = np.array([10.0])
        Adam([param], lr=0.01).step()
        # Bias-corrected Adam moves by ~lr regardless of gradient scale.
        assert param.data[0] == pytest.approx(1.0 - 0.01, abs=1e-4)

    def test_adam_minimizes_quadratic_faster_than_plain_value(self):
        param = _single_param(np.array([3.0, -4.0]))
        opt = Adam([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (param * param).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, [0.0, 0.0], atol=1e-2)

    def test_adam_with_weight_decay_shrinks_parameters(self):
        param = _single_param(np.array([5.0]))
        opt = Adam([param], lr=0.05, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            param.grad = np.array([0.0])
            opt.step()
        assert abs(param.data[0]) < 5.0

    def test_adam_trains_classifier_better_than_initial(self, rng):
        model = nn.Sequential(
            nn.Linear(4, 16, rng=np.random.default_rng(2)),
            nn.ReLU(),
            nn.Linear(16, 3, rng=np.random.default_rng(3)),
        )
        inputs = rng.standard_normal((90, 4)).astype(np.float32)
        labels = rng.integers(0, 3, size=90)
        # Make labels learnable: correlate with the argmax of the first 3 features.
        labels = inputs[:, :3].argmax(axis=1)
        initial = F.cross_entropy(model(Tensor(inputs)), labels).item()
        opt = Adam(model.parameters(), lr=0.02)
        for _ in range(80):
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(inputs)), labels)
            loss.backward()
            opt.step()
        assert loss.item() < initial * 0.5
