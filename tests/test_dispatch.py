"""Tests for multi-host grid dispatch: claim leases, static sharding, and the
grid-level dataset store."""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import GridRunner, config_hash, expand_grid, smoke_scale
from repro.experiments.dispatch import (
    ClaimLedger,
    DatasetBroker,
    claim_path,
    dataset_key,
    default_runner_id,
    parse_shard,
    read_claim,
    resolve_task,
    shard_of,
)
from repro.fl.executor import ParallelExecutor


def _tiny_grid(**overrides):
    return expand_grid(
        attacks=("lie",),
        defenses=overrides.pop("defenses", ("mkrum", "median")),
        betas=overrides.pop("betas", (0.5, None)),
        scale=smoke_scale,
        num_rounds=overrides.pop("num_rounds", 1),
        **overrides,
    )


# ----------------------------------------------------------------------
# Claim leases
# ----------------------------------------------------------------------
class TestClaimLedger:
    def test_exclusive_acquisition(self, tmp_path):
        a = ClaimLedger(tmp_path, "runner-a", ttl=60)
        b = ClaimLedger(tmp_path, "runner-b", ttl=60)
        assert a.try_claim("cell0")
        assert not b.try_claim("cell0")
        assert b.try_claim("cell1")
        assert a.acquired == 1 and b.acquired == 1
        assert a.stolen == b.stolen == 0

    def test_reentrant_for_the_owner(self, tmp_path):
        ledger = ClaimLedger(tmp_path, "runner-a", ttl=60)
        assert ledger.try_claim("cell0")
        assert ledger.try_claim("cell0")

    def test_release_frees_the_cell(self, tmp_path):
        a = ClaimLedger(tmp_path, "runner-a", ttl=60)
        b = ClaimLedger(tmp_path, "runner-b", ttl=60)
        assert a.try_claim("cell0")
        a.release("cell0")
        assert not claim_path(tmp_path, "cell0").exists()
        assert b.try_claim("cell0")

    def test_stale_lease_is_stolen(self, tmp_path):
        a = ClaimLedger(tmp_path, "runner-a", ttl=0.05)
        b = ClaimLedger(tmp_path, "runner-b", ttl=0.05)
        assert a.try_claim("cell0")
        time.sleep(0.1)
        assert b.try_claim("cell0")
        assert b.stolen == 1 and b.expired == 1
        body = read_claim(claim_path(tmp_path, "cell0"))
        assert body["owner"] == "runner-b"

    def test_refresh_keeps_the_lease_fresh(self, tmp_path):
        a = ClaimLedger(tmp_path, "runner-a", ttl=0.3)
        b = ClaimLedger(tmp_path, "runner-b", ttl=0.3)
        assert a.try_claim("cell0")
        for _ in range(4):
            time.sleep(0.1)
            a.refresh()
        assert not b.try_claim("cell0")
        assert a.lost == 0

    def test_losing_a_stolen_lease_is_detected(self, tmp_path):
        a = ClaimLedger(tmp_path, "runner-a", ttl=0.05)
        b = ClaimLedger(tmp_path, "runner-b", ttl=0.05)
        assert a.try_claim("cell0")
        time.sleep(0.1)
        assert b.try_claim("cell0")
        a.refresh()
        assert a.lost == 1
        assert "cell0" not in a.held
        # releasing must not delete the new owner's lease
        a.release("cell0")
        assert read_claim(claim_path(tmp_path, "cell0"))["owner"] == "runner-b"

    def test_release_all(self, tmp_path):
        ledger = ClaimLedger(tmp_path, "runner-a", ttl=60)
        for cell in ("cell0", "cell1", "cell2"):
            assert ledger.try_claim(cell)
        ledger.release_all()
        assert not sorted(Path(tmp_path).glob("*.claim"))

    def test_newborn_empty_lease_reads_as_fresh(self, tmp_path):
        """Exclusive create and body write are two syscalls; a peer reading
        in between must see a *fresh* lease (mtime heartbeat), not a stale
        one it may steal."""
        path = claim_path(tmp_path, "cell0")
        path.touch()
        body = read_claim(path)
        assert body["owner"] is None
        assert time.time() - body["heartbeat"] < 5.0
        b = ClaimLedger(tmp_path, "runner-b", ttl=60)
        assert not b.try_claim("cell0")

    def test_missing_claim_reads_as_none(self, tmp_path):
        assert read_claim(claim_path(tmp_path, "nope")) is None

    def test_background_heartbeat_protects_a_long_cell(self, tmp_path):
        """A workers=1 runner cannot refresh while a cell executes in its
        own process; the daemon heartbeat must keep the lease fresh past
        the TTL regardless."""
        owner = ClaimLedger(tmp_path, "runner-a", ttl=0.2)
        peer = ClaimLedger(tmp_path, "runner-b", ttl=0.2)
        assert owner.try_claim("cell0")
        owner.start_heartbeat()
        try:
            time.sleep(0.5)  # "cell execution" well past the TTL
            assert not peer.try_claim("cell0")
            assert owner.lost == 0
        finally:
            owner.stop_heartbeat()
        owner.release_all()

    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="TTL"):
            ClaimLedger(tmp_path, "runner-a", ttl=0)

    def test_default_runner_ids_are_unique(self):
        assert default_runner_id() != default_runner_id()


# ----------------------------------------------------------------------
# Static sharding
# ----------------------------------------------------------------------
class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "0/0", "1", "a/b", "1/2/3"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shard_of_is_deterministic_and_in_range(self):
        hashes = [config_hash(config) for _, config in _tiny_grid()]
        for num_shards in (1, 2, 3):
            shards = [shard_of(h, num_shards) for h in hashes]
            assert shards == [shard_of(h, num_shards) for h in hashes]
            assert all(0 <= s < num_shards for s in shards)

    def test_shards_partition_the_grid(self, tmp_path):
        grid = _tiny_grid()
        runners = [
            GridRunner(workers=1, cache_dir=tmp_path / f"cache{i}", shard=(i, 2))
            for i in range(2)
        ]
        results = [runner.run(grid) for runner in runners]
        label_sets = [{label for label, _ in chunk} for chunk in results]
        assert not label_sets[0] & label_sets[1]
        assert label_sets[0] | label_sets[1] == {label for label, _ in grid}
        executed = [runner.last_stats.executed for runner in runners]
        skipped = [runner.last_stats.cells_skipped_shard for runner in runners]
        assert sum(executed) == len(grid)
        assert executed[0] + skipped[0] == len(grid)
        assert executed[1] + skipped[1] == len(grid)

    def test_string_shard_spec_accepted(self, tmp_path):
        grid = _tiny_grid()
        runner = GridRunner(workers=1, cache_dir=tmp_path, shard="0/2")
        runner.run(grid)
        stats = runner.last_stats
        assert stats.executed + stats.cells_skipped_shard == len(grid)


# ----------------------------------------------------------------------
# Claim-aware GridRunner
# ----------------------------------------------------------------------
class TestClaimAwareGridRunner:
    def test_claim_ttl_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            GridRunner(workers=1, claim_ttl=30)

    def test_peer_held_cells_are_skipped_without_wait(self, tmp_path):
        grid = _tiny_grid()
        peer = ClaimLedger(tmp_path, "peer", ttl=60)
        assert peer.try_claim(config_hash(grid[0][1]))
        runner = GridRunner(
            workers=1, cache_dir=tmp_path, claim_ttl=60, wait_for_peers=False
        )
        results = runner.run(grid)
        stats = runner.last_stats
        assert stats.executed == len(grid) - 1
        assert stats.cells_skipped_claimed == 1
        assert grid[0][0] not in {label for label, _ in results}
        # our leases were all released; only the peer's remains
        assert sorted(Path(tmp_path).glob("*.claim")) == [
            claim_path(tmp_path, config_hash(grid[0][1]))
        ]

    def test_stale_peer_lease_is_stolen_and_cell_runs(self, tmp_path):
        grid = _tiny_grid()
        chash = config_hash(grid[0][1])
        path = claim_path(tmp_path, chash)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"owner": "dead-peer"}))
        stale = time.time() - 100
        os.utime(path, (stale, stale))
        runner = GridRunner(workers=1, cache_dir=tmp_path, claim_ttl=5)
        results = runner.run(grid)
        stats = runner.last_stats
        assert stats.executed == len(grid)
        assert stats.claims_stolen == 1 and stats.claims_expired == 1
        assert len(results) == len(grid)
        assert not sorted(Path(tmp_path).glob("*.claim"))

    def test_awaited_baseline_is_stolen_from_a_dead_peer(self, tmp_path):
        """A baseline a peer claimed but never finishes: the runner awaits,
        the lease goes stale, and the runner takes over rather than hang."""
        grid = _tiny_grid(betas=(0.5,))  # one baseline for the whole grid
        clean = grid[0][1].clean_variant()
        peer = ClaimLedger(tmp_path, "dead-peer", ttl=0.4)
        assert peer.try_claim(config_hash(clean))
        runner = GridRunner(workers=1, cache_dir=tmp_path, claim_ttl=0.4)
        results = runner.run(grid)
        stats = runner.last_stats
        assert stats.baselines_awaited == 1
        assert stats.claims_stolen >= 1
        assert stats.baselines_executed == 1
        assert len(results) == len(grid)
        for _, result in results:
            assert result.asr is not None

    def test_no_wait_skips_cells_behind_a_peer_baseline(self, tmp_path):
        """--no-wait must not block on a peer's in-flight baseline either:
        the dependent cells are released and skipped, not awaited."""
        grid = _tiny_grid(betas=(0.5,))  # one baseline for the whole grid
        clean = grid[0][1].clean_variant()
        peer = ClaimLedger(tmp_path, "peer", ttl=60)
        assert peer.try_claim(config_hash(clean))
        runner = GridRunner(
            workers=1, cache_dir=tmp_path, claim_ttl=60, wait_for_peers=False
        )
        started = time.time()
        results = runner.run(grid)
        assert time.time() - started < 30  # returned without polling the TTL out
        stats = runner.last_stats
        assert stats.baselines_awaited == 1
        assert stats.executed == 0 and stats.failed == 0
        assert stats.cells_skipped_claimed == len(grid)
        assert results == []
        # the dependent cells' leases were given back for the peer/a re-run
        assert sorted(Path(tmp_path).glob("*.claim")) == [
            claim_path(tmp_path, config_hash(clean))
        ]
        peer.release_all()

    def test_transient_unreadable_claim_is_not_abandoned(self, tmp_path):
        """A held lease whose body reads as garbage (transient I/O or
        truncation) stays held — and release still removes it on the
        strength of our own bookkeeping."""
        ledger = ClaimLedger(tmp_path, "runner-a", ttl=60)
        assert ledger.try_claim("cell0")
        path = claim_path(tmp_path, "cell0")
        path.write_text("{garbage")  # simulate a torn read
        ledger.refresh()
        assert ledger.lost == 0 and "cell0" in ledger.held
        ledger.release("cell0")
        assert not path.exists()

    def test_wait_for_peers_returns_peer_results(self, tmp_path):
        """A cell a live peer holds is awaited; once the peer's artifact
        lands, it comes back as a cache hit and the grid is complete."""
        import threading

        grid = _tiny_grid()
        target_label, target_config = grid[0]
        peer = ClaimLedger(tmp_path, "peer", ttl=60)
        assert peer.try_claim(config_hash(target_config))

        def finish_peer_cell():
            time.sleep(0.5)
            solo = GridRunner(workers=1, cache_dir=tmp_path / "peer-scratch")
            (label, result), = solo.run([(target_label, target_config)])
            # publish the artifact into the shared dir the way a peer would
            from repro.experiments.io import atomic_write_json, result_to_dict

            atomic_write_json(
                Path(tmp_path) / f"{config_hash(target_config)}.json",
                result_to_dict(label, result),
            )
            peer.release(config_hash(target_config))

        thread = threading.Thread(target=finish_peer_cell)
        thread.start()
        try:
            runner = GridRunner(workers=1, cache_dir=tmp_path, claim_ttl=60)
            results = runner.run(grid)
        finally:
            thread.join()
        stats = runner.last_stats
        assert stats.executed == len(grid) - 1
        assert stats.cache_hits == 1
        assert {label for label, _ in results} == {label for label, _ in grid}


@pytest.mark.slow
class TestTwoRunnersShareOneCacheDir:
    _DRIVER = r"""
import json, sys, dataclasses
from repro.experiments import GridRunner, expand_grid, smoke_scale
grid = expand_grid(attacks=("lie",), defenses=("fedavg", "mkrum", "median", "krum"),
                   betas=(0.5, None), scale=smoke_scale, num_rounds=1)
runner = GridRunner(workers=1, cache_dir=sys.argv[1], claim_ttl=30, runner_id=sys.argv[2])
results = runner.run(grid)
print(json.dumps({"stats": dataclasses.asdict(runner.last_stats),
                  "labels": [label for label, _ in results],
                  "acc": {label: result.max_accuracy for label, result in results},
                  "records": {label: [r.accuracy for r in result.records]
                              for label, result in results}}))
"""

    def test_disjoint_claims_cover_the_grid_bit_identically(self, tmp_path):
        """Acceptance: two runner processes on one cache dir execute every
        cell exactly once between them, cover the whole >= 8-cell grid, and
        produce bit-identical results to a single-runner sweep."""
        cells = 8
        shared = tmp_path / "shared-cache"
        env = {**os.environ, "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self._DRIVER, str(shared), name],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for name in ("runner-a", "runner-b")
        ]
        outs = []
        for proc in procs:
            stdout, stderr = proc.communicate(timeout=600)
            assert proc.returncode == 0, stderr
            outs.append(json.loads(stdout.strip().splitlines()[-1]))
        stats_a, stats_b = outs[0]["stats"], outs[1]["stats"]

        # every cell executed exactly once, by exactly one runner
        assert stats_a["executed"] + stats_b["executed"] == cells
        assert stats_a["executed"] + stats_a["cache_hits"] == cells
        assert stats_b["executed"] + stats_b["cache_hits"] == cells
        assert stats_a["baselines_executed"] + stats_b["baselines_executed"] == 2
        # per-host dataset publication count: one per host for the one dataset
        assert stats_a["dataset_publications"] == 1
        assert stats_b["dataset_publications"] == 1
        # both runners return the complete grid
        assert outs[0]["labels"] == outs[1]["labels"]
        assert len(outs[0]["labels"]) == cells
        assert outs[0]["acc"] == outs[1]["acc"]
        assert outs[0]["records"] == outs[1]["records"]
        # the steady state is artifacts only — no leases left behind
        assert len(sorted(shared.glob("*.json"))) == cells + 2
        assert not sorted(shared.glob("*.claim"))

        # bit-identical to a single-runner sweep in a fresh cache dir
        grid = expand_grid(
            attacks=("lie",),
            defenses=("fedavg", "mkrum", "median", "krum"),
            betas=(0.5, None),
            scale=smoke_scale,
            num_rounds=1,
        )
        solo = GridRunner(workers=1, cache_dir=tmp_path / "solo-cache").run(grid)
        assert {label: result.max_accuracy for label, result in solo} == outs[0]["acc"]
        assert {
            label: [r.accuracy for r in result.records] for label, result in solo
        } == outs[0]["records"]


# ----------------------------------------------------------------------
# Grid-level dataset store
# ----------------------------------------------------------------------
class TestDatasetBroker:
    def test_one_publication_per_distinct_dataset(self, tmp_path):
        grid = _tiny_grid()  # one dataset, four cells
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        runner.run(grid)
        assert runner.last_stats.dataset_publications == 1

    def test_publication_per_dataset_config(self):
        with DatasetBroker(use_shared_memory=False) as broker:
            configs = [config for _, config in _tiny_grid()]
            configs += [config.with_overrides(dataset_seed=7) for config in configs[:1]]
            broker.publish(configs)
            assert broker.publications == 2

    def test_resolve_task_matches_load_dataset(self):
        from repro.experiments.dispatch import load_task_for
        import numpy as np

        config = _tiny_grid()[0][1]
        with DatasetBroker(use_shared_memory=True) as broker:
            broker.publish([config])
            task = resolve_task(config)
            assert task is not None
            assert resolve_task(config) is task  # memoized per process
            fresh = load_task_for(config)
            assert np.array_equal(task.train.images, fresh.train.images)
            assert np.array_equal(task.train.labels, fresh.train.labels)
            assert np.array_equal(task.test.images, fresh.test.images)
            assert task.spec == fresh.spec
            assert not task.train.images.flags.writeable
        assert resolve_task(config) is None  # closed broker unpublishes

    def test_unpublished_config_resolves_to_none(self):
        assert resolve_task(_tiny_grid()[0][1].with_overrides(dataset_seed=123)) is None

    def test_dataset_key_ignores_non_dataset_fields(self):
        config = _tiny_grid()[0][1]
        assert dataset_key(config) == dataset_key(config.with_overrides(defense="median"))
        assert dataset_key(config) != dataset_key(config.with_overrides(dataset_seed=1))

    def test_share_datasets_off_publishes_nothing(self, tmp_path):
        runner = GridRunner(workers=1, cache_dir=tmp_path, share_datasets=False)
        runner.run(_tiny_grid()[:1])
        assert runner.last_stats.dataset_publications == 0

    def test_shared_dataset_results_bit_identical(self, tmp_path):
        grid = _tiny_grid()
        with_store = GridRunner(workers=1).run(grid)
        without = GridRunner(workers=1, share_datasets=False).run(grid)
        for (label_a, result_a), (label_b, result_b) in zip(with_store, without):
            assert label_a == label_b
            assert result_a.max_accuracy == result_b.max_accuracy
            assert [r.accuracy for r in result_a.records] == [
                r.accuracy for r in result_b.records
            ]


class TestSimulationStoreCounter:
    def test_process_backend_publishes_once(self):
        from repro.experiments import build_simulation

        config = smoke_scale(attack="lie", defense="mkrum", num_rounds=1)
        executor = ParallelExecutor(workers=2)
        with build_simulation(config, executor=executor) as simulation:
            assert simulation.store_publications == 1

    def test_serial_backend_publishes_nothing(self):
        from repro.experiments import build_simulation

        config = smoke_scale(attack="lie", defense="mkrum", num_rounds=1)
        with build_simulation(config) as simulation:
            assert simulation.store_publications == 0
