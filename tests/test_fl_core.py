"""Tests for the FL core: types, training loops, clients, aggregation, selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.fl.aggregation import fedavg, stack_updates, unweighted_average
from repro.fl.client import BenignClient
from repro.fl.selection import RoundRobinSelector, UniformSelector
from repro.fl.training import evaluate_model, predict_proba, train_local_model, train_on_arrays
from repro.fl.types import (
    AggregationResult,
    LocalTrainingConfig,
    ModelUpdate,
    RoundRecord,
)
from repro.nn.serialization import get_flat_params


class TestLocalTrainingConfig:
    def test_defaults_valid(self):
        config = LocalTrainingConfig()
        assert config.local_epochs == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"local_epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            LocalTrainingConfig(**kwargs)


class TestModelUpdate:
    def test_flattens_and_preserves_float_dtype(self):
        # float32 is the pipeline's native transport dtype — no silent up-cast.
        update = ModelUpdate(client_id=1, parameters=np.ones((2, 3), dtype=np.float32), num_samples=5)
        assert update.parameters.shape == (6,)
        assert update.parameters.dtype == np.float32
        double = ModelUpdate(client_id=1, parameters=np.ones(3, dtype=np.float64), num_samples=5)
        assert double.parameters.dtype == np.float64

    def test_casts_integer_parameters_to_float(self):
        update = ModelUpdate(client_id=1, parameters=np.arange(4), num_samples=5)
        assert np.issubdtype(update.parameters.dtype, np.floating)

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            ModelUpdate(client_id=1, parameters=np.ones(3), num_samples=0)


class TestRoundRecord:
    def test_num_malicious_selected(self):
        record = RoundRecord(
            round_number=0,
            selected_client_ids=[1, 2, 3],
            selected_malicious_ids=[2, 3],
            accepted_client_ids=[1, 2],
            accuracy=0.5,
            test_loss=1.0,
        )
        assert record.num_malicious_selected == 2


class TestTraining:
    def test_train_on_arrays_reduces_loss(self, tiny_task, mlp_factory, rng):
        model = mlp_factory()
        images, labels = tiny_task.train.arrays()
        config = LocalTrainingConfig(local_epochs=5, batch_size=32, learning_rate=0.2)
        losses = train_on_arrays(model, images, labels, config, rng)
        assert len(losses) == 5
        assert losses[-1] < losses[0]

    def test_extra_loss_hook_is_applied(self, tiny_task, mlp_factory, rng):
        model = mlp_factory()
        images, labels = tiny_task.train.arrays()
        config = LocalTrainingConfig(local_epochs=1, batch_size=64, learning_rate=0.01)
        calls = []

        def extra(m):
            calls.append(1)
            from repro.nn.tensor import Tensor

            return Tensor(np.array(0.0))

        train_on_arrays(model, images, labels, config, rng, extra_loss=extra)
        assert len(calls) >= 1

    def test_train_local_model_on_subset(self, tiny_task, mlp_factory, rng, train_config):
        model = mlp_factory()
        shard = tiny_task.train.subset(range(40))
        losses = train_local_model(model, shard, train_config, rng)
        assert len(losses) == train_config.local_epochs

    def test_evaluate_model_returns_accuracy_and_loss(self, tiny_task, mlp_factory):
        accuracy, loss = evaluate_model(mlp_factory(), tiny_task.test)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0.0

    def test_training_improves_accuracy(self, tiny_task, mlp_factory, rng):
        model = mlp_factory()
        before, _ = evaluate_model(model, tiny_task.test)
        config = LocalTrainingConfig(local_epochs=20, batch_size=32, learning_rate=0.2)
        train_local_model(model, tiny_task.train, config, rng)
        after, _ = evaluate_model(model, tiny_task.test)
        assert after > before
        assert after > 0.4

    def test_predict_proba_rows_sum_to_one(self, tiny_task, mlp_factory):
        probabilities = predict_proba(mlp_factory(), tiny_task.test.arrays()[0])
        assert probabilities.shape == (len(tiny_task.test), 10)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-5)


class TestBenignClient:
    def test_rejects_empty_shard(self, tiny_task, mlp_factory, train_config):
        with pytest.raises(ValueError):
            BenignClient(0, tiny_task.train.subset([]), mlp_factory, train_config)

    def test_local_update_metadata(self, tiny_task, mlp_factory, train_config):
        shard = tiny_task.train.subset(range(25))
        client = BenignClient(3, shard, mlp_factory, train_config, seed=1)
        global_params = get_flat_params(mlp_factory())
        update = client.local_update(global_params, round_number=0)
        assert update.client_id == 3
        assert update.num_samples == 25
        assert not update.is_malicious
        assert update.parameters.shape == global_params.shape

    def test_local_update_changes_parameters(self, tiny_task, mlp_factory, train_config):
        shard = tiny_task.train.subset(range(30))
        client = BenignClient(0, shard, mlp_factory, train_config, seed=1)
        global_params = get_flat_params(mlp_factory())
        update = client.local_update(global_params, round_number=0)
        assert not np.allclose(update.parameters, global_params)


class TestAggregation:
    def _updates(self):
        return [
            ModelUpdate(client_id=0, parameters=np.array([1.0, 1.0]), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.array([3.0, 5.0]), num_samples=3),
        ]

    def test_stack_updates_shape(self):
        assert stack_updates(self._updates()).shape == (2, 2)

    def test_stack_rejects_empty(self):
        with pytest.raises(ValueError):
            stack_updates([])

    def test_stack_rejects_mismatched_dims(self):
        updates = [
            ModelUpdate(client_id=0, parameters=np.ones(2), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.ones(3), num_samples=1),
        ]
        with pytest.raises(ValueError):
            stack_updates(updates)

    def test_fedavg_weighted_by_sample_counts(self):
        aggregated = fedavg(self._updates())
        np.testing.assert_allclose(aggregated, [(1 + 9) / 4, (1 + 15) / 4])

    def test_unweighted_average(self):
        aggregated = unweighted_average(self._updates())
        np.testing.assert_allclose(aggregated, [2.0, 3.0])

    def test_fedavg_single_update_is_identity(self):
        update = ModelUpdate(client_id=0, parameters=np.array([2.0, -1.0]), num_samples=7)
        np.testing.assert_allclose(fedavg([update]), [2.0, -1.0])


class TestSelection:
    def test_uniform_selects_requested_count(self, rng):
        selected = UniformSelector().select(list(range(50)), 10, rng)
        assert len(selected) == 10
        assert len(set(selected)) == 10

    def test_uniform_rejects_oversized_request(self, rng):
        with pytest.raises(ValueError):
            UniformSelector().select([1, 2, 3], 5, rng)

    def test_uniform_is_seed_deterministic(self):
        a = UniformSelector().select(list(range(100)), 10, np.random.default_rng(3))
        b = UniformSelector().select(list(range(100)), 10, np.random.default_rng(3))
        assert a == b

    def test_round_robin_cycles_through_all_clients(self, rng):
        selector = RoundRobinSelector()
        seen = set()
        for _ in range(5):
            seen.update(selector.select(list(range(10)), 2, rng))
        assert seen == set(range(10))

    def test_round_robin_rejects_oversized_request(self, rng):
        with pytest.raises(ValueError):
            RoundRobinSelector().select([1, 2], 3, rng)
