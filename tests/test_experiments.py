"""Tests for the experiment harness: config, presets, runner and scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    benchmark_scale,
    build_simulation,
    paper_scale,
    run_experiment,
    scenarios,
    smoke_scale,
)
from repro.utils import format_table, spawn_rngs


class TestExperimentConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.defense == "fedavg"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"train_size": 10, "num_clients": 100},
            {"malicious_fraction": 1.0},
            {"beta": 0.0},
            {"num_rounds": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(attack="lie", defense="mkrum")
        assert config.attack == "lie" and config.defense == "mkrum"

    def test_clean_variant_removes_attack_and_defense(self):
        config = ExperimentConfig(attack="dfa-r", defense="bulyan", malicious_fraction=0.3)
        clean = config.clean_variant()
        assert clean.attack is None
        assert clean.defense == "fedavg"
        assert clean.malicious_fraction == 0.0

    def test_baseline_key_ignores_attack_and_defense(self):
        a = ExperimentConfig(attack="dfa-r", defense="bulyan")
        b = ExperimentConfig(attack="lie", defense="median")
        assert a.baseline_key() == b.baseline_key()

    def test_baseline_key_sensitive_to_dataset_settings(self):
        a = ExperimentConfig(train_size=600)
        b = ExperimentConfig(train_size=700)
        assert a.baseline_key() != b.baseline_key()

    def test_to_dict_roundtrip_fields(self):
        config = ExperimentConfig(attack="lie")
        data = config.to_dict()
        assert data["attack"] == "lie"
        assert data["num_clients"] == config.num_clients


class TestPresets:
    def test_benchmark_scale_is_small(self):
        config = benchmark_scale("cifar-10")
        assert config.train_size <= 500
        assert config.image_size <= 16
        assert config.architecture == "small-cnn"

    def test_smoke_scale_is_smaller_than_benchmark(self):
        assert smoke_scale().train_size < benchmark_scale().train_size

    def test_paper_scale_matches_section_4a(self):
        config = paper_scale("fashion-mnist")
        assert config.num_clients == 100
        assert config.clients_per_round == 10
        assert config.malicious_fraction == 0.2
        assert config.train_size == 6000
        assert config.num_synthetic == 50

    def test_paper_scale_synthesis_epochs_per_dataset(self):
        assert paper_scale("fashion-mnist").synthesis_epochs == 5
        assert paper_scale("cifar-10").synthesis_epochs == 10

    def test_overrides_are_applied(self):
        config = benchmark_scale("svhn", num_rounds=3, attack="dfa-g")
        assert config.num_rounds == 3 and config.attack == "dfa-g"


class TestRunner:
    def test_build_simulation_matches_config(self):
        config = smoke_scale("fashion-mnist", attack="lie", defense="mkrum")
        simulation = build_simulation(config)
        assert simulation.num_clients == config.num_clients
        assert simulation.attack is not None and simulation.attack.name == "lie"
        assert simulation.server.defense.name == "mkrum"

    def test_run_experiment_without_baseline(self):
        config = smoke_scale("fashion-mnist", attack="lie", defense="mkrum")
        result = run_experiment(config)
        assert result.asr is None
        assert len(result.records) == config.num_rounds
        assert result.dpr is None or 0.0 <= result.dpr <= 100.0

    def test_run_experiment_with_baseline_computes_asr(self):
        config = smoke_scale("fashion-mnist", attack="lie", defense="mkrum")
        result = run_experiment(config, baseline_accuracy=0.5)
        assert result.asr is not None

    def test_runner_caches_baselines(self):
        runner = ExperimentRunner()
        config_a = smoke_scale("fashion-mnist", attack="lie", defense="mkrum")
        config_b = smoke_scale("fashion-mnist", attack="fang", defense="median")
        baseline_a = runner.baseline_accuracy(config_a)
        baseline_b = runner.baseline_accuracy(config_b)
        assert baseline_a == baseline_b
        assert len(runner._baseline_cache) == 1

    def test_runner_run_populates_asr_and_baseline(self):
        runner = ExperimentRunner()
        result = runner.run(smoke_scale("fashion-mnist", attack="fang", defense="trmean"))
        assert result.baseline_accuracy is not None
        assert result.asr is not None

    def test_dfa_config_flags_reach_attack(self):
        config = smoke_scale(
            "fashion-mnist",
            attack="dfa-r",
            defense="mkrum",
            train_synthesizer=False,
            use_regularization=False,
            num_synthetic=4,
        )
        simulation = build_simulation(config)
        assert simulation.attack.hyper.train_synthesizer is False
        assert simulation.attack.hyper.use_regularization is False
        assert simulation.attack.hyper.num_synthetic == 4

    def test_dfa_synthesis_losses_recorded(self):
        config = smoke_scale("fashion-mnist", attack="dfa-r", defense="fedavg")
        result = run_experiment(config)
        assert len(result.attack_synthesis_losses) >= 1


class TestScenarios:
    def test_table2_covers_full_grid(self):
        scenario_list = scenarios.table2_scenarios(smoke_scale)
        assert len(scenario_list) == 3 * 4 * 5
        labels = [label for label, _ in scenario_list]
        assert len(set(labels)) == len(labels)

    def test_fig4_uses_only_selecting_defenses(self):
        for _, config in scenarios.fig4_scenarios(smoke_scale):
            assert config.defense in ("mkrum", "bulyan")

    def test_fig5_sweeps_beta(self):
        betas = {config.beta for _, config in scenarios.fig5_scenarios(smoke_scale)}
        assert betas == {0.1, 0.5, 0.9}

    def test_fig6_sweeps_attacker_fraction(self):
        fractions = {config.malicious_fraction for _, config in scenarios.fig6_scenarios(smoke_scale)}
        assert fractions == {0.1, 0.2, 0.3}

    def test_fig7_only_dfa_attacks(self):
        for _, config in scenarios.fig7_scenarios(smoke_scale):
            assert config.attack in ("dfa-r", "dfa-g")

    def test_table3_toggles_synthesizer_training(self):
        modes = {config.train_synthesizer for _, config in scenarios.table3_scenarios(smoke_scale)}
        assert modes == {True, False}

    def test_table4_toggles_regularization(self):
        modes = {config.use_regularization for _, config in scenarios.table4_scenarios(smoke_scale)}
        assert modes == {True, False}

    def test_fig8_includes_real_data_comparator(self):
        attacks = {config.attack for _, config in scenarios.fig8_scenarios(smoke_scale)}
        assert attacks == {"dfa-r", "dfa-g", "real-data"}

    def test_fig9_includes_iid_and_refd(self):
        configs = [config for _, config in scenarios.fig9_scenarios(smoke_scale)]
        assert any(config.beta is None for config in configs)
        assert {config.defense for config in configs} == {"refd", "bulyan"}

    def test_fig10_includes_refd_among_defenses(self):
        defenses = {config.defense for _, config in scenarios.fig10_scenarios(smoke_scale)}
        assert "refd" in defenses and "mkrum" in defenses

    def test_synthetic_set_size_scenarios(self):
        sizes = {config.num_synthetic for _, config in scenarios.synthetic_set_size_scenarios(smoke_scale)}
        assert sizes == {20, 50, 100}

    def test_random_weights_motivation(self):
        for _, config in scenarios.random_weights_motivation(smoke_scale):
            assert config.attack == "random-weights"


class TestUtils:
    def test_spawn_rngs_independent_and_deterministic(self):
        rngs_a = spawn_rngs(3, 4)
        rngs_b = spawn_rngs(3, 4)
        assert len(rngs_a) == 4
        for a, b in zip(rngs_a, rngs_b):
            assert a.random() == b.random()

    def test_spawn_rngs_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)

    def test_format_table_renders_none_and_floats(self):
        table = format_table(["name", "asr", "dpr"], [["lie", 12.345, None]])
        assert "12.35" in table and "N/A" in table
        assert table.splitlines()[1].startswith("-")

    def test_format_table_alignment(self):
        table = format_table(["a"], [["long-value"], ["x"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(lines[2]) == len(lines[3])
