"""Tests for the robust aggregation defenses (Krum family, statistics, FoolsGold)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses import (
    Bulyan,
    FoolsGold,
    Krum,
    MultiKrum,
    Median,
    NoDefense,
    TrimmedMean,
    available_defenses,
    build_defense,
    iterative_krum_selection,
    krum_neighbourhood_size,
    krum_scores,
    krum_scores_from_distances,
    pairwise_sq_distances,
    pardoned_similarities,
)
from repro.fl.executor import ParallelExecutor, ThreadedExecutor
from repro.fl.types import DefenseContext, ModelUpdate


def _context(dim: int = 4, num_malicious: int = 1) -> DefenseContext:
    return DefenseContext(
        round_number=0,
        global_params=np.zeros(dim),
        expected_num_malicious=num_malicious,
        rng=np.random.default_rng(0),
    )


def _cluster_with_outlier(num_benign: int = 8, dim: int = 4, outlier_scale: float = 50.0):
    """Benign updates clustered near 1.0 plus one far-away malicious update."""
    rng = np.random.default_rng(0)
    updates = [
        ModelUpdate(client_id=i, parameters=1.0 + 0.01 * rng.standard_normal(dim), num_samples=10)
        for i in range(num_benign)
    ]
    updates.append(
        ModelUpdate(
            client_id=99,
            parameters=np.full(dim, outlier_scale),
            num_samples=10,
            is_malicious=True,
        )
    )
    return updates


class TestNoDefense:
    def test_fedavg_weighting(self):
        updates = [
            ModelUpdate(client_id=0, parameters=np.zeros(3), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.ones(3), num_samples=3),
        ]
        result = NoDefense().aggregate(updates, _context(3))
        np.testing.assert_allclose(result.new_params, np.full(3, 0.75))
        assert result.accepted_client_ids is None

    def test_empty_updates_rejected(self):
        with pytest.raises(ValueError):
            NoDefense().aggregate([], _context())


class TestKrumScores:
    def test_outlier_gets_highest_score(self):
        updates = _cluster_with_outlier()
        matrix = np.stack([u.parameters for u in updates])
        scores = krum_scores(matrix, num_malicious=1)
        assert scores.argmax() == len(updates) - 1

    def test_scores_are_permutation_equivariant(self):
        updates = _cluster_with_outlier()
        matrix = np.stack([u.parameters for u in updates])
        scores = krum_scores(matrix, 1)
        perm = np.random.default_rng(1).permutation(len(updates))
        scores_perm = krum_scores(matrix[perm], 1)
        np.testing.assert_allclose(scores_perm, scores[perm], atol=1e-8)

    def test_two_updates_degenerate_case(self):
        matrix = np.array([[0.0, 0.0], [1.0, 1.0]])
        scores = krum_scores(matrix, 0)
        assert scores.shape == (2,)
        assert np.all(np.isfinite(scores))


def _legacy_gram_krum_scores(matrix: np.ndarray, num_malicious: int) -> np.ndarray:
    """The pre-fix ``krum_scores``: Gram-trick expansion in the matrix dtype."""
    n = matrix.shape[0]
    if n < 3:
        neighbourhood = max(n - 1, 1)
    else:
        neighbourhood = max(n - num_malicious - 2, 1)
    squared_norms = (matrix ** 2).sum(axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * matrix @ matrix.T
    np.fill_diagonal(distances, np.inf)
    distances = np.maximum(distances, 0.0)
    sorted_distances = np.sort(distances, axis=1)
    return sorted_distances[:, :neighbourhood].sum(axis=1)


class TestGramCancellationRegression:
    """Near-duplicate float32 updates where the old Gram trick inverts the argmin.

    Converged benign updates sit ~1e-3 apart at ‖x‖ ≈ 1e2, so their true
    squared distances (~1e-6) are *below* the float32 rounding of the
    squared norms (eps32 · ‖x‖² ≈ 1e-3): the Gram expansion cancels to
    noise (clipped to zero), scrambling which client Krum accepts.  The
    distance plane must reproduce the float64 ground truth instead.
    """

    def _near_duplicate_matrix(self):
        rng = np.random.default_rng(7)
        dim = 4096
        base = rng.standard_normal(dim)
        base *= 100.0 / np.linalg.norm(base)
        deltas = []
        for i in range(6):
            if i == 2:
                delta = np.zeros(dim)  # the true centre of the cluster
            elif i == 5:
                delta = rng.standard_normal(dim)
                delta *= 2e-3 / np.linalg.norm(delta)  # mild outlier
            else:
                delta = rng.standard_normal(dim)
                delta *= 5e-4 / np.linalg.norm(delta)
            deltas.append(delta)
        return np.stack([base + delta for delta in deltas]).astype(np.float32)

    def _float64_ground_truth(self, matrix, num_malicious):
        m64 = matrix.astype(np.float64)
        distances = ((m64[:, None, :] - m64[None, :, :]) ** 2).sum(axis=2)
        return krum_scores_from_distances(distances, num_malicious)

    def test_old_gram_scores_invert_the_argmin(self):
        matrix = self._near_duplicate_matrix()
        truth = self._float64_ground_truth(matrix, 1)
        legacy = _legacy_gram_krum_scores(matrix, 1)
        # The cancellation collapses every score to (clipped) noise ...
        assert int(legacy.argmin()) != int(truth.argmin())
        # ... in this scenario literally to all-zero scores.
        np.testing.assert_array_equal(legacy, np.zeros(len(legacy)))

    def test_distance_plane_matches_float64_ground_truth(self):
        matrix = self._near_duplicate_matrix()
        truth = self._float64_ground_truth(matrix, 1)
        scores = krum_scores(matrix, 1)
        np.testing.assert_allclose(scores, truth, rtol=1e-12)
        assert int(scores.argmin()) == int(truth.argmin()) == 2
        assert int(scores.argmax()) == int(truth.argmax()) == 5

    def test_krum_defense_selects_the_cluster_centre(self):
        matrix = self._near_duplicate_matrix()
        updates = [
            ModelUpdate(client_id=i, parameters=row, num_samples=10)
            for i, row in enumerate(matrix)
        ]
        result = Krum().aggregate(updates, _context(matrix.shape[1]))
        assert result.accepted_client_ids == [2]


class TestKrumNeighbourhood:
    def test_paper_rule(self):
        assert krum_neighbourhood_size(10, 2) == 6
        assert krum_neighbourhood_size(6, 1) == 3

    def test_clamped_when_n_shrinks_below_f_plus_3(self):
        assert krum_neighbourhood_size(4, 2) == 1
        assert krum_neighbourhood_size(3, 5) == 1

    def test_degenerate_small_n(self):
        assert krum_neighbourhood_size(2, 0) == 1
        assert krum_neighbourhood_size(1, 0) == 1

    def test_scores_from_distances_rejects_non_square(self):
        with pytest.raises(ValueError):
            krum_scores_from_distances(np.zeros((2, 3)), 0)


class TestKrumAndMultiKrum:
    def test_krum_selects_a_benign_update(self):
        updates = _cluster_with_outlier()
        result = Krum().aggregate(updates, _context())
        assert result.accepted_client_ids[0] != 99
        assert np.all(np.abs(result.new_params - 1.0) < 0.2)

    def test_krum_reports_scores_for_all_clients(self):
        updates = _cluster_with_outlier()
        result = Krum().aggregate(updates, _context())
        assert set(result.scores) == {u.client_id for u in updates}

    def test_mkrum_excludes_outlier(self):
        updates = _cluster_with_outlier()
        result = MultiKrum().aggregate(updates, _context())
        assert 99 not in result.accepted_client_ids
        assert len(result.accepted_client_ids) == len(updates) - 1

    def test_mkrum_respects_explicit_selection_size(self):
        updates = _cluster_with_outlier()
        result = MultiKrum(num_selected=3).aggregate(updates, _context())
        assert len(result.accepted_client_ids) == 3

    def test_mkrum_aggregate_is_mean_of_selected(self):
        updates = _cluster_with_outlier()
        result = MultiKrum(num_selected=4).aggregate(updates, _context())
        chosen = [u for u in updates if u.client_id in result.accepted_client_ids]
        expected = np.stack([u.parameters for u in chosen]).mean(axis=0)
        np.testing.assert_allclose(result.new_params, expected)

    def test_identical_sybil_updates_can_pass_mkrum(self):
        # Two identical malicious updates close to the benign cluster should
        # not be rejected purely for being identical.
        rng = np.random.default_rng(0)
        updates = [
            ModelUpdate(client_id=i, parameters=1.0 + 0.05 * rng.standard_normal(6), num_samples=5)
            for i in range(6)
        ]
        sybil = 1.0 + 0.05 * rng.standard_normal(6)
        updates += [
            ModelUpdate(client_id=100 + i, parameters=sybil.copy(), num_samples=5, is_malicious=True)
            for i in range(2)
        ]
        result = MultiKrum().aggregate(updates, _context(6, num_malicious=2))
        assert any(cid >= 100 for cid in result.accepted_client_ids)


class TestBulyan:
    def test_excludes_outlier(self):
        updates = _cluster_with_outlier()
        result = Bulyan().aggregate(updates, _context())
        assert 99 not in result.accepted_client_ids
        assert np.all(np.abs(result.new_params - 1.0) < 0.2)

    def test_selection_size_defaults_to_n_minus_2f(self):
        updates = _cluster_with_outlier(num_benign=9)  # 10 updates, f=1
        result = Bulyan().aggregate(updates, _context(num_malicious=1))
        assert len(result.accepted_client_ids) == 8

    def test_explicit_selection_and_trim(self):
        updates = _cluster_with_outlier()
        result = Bulyan(selection_size=5, trim=1).aggregate(updates, _context())
        assert len(result.accepted_client_ids) == 5

    def test_rejects_more_than_mkrum(self):
        updates = _cluster_with_outlier(num_benign=9)
        context = _context(num_malicious=2)
        mkrum_accepted = len(MultiKrum().aggregate(updates, context).accepted_client_ids)
        bulyan_accepted = len(Bulyan().aggregate(updates, context).accepted_client_ids)
        assert bulyan_accepted < mkrum_accepted

    def test_unknown_coordinate_rule_raises(self):
        with pytest.raises(ValueError):
            Bulyan(coordinate_rule="mean-of-means")

    def test_median_closest_rule_follows_the_paper(self):
        """El Mhamdi et al.: keep the θ−2β coordinates *closest to the
        coordinate-wise median* — not the sorted middle slice.  With values
        [0, 1, 5, 5.1, 5.2] and β=1 the median is 5 and the closest three
        are {5, 5.1, 5.2}; the trimmed mean would keep {1, 5, 5.1}."""
        values = [0.0, 1.0, 5.0, 5.1, 5.2]
        updates = [
            ModelUpdate(client_id=i, parameters=np.array([v]), num_samples=1)
            for i, v in enumerate(values)
        ]
        context = _context(1, num_malicious=1)
        paper = Bulyan(selection_size=5, trim=1).aggregate(updates, context)
        np.testing.assert_allclose(paper.new_params, [np.mean([5.0, 5.1, 5.2])])
        trimmed = Bulyan(selection_size=5, trim=1, coordinate_rule="trimmed-mean").aggregate(
            updates, context
        )
        np.testing.assert_allclose(trimmed.new_params, [np.mean([1.0, 5.0, 5.1])])

    def test_zero_trim_is_plain_mean_under_both_rules(self):
        values = [0.0, 1.0, 4.0]
        updates = [
            ModelUpdate(client_id=i, parameters=np.array([v]), num_samples=1)
            for i, v in enumerate(values)
        ]
        context = _context(1, num_malicious=0)
        for rule in ("median-closest", "trimmed-mean"):
            result = Bulyan(selection_size=3, trim=0, coordinate_rule=rule).aggregate(
                updates, context
            )
            np.testing.assert_allclose(result.new_params, [np.mean(values)])

    def test_selection_order_pinned_on_hand_built_example(self):
        """Points on a line at 0, 1, 3, 6, 10 with f=2: the remaining set
        shrinks below f+3 immediately, so every pick must clamp the
        neighbourhood to the *current* n.  Expected order (nearest-single-
        neighbour scoring, first-index tie-break): 0, 1, 2, 3."""
        positions = np.array([0.0, 1.0, 3.0, 6.0, 10.0])
        distances = (positions[:, None] - positions[None, :]) ** 2
        assert iterative_krum_selection(distances, 4, 2) == [0, 1, 2, 3]
        # The same order must come out of the full defense.
        updates = [
            ModelUpdate(client_id=10 + i, parameters=np.array([p]), num_samples=1)
            for i, p in enumerate(positions)
        ]
        result = Bulyan(selection_size=4).aggregate(updates, _context(1, num_malicious=2))
        assert result.accepted_client_ids == [10, 11, 12, 13]

    def test_distance_matrix_reuse_matches_per_pick_rescoring(self):
        """Slicing one precomputed matrix must equal recomputing krum_scores
        from the raw updates on every pick (the old O(θ·n²·dim) loop)."""
        rng = np.random.default_rng(11)
        matrix = rng.standard_normal((9, 40)).astype(np.float32)
        distances = pairwise_sq_distances(matrix)
        fast = iterative_krum_selection(distances, 6, 2)
        remaining = list(range(9))
        slow = []
        while len(slow) < 6 and remaining:
            scores = krum_scores(matrix[remaining], 2)
            slow.append(remaining.pop(int(np.argmin(scores))))
        assert fast == slow


class TestStatisticalDefenses:
    def test_median_per_coordinate(self):
        updates = [
            ModelUpdate(client_id=0, parameters=np.array([1.0, 10.0]), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.array([2.0, 20.0]), num_samples=1),
            ModelUpdate(client_id=2, parameters=np.array([100.0, -5.0]), num_samples=1),
        ]
        result = Median().aggregate(updates, _context(2))
        np.testing.assert_allclose(result.new_params, [2.0, 10.0])
        assert result.accepted_client_ids is None

    def test_median_resists_large_outlier(self):
        updates = _cluster_with_outlier()
        result = Median().aggregate(updates, _context())
        assert np.all(np.abs(result.new_params - 1.0) < 0.2)

    def test_trimmed_mean_removes_extremes(self):
        updates = [
            ModelUpdate(client_id=i, parameters=np.array([float(v)]), num_samples=1)
            for i, v in enumerate([0.0, 1.0, 2.0, 3.0, 100.0])
        ]
        result = TrimmedMean().aggregate(updates, _context(1, num_malicious=1))
        np.testing.assert_allclose(result.new_params, [2.0])

    def test_trimmed_mean_zero_trim_equals_mean(self):
        updates = [
            ModelUpdate(client_id=i, parameters=np.array([float(i)]), num_samples=1)
            for i in range(4)
        ]
        result = TrimmedMean(trim_ratio=0.0).aggregate(updates, _context(1))
        np.testing.assert_allclose(result.new_params, [1.5])

    def test_trimmed_mean_invalid_ratio(self):
        with pytest.raises(ValueError):
            TrimmedMean(trim_ratio=0.6)

    def test_trimmed_mean_bounded_by_sorted_interior(self):
        updates = _cluster_with_outlier()
        result = TrimmedMean().aggregate(updates, _context())
        matrix = np.stack([u.parameters for u in updates])
        assert np.all(result.new_params <= matrix.max(axis=0))
        assert np.all(result.new_params >= matrix.min(axis=0))
        assert np.all(result.new_params < 10.0)


class TestFoolsGold:
    def test_downweights_identical_sybils(self):
        rng = np.random.default_rng(0)
        context = _context(8)
        benign = [
            ModelUpdate(client_id=i, parameters=rng.standard_normal(8), num_samples=5)
            for i in range(5)
        ]
        sybil_vector = rng.standard_normal(8)
        sybils = [
            ModelUpdate(client_id=100 + i, parameters=sybil_vector.copy(), num_samples=5,
                        is_malicious=True)
            for i in range(3)
        ]
        defense = FoolsGold()
        result = defense.aggregate(benign + sybils, context)
        sybil_weights = [result.scores[100 + i] for i in range(3)]
        benign_weights = [result.scores[i] for i in range(5)]
        assert max(sybil_weights) < max(benign_weights)

    def test_reset_clears_history(self):
        defense = FoolsGold()
        updates = _cluster_with_outlier()
        defense.aggregate(updates, _context())
        assert defense._history
        defense.reset()
        assert not defense._history

    def test_pardoning_matches_reference_double_loop(self):
        """The vectorized rescale must equal the original algorithm's loop:
        cs_ij *= maxcs_i / maxcs_j whenever maxcs_j > maxcs_i."""
        rng = np.random.default_rng(0)
        for _ in range(5):
            vectors = rng.standard_normal((6, 12))
            norms = np.linalg.norm(vectors, axis=1, keepdims=True)
            cs = (vectors / norms) @ (vectors / norms).T
            reference = cs.copy()
            np.fill_diagonal(reference, 0.0)
            maxcs = reference.max(axis=1)
            for i in range(6):
                for j in range(6):
                    if maxcs[j] > maxcs[i]:
                        reference[i, j] = reference[i, j] * maxcs[i] / maxcs[j]
            np.testing.assert_allclose(pardoned_similarities(cs), reference, rtol=1e-12)

    def test_pardoning_restores_benign_client_aligned_with_sybils(self):
        """An honest client that merely points the same way as a Sybil
        cluster is pardoned: its similarity to the Sybils is rescaled by
        maxcs_i / maxcs_j < 1, so its weight matches an orthogonal benign
        client instead of being crushed."""
        dim = 8
        sybil_direction = np.zeros(dim)
        sybil_direction[0] = 1.0
        aligned_benign = np.zeros(dim)
        aligned_benign[0] = 0.5
        aligned_benign[1] = np.sqrt(1 - 0.25)  # cosine 0.5 with the Sybils
        orthogonal_benign = np.zeros(dim)
        orthogonal_benign[2] = 1.0
        updates = [
            ModelUpdate(client_id=0, parameters=aligned_benign, num_samples=1),
            ModelUpdate(client_id=1, parameters=orthogonal_benign, num_samples=1),
            ModelUpdate(client_id=100, parameters=sybil_direction.copy(), num_samples=1,
                        is_malicious=True),
            ModelUpdate(client_id=101, parameters=sybil_direction.copy(), num_samples=1,
                        is_malicious=True),
        ]
        result = FoolsGold().aggregate(updates, _context(dim))
        # Pardoned similarity of the aligned client drops to 0.5 * 0.5 / 1.0
        # = 0.25 -> weight 0.75 -> logit(0.75) + 0.5 > 1 -> full weight,
        # exactly like the orthogonal client; the Sybils stay at zero.
        assert result.scores[0] == pytest.approx(result.scores[1])
        assert result.scores[100] == pytest.approx(0.0, abs=1e-6)
        assert result.scores[101] == pytest.approx(0.0, abs=1e-6)
        assert result.scores[0] > 10 * max(result.scores[100], result.scores[101])

    def test_pardoning_diagonal_untouched_by_zero_max(self):
        # A lone pair of anti-correlated clients: every maxcs floors at 0,
        # so no pardoning applies and nothing divides by zero.
        cs = np.array([[1.0, -0.5], [-0.5, 1.0]])
        pardoned = pardoned_similarities(cs)
        np.testing.assert_array_equal(pardoned, np.array([[0.0, -0.5], [-0.5, 0.0]]))


class TestDefenseBackendParity:
    """Serial, thread and process (fan-out) backends must agree bitwise."""

    def _updates(self, n=8, dim=256, seed=3):
        rng = np.random.default_rng(seed)
        base = rng.standard_normal(dim).astype(np.float32)
        return [
            ModelUpdate(
                client_id=i,
                parameters=base + 0.05 * rng.standard_normal(dim).astype(np.float32),
                num_samples=5,
            )
            for i in range(n)
        ]

    def _context_with(self, executor, dim=256):
        return DefenseContext(
            round_number=0,
            global_params=np.zeros(dim, dtype=np.float32),
            expected_num_malicious=2,
            rng=np.random.default_rng(0),
            executor=executor,
        )

    @pytest.mark.parametrize(
        "defense_factory",
        [Krum, MultiKrum, Bulyan, FoolsGold],
        ids=["krum", "mkrum", "bulyan", "foolsgold"],
    )
    def test_backends_bit_identical(self, defense_factory):
        updates = self._updates()
        serial = defense_factory().aggregate(updates, self._context_with(None))
        with ThreadedExecutor(workers=3) as executor:
            threaded = defense_factory().aggregate(updates, self._context_with(executor))
        with ParallelExecutor(workers=2) as executor:
            pooled = defense_factory().aggregate(updates, self._context_with(executor))
            assert executor.fanout_calls > 0  # distance blocks used the pool
            assert executor.published_stores > 0  # the matrix shipped once per call
        for other in (threaded, pooled):
            np.testing.assert_array_equal(serial.new_params, other.new_params)
            assert serial.accepted_client_ids == other.accepted_client_ids
            if serial.scores is not None:
                assert serial.scores == other.scores


class TestRegistry:
    def test_all_registered_names_build(self):
        for name in available_defenses():
            assert build_defense(name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_defense("does-not-exist")

    def test_kwargs_forwarded(self):
        defense = build_defense("mkrum", num_selected=4)
        assert defense.num_selected == 4

    def test_selects_updates_flags(self):
        assert build_defense("mkrum").selects_updates
        assert build_defense("bulyan").selects_updates
        assert build_defense("refd").selects_updates
        assert not build_defense("median").selects_updates
        assert not build_defense("trmean").selects_updates
