"""Tests for the robust aggregation defenses (Krum family, statistics, FoolsGold)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses import (
    Bulyan,
    FoolsGold,
    Krum,
    MultiKrum,
    Median,
    NoDefense,
    TrimmedMean,
    available_defenses,
    build_defense,
    krum_scores,
)
from repro.fl.types import DefenseContext, ModelUpdate


def _context(dim: int = 4, num_malicious: int = 1) -> DefenseContext:
    return DefenseContext(
        round_number=0,
        global_params=np.zeros(dim),
        expected_num_malicious=num_malicious,
        rng=np.random.default_rng(0),
    )


def _cluster_with_outlier(num_benign: int = 8, dim: int = 4, outlier_scale: float = 50.0):
    """Benign updates clustered near 1.0 plus one far-away malicious update."""
    rng = np.random.default_rng(0)
    updates = [
        ModelUpdate(client_id=i, parameters=1.0 + 0.01 * rng.standard_normal(dim), num_samples=10)
        for i in range(num_benign)
    ]
    updates.append(
        ModelUpdate(
            client_id=99,
            parameters=np.full(dim, outlier_scale),
            num_samples=10,
            is_malicious=True,
        )
    )
    return updates


class TestNoDefense:
    def test_fedavg_weighting(self):
        updates = [
            ModelUpdate(client_id=0, parameters=np.zeros(3), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.ones(3), num_samples=3),
        ]
        result = NoDefense().aggregate(updates, _context(3))
        np.testing.assert_allclose(result.new_params, np.full(3, 0.75))
        assert result.accepted_client_ids is None

    def test_empty_updates_rejected(self):
        with pytest.raises(ValueError):
            NoDefense().aggregate([], _context())


class TestKrumScores:
    def test_outlier_gets_highest_score(self):
        updates = _cluster_with_outlier()
        matrix = np.stack([u.parameters for u in updates])
        scores = krum_scores(matrix, num_malicious=1)
        assert scores.argmax() == len(updates) - 1

    def test_scores_are_permutation_equivariant(self):
        updates = _cluster_with_outlier()
        matrix = np.stack([u.parameters for u in updates])
        scores = krum_scores(matrix, 1)
        perm = np.random.default_rng(1).permutation(len(updates))
        scores_perm = krum_scores(matrix[perm], 1)
        np.testing.assert_allclose(scores_perm, scores[perm], atol=1e-8)

    def test_two_updates_degenerate_case(self):
        matrix = np.array([[0.0, 0.0], [1.0, 1.0]])
        scores = krum_scores(matrix, 0)
        assert scores.shape == (2,)
        assert np.all(np.isfinite(scores))


class TestKrumAndMultiKrum:
    def test_krum_selects_a_benign_update(self):
        updates = _cluster_with_outlier()
        result = Krum().aggregate(updates, _context())
        assert result.accepted_client_ids[0] != 99
        assert np.all(np.abs(result.new_params - 1.0) < 0.2)

    def test_krum_reports_scores_for_all_clients(self):
        updates = _cluster_with_outlier()
        result = Krum().aggregate(updates, _context())
        assert set(result.scores) == {u.client_id for u in updates}

    def test_mkrum_excludes_outlier(self):
        updates = _cluster_with_outlier()
        result = MultiKrum().aggregate(updates, _context())
        assert 99 not in result.accepted_client_ids
        assert len(result.accepted_client_ids) == len(updates) - 1

    def test_mkrum_respects_explicit_selection_size(self):
        updates = _cluster_with_outlier()
        result = MultiKrum(num_selected=3).aggregate(updates, _context())
        assert len(result.accepted_client_ids) == 3

    def test_mkrum_aggregate_is_mean_of_selected(self):
        updates = _cluster_with_outlier()
        result = MultiKrum(num_selected=4).aggregate(updates, _context())
        chosen = [u for u in updates if u.client_id in result.accepted_client_ids]
        expected = np.stack([u.parameters for u in chosen]).mean(axis=0)
        np.testing.assert_allclose(result.new_params, expected)

    def test_identical_sybil_updates_can_pass_mkrum(self):
        # Two identical malicious updates close to the benign cluster should
        # not be rejected purely for being identical.
        rng = np.random.default_rng(0)
        updates = [
            ModelUpdate(client_id=i, parameters=1.0 + 0.05 * rng.standard_normal(6), num_samples=5)
            for i in range(6)
        ]
        sybil = 1.0 + 0.05 * rng.standard_normal(6)
        updates += [
            ModelUpdate(client_id=100 + i, parameters=sybil.copy(), num_samples=5, is_malicious=True)
            for i in range(2)
        ]
        result = MultiKrum().aggregate(updates, _context(6, num_malicious=2))
        assert any(cid >= 100 for cid in result.accepted_client_ids)


class TestBulyan:
    def test_excludes_outlier(self):
        updates = _cluster_with_outlier()
        result = Bulyan().aggregate(updates, _context())
        assert 99 not in result.accepted_client_ids
        assert np.all(np.abs(result.new_params - 1.0) < 0.2)

    def test_selection_size_defaults_to_n_minus_2f(self):
        updates = _cluster_with_outlier(num_benign=9)  # 10 updates, f=1
        result = Bulyan().aggregate(updates, _context(num_malicious=1))
        assert len(result.accepted_client_ids) == 8

    def test_explicit_selection_and_trim(self):
        updates = _cluster_with_outlier()
        result = Bulyan(selection_size=5, trim=1).aggregate(updates, _context())
        assert len(result.accepted_client_ids) == 5

    def test_rejects_more_than_mkrum(self):
        updates = _cluster_with_outlier(num_benign=9)
        context = _context(num_malicious=2)
        mkrum_accepted = len(MultiKrum().aggregate(updates, context).accepted_client_ids)
        bulyan_accepted = len(Bulyan().aggregate(updates, context).accepted_client_ids)
        assert bulyan_accepted < mkrum_accepted


class TestStatisticalDefenses:
    def test_median_per_coordinate(self):
        updates = [
            ModelUpdate(client_id=0, parameters=np.array([1.0, 10.0]), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.array([2.0, 20.0]), num_samples=1),
            ModelUpdate(client_id=2, parameters=np.array([100.0, -5.0]), num_samples=1),
        ]
        result = Median().aggregate(updates, _context(2))
        np.testing.assert_allclose(result.new_params, [2.0, 10.0])
        assert result.accepted_client_ids is None

    def test_median_resists_large_outlier(self):
        updates = _cluster_with_outlier()
        result = Median().aggregate(updates, _context())
        assert np.all(np.abs(result.new_params - 1.0) < 0.2)

    def test_trimmed_mean_removes_extremes(self):
        updates = [
            ModelUpdate(client_id=i, parameters=np.array([float(v)]), num_samples=1)
            for i, v in enumerate([0.0, 1.0, 2.0, 3.0, 100.0])
        ]
        result = TrimmedMean().aggregate(updates, _context(1, num_malicious=1))
        np.testing.assert_allclose(result.new_params, [2.0])

    def test_trimmed_mean_zero_trim_equals_mean(self):
        updates = [
            ModelUpdate(client_id=i, parameters=np.array([float(i)]), num_samples=1)
            for i in range(4)
        ]
        result = TrimmedMean(trim_ratio=0.0).aggregate(updates, _context(1))
        np.testing.assert_allclose(result.new_params, [1.5])

    def test_trimmed_mean_invalid_ratio(self):
        with pytest.raises(ValueError):
            TrimmedMean(trim_ratio=0.6)

    def test_trimmed_mean_bounded_by_sorted_interior(self):
        updates = _cluster_with_outlier()
        result = TrimmedMean().aggregate(updates, _context())
        matrix = np.stack([u.parameters for u in updates])
        assert np.all(result.new_params <= matrix.max(axis=0))
        assert np.all(result.new_params >= matrix.min(axis=0))
        assert np.all(result.new_params < 10.0)


class TestFoolsGold:
    def test_downweights_identical_sybils(self):
        rng = np.random.default_rng(0)
        context = _context(8)
        benign = [
            ModelUpdate(client_id=i, parameters=rng.standard_normal(8), num_samples=5)
            for i in range(5)
        ]
        sybil_vector = rng.standard_normal(8)
        sybils = [
            ModelUpdate(client_id=100 + i, parameters=sybil_vector.copy(), num_samples=5,
                        is_malicious=True)
            for i in range(3)
        ]
        defense = FoolsGold()
        result = defense.aggregate(benign + sybils, context)
        sybil_weights = [result.scores[100 + i] for i in range(3)]
        benign_weights = [result.scores[i] for i in range(5)]
        assert max(sybil_weights) < max(benign_weights)

    def test_reset_clears_history(self):
        defense = FoolsGold()
        updates = _cluster_with_outlier()
        defense.aggregate(updates, _context())
        assert defense._history
        defense.reset()
        assert not defense._history


class TestRegistry:
    def test_all_registered_names_build(self):
        for name in available_defenses():
            assert build_defense(name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_defense("does-not-exist")

    def test_kwargs_forwarded(self):
        defense = build_defense("mkrum", num_selected=4)
        assert defense.num_selected == 4

    def test_selects_updates_flags(self):
        assert build_defense("mkrum").selects_updates
        assert build_defense("bulyan").selects_updates
        assert build_defense("refd").selects_updates
        assert not build_defense("median").selects_updates
        assert not build_defense("trmean").selects_updates
