"""Tests for the paper's metrics: ASR (Eq. 4), DPR (Eq. 5) and helper statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.types import RoundRecord
from repro.metrics import (
    attack_success_rate,
    defense_pass_rate,
    max_accuracy,
    prediction_balance,
    prediction_confidence,
)


def _record(round_number, accuracy, selected_malicious=(), passed=None):
    return RoundRecord(
        round_number=round_number,
        selected_client_ids=list(range(5)),
        selected_malicious_ids=list(selected_malicious),
        accepted_client_ids=None,
        accuracy=accuracy,
        test_loss=1.0,
        num_malicious_passed=passed,
    )


class TestAttackSuccessRate:
    def test_matches_equation_four(self):
        # acc = 0.5, acc_m = 0.25 => (0.5 - 0.25)/0.5 = 50 %.
        assert attack_success_rate(0.5, 0.25) == pytest.approx(50.0)

    def test_zero_when_attack_has_no_effect(self):
        assert attack_success_rate(0.8, 0.8) == pytest.approx(0.0)

    def test_negative_when_attacked_run_is_better(self):
        assert attack_success_rate(0.5, 0.6) < 0.0

    def test_invalid_clean_accuracy(self):
        with pytest.raises(ValueError):
            attack_success_rate(0.0, 0.5)
        with pytest.raises(ValueError):
            attack_success_rate(1.5, 0.5)

    def test_invalid_attacked_accuracy(self):
        with pytest.raises(ValueError):
            attack_success_rate(0.5, -0.1)


class TestDefensePassRate:
    def test_aggregates_over_rounds(self):
        records = [
            _record(0, 0.5, selected_malicious=[1, 2], passed=1),
            _record(1, 0.5, selected_malicious=[3], passed=1),
            _record(2, 0.5, selected_malicious=[4, 5], passed=0),
        ]
        # 2 passed out of 5 selected => 40 %.
        assert defense_pass_rate(records) == pytest.approx(40.0)

    def test_none_when_defense_does_not_select(self):
        records = [_record(0, 0.5, selected_malicious=[1], passed=None)]
        assert defense_pass_rate(records) is None

    def test_none_when_no_malicious_selected(self):
        records = [_record(0, 0.5, selected_malicious=[], passed=0)]
        assert defense_pass_rate(records) is None

    def test_rounds_without_pass_info_are_skipped(self):
        records = [
            _record(0, 0.5, selected_malicious=[1], passed=None),
            _record(1, 0.5, selected_malicious=[2, 3], passed=2),
        ]
        assert defense_pass_rate(records) == pytest.approx(100.0)


class TestMaxAccuracy:
    def test_returns_maximum(self):
        records = [_record(i, acc) for i, acc in enumerate([0.2, 0.6, 0.4])]
        assert max_accuracy(records) == pytest.approx(0.6)

    def test_empty_records(self):
        assert max_accuracy([]) == 0.0


class TestPredictionStatistics:
    def test_balance_uniform_predictions(self):
        labels = [0, 1, 2, 3] * 5
        assert prediction_balance(labels, 4) == 1.0

    def test_balance_biased_predictions_lower(self):
        biased = prediction_balance([0] * 20, 4)
        uniform = prediction_balance([0, 1, 2, 3] * 5, 4)
        assert biased < uniform

    def test_confidence_mean_of_max(self):
        probabilities = np.array([[0.7, 0.3], [0.5, 0.5]])
        assert prediction_confidence(probabilities) == pytest.approx(0.6)

    def test_confidence_rejects_1d(self):
        with pytest.raises(ValueError):
            prediction_confidence(np.array([0.5, 0.5]))
