"""Tests for the paper's metrics: ASR (Eq. 4), DPR (Eq. 5) and helper statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.types import RoundRecord
from repro.metrics import (
    attack_success_rate,
    defense_pass_rate,
    max_accuracy,
    prediction_balance,
    prediction_confidence,
)


def _record(round_number, accuracy, selected_malicious=(), passed=None):
    return RoundRecord(
        round_number=round_number,
        selected_client_ids=list(range(5)),
        selected_malicious_ids=list(selected_malicious),
        accepted_client_ids=None,
        accuracy=accuracy,
        test_loss=1.0,
        num_malicious_passed=passed,
    )


class TestAttackSuccessRate:
    def test_matches_equation_four(self):
        # acc = 0.5, acc_m = 0.25 => (0.5 - 0.25)/0.5 = 50 %.
        assert attack_success_rate(0.5, 0.25) == pytest.approx(50.0)

    def test_zero_when_attack_has_no_effect(self):
        assert attack_success_rate(0.8, 0.8) == pytest.approx(0.0)

    def test_negative_when_attacked_run_is_better(self):
        assert attack_success_rate(0.5, 0.6) < 0.0

    def test_invalid_clean_accuracy(self):
        with pytest.raises(ValueError):
            attack_success_rate(0.0, 0.5)
        with pytest.raises(ValueError):
            attack_success_rate(1.5, 0.5)

    def test_invalid_attacked_accuracy(self):
        with pytest.raises(ValueError):
            attack_success_rate(0.5, -0.1)


class TestDefensePassRate:
    def test_aggregates_over_rounds(self):
        records = [
            _record(0, 0.5, selected_malicious=[1, 2], passed=1),
            _record(1, 0.5, selected_malicious=[3], passed=1),
            _record(2, 0.5, selected_malicious=[4, 5], passed=0),
        ]
        # 2 passed out of 5 selected => 40 %.
        assert defense_pass_rate(records) == pytest.approx(40.0)

    def test_none_when_defense_does_not_select(self):
        records = [_record(0, 0.5, selected_malicious=[1], passed=None)]
        assert defense_pass_rate(records) is None

    def test_none_when_no_malicious_selected(self):
        records = [_record(0, 0.5, selected_malicious=[], passed=0)]
        assert defense_pass_rate(records) is None

    def test_rounds_without_pass_info_are_skipped(self):
        records = [
            _record(0, 0.5, selected_malicious=[1], passed=None),
            _record(1, 0.5, selected_malicious=[2, 3], passed=2),
        ]
        assert defense_pass_rate(records) == pytest.approx(100.0)


class TestMaxAccuracy:
    def test_returns_maximum(self):
        records = [_record(i, acc) for i, acc in enumerate([0.2, 0.6, 0.4])]
        assert max_accuracy(records) == pytest.approx(0.6)

    def test_empty_records(self):
        assert max_accuracy([]) == 0.0


class TestPredictionStatistics:
    def test_balance_uniform_predictions(self):
        # A zero-std histogram maps to the supremum of the finite balance
        # values, sqrt(C / 2) — NOT the old 1.0 sentinel, which ranked
        # perfect balance below mildly biased histograms.
        labels = [0, 1, 2, 3] * 5
        assert prediction_balance(labels, 4) == pytest.approx(np.sqrt(4 / 2))

    def test_balance_biased_predictions_lower(self):
        biased = prediction_balance([0] * 20, 4)
        uniform = prediction_balance([0, 1, 2, 3] * 5, 4)
        assert biased < uniform

    def test_balance_matches_refd_defense_exactly(self):
        """Regression: the metrics wrapper must delegate to the defense's
        Eq. 6 implementation, so the two can never disagree again."""
        from repro.defenses.refd import balance_value, max_balance_value

        cases = [
            [0, 1, 2, 3] * 5,            # perfectly balanced
            [0, 1, 2, 3] * 5 + [0],      # near-balanced (std < 1)
            [0, 0, 1, 2, 3],             # mildly biased
            [0] * 20,                    # fully collapsed
            [1] * 7 + [2] * 6 + [3] * 7, # one empty class
        ]
        for labels in cases:
            counts = np.bincount(np.asarray(labels), minlength=4)
            assert prediction_balance(labels, 4) == balance_value(counts)
        assert prediction_balance([0, 1, 2, 3], 4) == max_balance_value(4)

    def test_balanced_never_ranks_below_near_balanced(self):
        """The exact inversion the old 1.0 sentinel produced: a histogram
        with std < 1 (e.g. 6/5/5/4 over 20 samples) used to out-score a
        perfectly balanced one in analysis output."""
        near_balanced = [0] * 6 + [1] * 5 + [2] * 5 + [3] * 4
        assert prediction_balance(near_balanced, 4) > 1.0  # std < 1 here
        balanced = [0, 1, 2, 3] * 5
        assert prediction_balance(balanced, 4) > prediction_balance(near_balanced, 4)

    def test_confidence_mean_of_max(self):
        probabilities = np.array([[0.7, 0.3], [0.5, 0.5]])
        assert prediction_confidence(probabilities) == pytest.approx(0.6)

    def test_confidence_rejects_1d(self):
        with pytest.raises(ValueError):
            prediction_confidence(np.array([0.5, 0.5]))
