"""End-to-end integration tests: attacks actually hurt, defenses actually help.

These tests run small but complete federated experiments and check the
*directional* claims of the paper rather than exact numbers: an undefended
attack degrades accuracy, REFD restores most of it for data-free attacks, and
the bookkeeping (ASR/DPR/records) stays consistent across the whole pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import DfaG, DfaHyperParameters, DfaR, FangAttack
from repro.defenses import Bulyan, MultiKrum, NoDefense, Refd
from repro.experiments import ExperimentRunner, smoke_scale
from repro.fl import FederatedSimulation, LocalTrainingConfig
from repro.metrics import attack_success_rate, defense_pass_rate

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def strong_task():
    """A learnable task big enough that attack effects are visible."""
    from repro.data.synthetic import SyntheticImageSpec, make_synthetic_task

    spec = SyntheticImageSpec(name="integration", channels=1, image_size=16, noise_std=0.3)
    return make_synthetic_task(spec, train_size=300, test_size=120, seed=11)


@pytest.fixture(scope="module")
def strong_factory(strong_task):
    from repro.models import SmallCNN

    def factory():
        return SmallCNN(in_channels=1, image_size=16, num_classes=10, width=8,
                        rng=np.random.default_rng(0))

    return factory


def _run(strong_task, strong_factory, attack=None, defense=None, rounds=12,
         malicious_fraction=0.2, seed=0):
    simulation = FederatedSimulation(
        task=strong_task,
        model_factory=strong_factory,
        num_clients=15,
        clients_per_round=6,
        malicious_fraction=malicious_fraction if attack is not None else 0.0,
        beta=0.5,
        attack=attack,
        defense=defense,
        training_config=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.25),
        seed=seed,
    )
    return simulation.run(rounds)


def _hyper():
    return DfaHyperParameters(num_synthetic=15, synthesis_epochs=3)


class TestAttackImpact:
    def test_clean_training_learns(self, strong_task, strong_factory):
        clean = _run(strong_task, strong_factory)
        assert clean.max_accuracy > 0.5

    def test_fang_degrades_undefended_training(self, strong_task, strong_factory):
        clean = _run(strong_task, strong_factory)
        attacked = _run(strong_task, strong_factory, attack=FangAttack(), defense=NoDefense())
        assert attacked.max_accuracy < clean.max_accuracy
        asr = attack_success_rate(clean.max_accuracy, attacked.max_accuracy)
        assert asr > 10.0

    def test_dfa_r_degrades_undefended_training(self, strong_task, strong_factory):
        clean = _run(strong_task, strong_factory)
        attacked = _run(
            strong_task, strong_factory, attack=DfaR(hyper=_hyper(), seed=1), defense=NoDefense()
        )
        assert attacked.max_accuracy <= clean.max_accuracy + 0.05

    def test_dfa_attacks_pass_mkrum_sometimes(self, strong_task, strong_factory):
        attacked = _run(
            strong_task, strong_factory, attack=DfaR(hyper=_hyper(), seed=1), defense=MultiKrum()
        )
        dpr = defense_pass_rate(attacked.records)
        assert dpr is not None and dpr > 0.0


class TestDefenseImpact:
    def test_refd_restores_accuracy_against_dfa_g(self, strong_task, strong_factory):
        clean = _run(strong_task, strong_factory)
        undefended = _run(
            strong_task,
            strong_factory,
            attack=DfaG(hyper=_hyper(), noise_dim=16, base_width=8, seed=2),
            defense=NoDefense(),
        )
        defended = _run(
            strong_task,
            strong_factory,
            attack=DfaG(hyper=_hyper(), noise_dim=16, base_width=8, seed=2),
            defense=Refd(num_rejected=2),
        )
        # REFD should not be worse than leaving the attack completely
        # undefended and should keep the model clearly above chance level
        # (10 classes).  At this very small scale (6 clients per round, 12
        # rounds) the full recovery towards the clean accuracy reported in the
        # paper is only visible at the benchmark scale (see bench_fig9/fig10).
        assert defended.max_accuracy >= undefended.max_accuracy - 0.05
        assert defended.max_accuracy >= 0.3
        assert clean.max_accuracy > defended.max_accuracy - 0.1

    def test_mkrum_limits_fang(self, strong_task, strong_factory):
        undefended = _run(strong_task, strong_factory, attack=FangAttack(), defense=NoDefense())
        defended = _run(strong_task, strong_factory, attack=FangAttack(), defense=MultiKrum())
        assert defended.max_accuracy >= undefended.max_accuracy - 0.05

    def test_bulyan_keeps_model_usable_under_dfa_r(self, strong_task, strong_factory):
        defended = _run(
            strong_task, strong_factory, attack=DfaR(hyper=_hyper(), seed=3), defense=Bulyan()
        )
        assert defended.max_accuracy > 0.2


class TestPipelineConsistency:
    def test_runner_end_to_end_produces_consistent_metrics(self):
        runner = ExperimentRunner()
        result = runner.run(smoke_scale("fashion-mnist", attack="dfa-g", defense="mkrum"))
        assert result.baseline_accuracy is not None
        assert result.asr == pytest.approx(
            (result.baseline_accuracy - result.max_accuracy) / result.baseline_accuracy * 100.0
        )
        assert len(result.accuracies) == result.config.num_rounds

    def test_runner_result_cache_returns_same_object(self):
        runner = ExperimentRunner()
        config = smoke_scale("fashion-mnist", attack="lie", defense="median")
        first = runner.run(config)
        second = runner.run(config)
        assert first is second

    def test_runner_cache_can_be_bypassed(self):
        runner = ExperimentRunner()
        config = smoke_scale("fashion-mnist", attack="lie", defense="median")
        first = runner.run(config)
        second = runner.run(config, use_cache=False)
        assert first is not second
        assert first.max_accuracy == pytest.approx(second.max_accuracy)

    def test_dpr_only_defined_for_selecting_defenses(self):
        runner = ExperimentRunner()
        selecting = runner.run(smoke_scale("fashion-mnist", attack="lie", defense="mkrum"))
        statistical = runner.run(smoke_scale("fashion-mnist", attack="lie", defense="trmean"))
        assert statistical.dpr is None
        assert selecting.dpr is None or 0.0 <= selecting.dpr <= 100.0


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "module_name",
        ["quickstart", "attack_comparison", "refd_defense", "heterogeneity_study"],
    )
    def test_example_module_imports_and_has_main(self, module_name):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "examples" / f"{module_name}.py"
        spec = importlib.util.spec_from_file_location(f"examples_{module_name}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
