"""Tests for classifier architectures, the generator, the filter net and the factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageSpec, make_synthetic_task
from repro.models import (
    CLASSIFIER_REGISTRY,
    MLP,
    CifarCNN,
    FashionCNN,
    FilterNet,
    SmallCNN,
    TCNNGenerator,
    build_classifier,
    build_classifier_for_task,
    build_filter_for_task,
    build_generator_for_task,
    default_architecture_for_dataset,
)
from repro.nn.tensor import Tensor


class TestClassifiers:
    @pytest.mark.parametrize(
        "cls,channels,size",
        [
            (FashionCNN, 1, 28),
            (CifarCNN, 3, 32),
            (SmallCNN, 1, 16),
            (MLP, 1, 16),
        ],
    )
    def test_output_shape(self, cls, channels, size):
        model = cls(in_channels=channels, image_size=size, num_classes=10,
                    rng=np.random.default_rng(0))
        logits = model(Tensor(np.zeros((4, channels, size, size), dtype=np.float32)))
        assert logits.shape == (4, 10)

    def test_fashion_cnn_has_two_convs_one_dense(self):
        model = FashionCNN(rng=np.random.default_rng(0))
        names = [name for name, _ in model.named_parameters()]
        conv_weights = [n for n in names if n.startswith("conv") and n.endswith("weight")]
        fc_weights = [n for n in names if n.startswith("fc") and n.endswith("weight")]
        assert len(conv_weights) == 2 and len(fc_weights) == 1

    def test_cifar_cnn_has_six_convs_two_dense(self):
        model = CifarCNN(rng=np.random.default_rng(0))
        names = [name for name, _ in model.named_parameters()]
        conv_weights = [n for n in names if n.startswith("conv") and n.endswith("weight")]
        fc_weights = [n for n in names if n.startswith("fc") and n.endswith("weight")]
        assert len(conv_weights) == 6 and len(fc_weights) == 2

    def test_non_default_image_size_supported(self):
        model = SmallCNN(in_channels=3, image_size=20, num_classes=7,
                         rng=np.random.default_rng(0))
        logits = model(Tensor(np.zeros((2, 3, 20, 20), dtype=np.float32)))
        assert logits.shape == (2, 7)

    def test_same_seed_gives_same_init(self):
        a = SmallCNN(rng=np.random.default_rng(5))
        b = SmallCNN(rng=np.random.default_rng(5))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_gradients_reach_all_parameters(self):
        model = SmallCNN(in_channels=1, image_size=12, width=4, rng=np.random.default_rng(0))
        out = model(Tensor(np.random.default_rng(0).standard_normal((2, 1, 12, 12)).astype(np.float32)))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestGenerator:
    def test_output_shape_and_range(self):
        gen = TCNNGenerator(noise_dim=16, out_channels=3, image_size=16, base_width=8,
                            rng=np.random.default_rng(0))
        noise = Tensor(gen.sample_noise(5, np.random.default_rng(1)))
        images = gen(noise)
        assert images.shape == (5, 3, 16, 16)
        assert np.all(images.data <= 1.0) and np.all(images.data >= -1.0)

    def test_rejects_image_size_not_divisible_by_four(self):
        with pytest.raises(ValueError):
            TCNNGenerator(image_size=30)

    def test_generator_is_differentiable(self):
        gen = TCNNGenerator(noise_dim=8, out_channels=1, image_size=12, base_width=4,
                            rng=np.random.default_rng(0))
        noise = Tensor(gen.sample_noise(3, np.random.default_rng(1)))
        (gen(noise) ** 2).sum().backward()
        assert all(p.grad is not None for p in gen.parameters())

    def test_sample_noise_shape_and_determinism(self):
        gen = TCNNGenerator(noise_dim=8, out_channels=1, image_size=12, base_width=4)
        a = gen.sample_noise(4, np.random.default_rng(2))
        b = gen.sample_noise(4, np.random.default_rng(2))
        assert a.shape == (4, 8)
        np.testing.assert_array_equal(a, b)


class TestFilterNet:
    @pytest.mark.parametrize("kernel,stride", [(3, 1), (5, 1), (3, 2)])
    def test_output_matches_classifier_input_size(self, kernel, stride):
        net = FilterNet(channels=1, image_size=16, kernel_size=kernel, stride=stride,
                        rng=np.random.default_rng(0))
        dummy = Tensor(net.sample_dummy(4, np.random.default_rng(1)))
        assert net(dummy).shape == (4, 1, 16, 16)

    def test_dummy_shape_follows_conv_arithmetic(self):
        net = FilterNet(channels=3, image_size=12, kernel_size=5, rng=np.random.default_rng(0))
        assert net.dummy_shape() == (3, 16, 16)

    def test_dummy_images_are_in_unit_interval(self):
        net = FilterNet(channels=1, image_size=12, rng=np.random.default_rng(0))
        dummy = net.sample_dummy(10, np.random.default_rng(1))
        assert dummy.min() >= 0.0 and dummy.max() <= 1.0

    def test_filter_is_differentiable(self):
        net = FilterNet(channels=1, image_size=10, rng=np.random.default_rng(0))
        dummy = Tensor(net.sample_dummy(2, np.random.default_rng(1)))
        net(dummy).sum().backward()
        assert all(p.grad is not None for p in net.parameters())


class TestFactory:
    def test_registry_contents(self):
        assert {"fashion-cnn", "cifar-cnn", "small-cnn", "mlp"} <= set(CLASSIFIER_REGISTRY)

    def test_default_architecture_mapping(self):
        assert default_architecture_for_dataset("fashion-mnist") == "fashion-cnn"
        assert default_architecture_for_dataset("cifar-10") == "cifar-cnn"
        assert default_architecture_for_dataset("svhn") == "cifar-cnn"
        assert default_architecture_for_dataset("unknown") == "small-cnn"

    def test_build_classifier_unknown_raises(self):
        with pytest.raises(KeyError):
            build_classifier("resnet", 3, 32, 10)

    def test_build_classifier_seeded_reproducibility(self):
        a = build_classifier("small-cnn", 1, 16, 10, seed=3)
        b = build_classifier("small-cnn", 1, 16, 10, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_build_for_task_matches_shapes(self):
        spec = SyntheticImageSpec(name="t", channels=3, image_size=16)
        task = make_synthetic_task(spec, 40, 20, seed=0)
        model = build_classifier_for_task(task, architecture="small-cnn", seed=0)
        logits = model(Tensor(task.train.images[:2]))
        assert logits.shape == (2, 10)

    def test_build_generator_for_task(self):
        spec = SyntheticImageSpec(name="t", channels=3, image_size=16)
        task = make_synthetic_task(spec, 40, 20, seed=0)
        gen = build_generator_for_task(task, noise_dim=8, base_width=4, seed=0)
        out = gen(Tensor(gen.sample_noise(2, np.random.default_rng(0))))
        assert out.shape == (2, 3, 16, 16)

    def test_build_filter_for_task(self):
        spec = SyntheticImageSpec(name="t", channels=1, image_size=16)
        task = make_synthetic_task(spec, 40, 20, seed=0)
        filter_net = build_filter_for_task(task, kernel_size=3, seed=0)
        dummy = Tensor(filter_net.sample_dummy(2, np.random.default_rng(0)))
        assert filter_net(dummy).shape == (2, 1, 16, 16)
