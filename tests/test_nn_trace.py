"""Tests for the trace-recorded VJP replay engine (:mod:`repro.nn.trace`).

The engine's contract is *bit-identity*: replaying a recorded tape must
produce exactly the floats the eager per-op closure engine produces, for
every model architecture, across seeds, and under every dispatch backend.
These tests pin that contract, the fallback semantics (shape changes,
untraceable ops, the signature cap), the buffer-plan aliasing rules, and
the numerical correctness of the traced VJP kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from helpers import numerical_gradient

from repro import nn
from repro.fl.dispatch_policy import DispatchPolicy
from repro.fl.simulation import FederatedSimulation
from repro.fl.training import train_on_arrays
from repro.fl.types import LocalTrainingConfig
from repro.models.classifiers import (
    MLP,
    CifarCNN,
    FashionCNN,
    GRUClassifier,
    SmallCNN,
)
from repro.models.factory import CLASSIFIER_REGISTRY, ClassifierFactory, build_classifier
from repro.nn import functional as F
from repro.nn import trace
from repro.nn.serialization import get_flat_params
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    """Each test starts from an empty process-wide trace cache."""
    trace.reset_trace_cache()
    yield
    trace.reset_trace_cache()


ARCHITECTURES = ("mlp", "small-cnn", "fashion-cnn", "cifar-cnn", "gru")


def _build_model(name: str, seed: int) -> nn.Module:
    rng = np.random.default_rng(seed)
    if name == "mlp":
        return MLP(in_channels=1, image_size=12, num_classes=10, hidden=16, rng=rng)
    if name == "small-cnn":
        return SmallCNN(in_channels=1, image_size=12, num_classes=10, width=4, rng=rng)
    if name == "fashion-cnn":
        return FashionCNN(in_channels=1, image_size=12, num_classes=10, rng=rng)
    if name == "cifar-cnn":
        return CifarCNN(in_channels=3, image_size=12, num_classes=10, width=4, rng=rng)
    if name == "gru":
        return GRUClassifier(in_channels=1, image_size=12, num_classes=10, hidden=8, rng=rng)
    raise AssertionError(name)


def _train(name: str, mode: str, seed: int):
    """Train a fresh model under one trace mode; returns (losses, flat params)."""
    trace.reset_trace_cache()
    channels = 3 if name == "cifar-cnn" else 1
    model = _build_model(name, seed)
    rng = np.random.default_rng(seed + 100)
    # 40 samples with batch 16 -> batches of 16, 16 and 8: exercises both
    # the full-batch and the tail-batch signature in one run.
    x = rng.normal(size=(40, channels, 12, 12)).astype(np.float32)
    y = rng.integers(0, 10, size=40)
    config = LocalTrainingConfig(
        local_epochs=2, batch_size=16, momentum=0.9, weight_decay=1e-4, trace=mode
    )
    losses = train_on_arrays(model, x, y, config, np.random.default_rng(seed + 1))
    return losses, get_flat_params(model).copy()


class TestEagerReplayBitIdentity:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    @pytest.mark.parametrize("name", ARCHITECTURES)
    def test_replay_matches_eager_bitwise(self, name, seed):
        eager_losses, eager_params = _train(name, "eager", seed)
        replay_losses, replay_params = _train(name, "replay", seed)
        counters = trace.trace_counters()
        assert counters["records"] == 2  # full batch + tail batch
        assert counters["replays"] > 0
        assert counters["fallbacks"] == 0
        assert replay_losses == eager_losses
        assert np.array_equal(eager_params, replay_params)

    def test_record_step_is_an_eager_step(self):
        """The first (recording) step already returns the exact eager loss."""
        model = _build_model("mlp", 3)
        twin = _build_model("mlp", 3)
        rng = np.random.default_rng(9)
        x = rng.normal(size=(8, 1, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, size=8)
        session = trace.session_for(model)
        recorded = session.step(x, y)
        eager_loss = F.cross_entropy(twin(Tensor(x)), y)
        eager_loss.backward()
        assert recorded == float(eager_loss.item())
        for got, want in zip(model.parameters(), twin.parameters()):
            assert np.array_equal(got.grad, want.grad)

    def test_replayed_gradients_bit_equal_eager(self):
        model = _build_model("small-cnn", 4)
        twin = _build_model("small-cnn", 4)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(6, 1, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, size=6)
        session = trace.session_for(model)
        session.step(x, y)  # record
        for param in model.parameters():
            param.zero_grad()
        replayed = session.step(x, y)  # replay
        assert trace.trace_counters()["replays"] == 1
        eager_loss = F.cross_entropy(twin(Tensor(x)), y)
        eager_loss.backward()
        assert replayed == float(eager_loss.item())
        for got, want in zip(model.parameters(), twin.parameters()):
            assert np.array_equal(got.grad, want.grad)


class TestDispatchBackendParity:
    @pytest.mark.parametrize("backend", ("serial", "thread", "process"))
    def test_simulation_replay_matches_eager_serial(self, tiny_task, backend):
        factory = ClassifierFactory(
            architecture="mlp", in_channels=1, image_size=12, num_classes=10, seed=0
        )

        def run(mode, policy):
            trace.reset_trace_cache()
            simulation = FederatedSimulation(
                task=tiny_task,
                model_factory=factory,
                num_clients=6,
                clients_per_round=3,
                malicious_fraction=0.0,
                seed=11,
                policy=policy,
                training_config=LocalTrainingConfig(
                    local_epochs=1, batch_size=16, trace=mode
                ),
            )
            result = simulation.run(2)
            records = [(r.accuracy, r.test_loss) for r in result.records]
            return records, result.final_params.copy()

        eager_records, eager_params = run("eager", DispatchPolicy.serial())
        replay_records, replay_params = run(
            "replay", DispatchPolicy.fixed(backend, workers=2)
        )
        assert replay_records == eager_records
        assert np.array_equal(eager_params, replay_params)


class TestAutoModeResolution:
    def test_fixed_policy_resolves_auto_to_replay(self, tiny_task, mlp_factory):
        simulation = FederatedSimulation(
            task=tiny_task,
            model_factory=mlp_factory,
            num_clients=6,
            clients_per_round=3,
            seed=0,
            training_config=LocalTrainingConfig(local_epochs=2, batch_size=8),
        )
        assert simulation.training_config.trace == "replay"
        train_decisions = [d for d in simulation.dispatch.trace if d.site == "train"]
        assert len(train_decisions) == 1
        assert train_decisions[0].backend == "replay"

    def test_override_pins_train_site_to_eager(self, tiny_task, mlp_factory):
        simulation = FederatedSimulation(
            task=tiny_task,
            model_factory=mlp_factory,
            num_clients=6,
            clients_per_round=3,
            seed=0,
            policy=DispatchPolicy.fixed("serial", overrides={"train": "eager"}),
        )
        assert simulation.training_config.trace == "eager"

    def test_explicit_config_bypasses_the_policy(self, tiny_task, mlp_factory):
        simulation = FederatedSimulation(
            task=tiny_task,
            model_factory=mlp_factory,
            num_clients=6,
            clients_per_round=3,
            seed=0,
            training_config=LocalTrainingConfig(trace="eager"),
        )
        assert simulation.training_config.trace == "eager"
        assert not [d for d in simulation.dispatch.trace if d.site == "train"]

    def test_training_mode_cost_crossover(self):
        policy = DispatchPolicy.adaptive(workers=2)
        # Default reference costs: ~9ms one-off recording overhead against
        # ~0.8ms saved per replayed step -> replay pays off past ~26 steps.
        assert policy.training_mode(1) == "eager"
        assert policy.training_mode(4) == "eager"
        assert policy.training_mode(200) == "replay"
        assert {d.site for d in policy.trace} == {"train"}

    def test_train_site_rejects_executor_api(self):
        policy = DispatchPolicy.serial()
        with pytest.raises(ValueError, match="training_mode"):
            policy.decide("train", items=4)
        with pytest.raises(ValueError, match="train"):
            DispatchPolicy.fixed("serial", overrides={"train": "thread"})

    def test_parse_accepts_train_override(self):
        policy = DispatchPolicy.parse("adaptive:2,train=eager")
        assert policy.training_mode(1000) == "eager"

    def test_config_validates_trace_value(self):
        with pytest.raises(ValueError, match="trace"):
            LocalTrainingConfig(trace="magic")


class TestFallbacks:
    def test_shape_change_records_a_new_signature(self):
        model = _build_model("mlp", 0)
        session = trace.session_for(model)
        rng = np.random.default_rng(0)
        x_full = rng.normal(size=(16, 1, 12, 12)).astype(np.float32)
        y_full = rng.integers(0, 10, size=16)
        x_tail = x_full[:5]
        y_tail = y_full[:5]
        assert session.step(x_full, y_full) is not None
        assert session.step(x_tail, y_tail) is not None
        assert trace.trace_counters() == {"records": 2, "replays": 0, "fallbacks": 0}
        assert session.step(x_full, y_full) is not None
        assert session.step(x_tail, y_tail) is not None
        assert trace.trace_counters()["replays"] == 2

    def test_signature_cap_pins_new_shapes_to_eager(self, monkeypatch):
        monkeypatch.setattr(trace, "MAX_SIGNATURES_PER_MODEL", 1)
        model = _build_model("mlp", 0)
        session = trace.session_for(model)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 1, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, size=16)
        assert session.step(x, y) is not None
        assert session.step(x[:7], y[:7]) is None  # cap hit: go eager
        assert session.fallback_reason(x[:7], y[:7]) == "signature cap reached"
        assert trace.trace_counters()["fallbacks"] == 1

    def test_untraced_op_poisons_the_signature(self):
        class Divides(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(4, 3, rng=np.random.default_rng(0))
                self.trace_signature = ("test-divides",)

            def forward(self, x):
                return self.fc(x) / 2.0  # __truediv__ has no trace descriptor

        model = Divides()
        session = trace.session_for(model)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=5)
        first = session.step(x, y)
        assert first is not None  # the recording step still ran eagerly
        assert session.step(x, y) is None  # poisoned: callers go eager
        assert "descriptor" in session.fallback_reason(x, y)
        assert trace.trace_counters()["fallbacks"] == 1

    def test_dropout_training_mode_falls_back(self):
        class WithDropout(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(4, 3, rng=np.random.default_rng(0))
                self.drop = nn.Dropout(0.5, rng=np.random.default_rng(1))
                self.trace_signature = ("test-dropout",)

            def forward(self, x):
                return self.drop(self.fc(x))

        model = WithDropout()
        model.train()
        session = trace.session_for(model)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=5)
        assert session.step(x, y) is not None
        assert session.step(x, y) is None
        assert "Dropout" in session.fallback_reason(x, y)

    def test_models_without_signature_stay_eager(self):
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))
        assert trace.session_for(model) is None

    def test_extra_loss_disables_the_session(self):
        model = _build_model("mlp", 0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 1, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, size=12)
        config = LocalTrainingConfig(local_epochs=1, batch_size=6, trace="replay")
        train_on_arrays(
            model,
            x,
            y,
            config,
            np.random.default_rng(1),
            extra_loss=lambda m: (m.fc1.weight * m.fc1.weight).sum() * 1e-4,
        )
        assert trace.trace_counters() == {"records": 0, "replays": 0, "fallbacks": 0}


class _TwoConv(nn.Module):
    """Two convolutions with identical geometry (the aliasing fixture)."""

    def __init__(self, freeze_second: bool = False) -> None:
        super().__init__()
        rng = np.random.default_rng(0)
        self.conv1 = nn.Conv2d(2, 2, kernel_size=3, stride=1, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(2, 2, kernel_size=3, stride=1, padding=1, rng=rng)
        self.fc = nn.Linear(2 * 6 * 6, 3, rng=rng)
        if freeze_second:
            self.conv2.weight.requires_grad = False
            if self.conv2.bias is not None:
                self.conv2.bias.requires_grad = False
        self.trace_signature = ("test-two-conv", freeze_second)

    def forward(self, x):
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        return self.fc(x.flatten_batch())


def _conv_plan(model):
    session = trace.session_for(model)
    rng = np.random.default_rng(2)
    x = rng.normal(size=(4, 2, 6, 6)).astype(np.float32)
    y = rng.integers(0, 3, size=4)
    assert session.step(x, y) is not None
    plan = session.plan_for(x, y)
    assert plan is not None
    conv_nodes = [
        i for i, node in enumerate(plan.trace.nodes) if node.op == "conv2d"
    ]
    assert len(conv_nodes) == 2
    return plan, conv_nodes


class TestBufferPlanAliasing:
    def test_same_geometry_convs_own_distinct_cols_buffers(self):
        """The eager bug class this engine fixes: the im2col buffer must be
        plan state keyed by node, never shared between ops of equal shape."""
        plan, conv_nodes = _conv_plan(_TwoConv())
        cols = [plan.saved[(i, "cols")] for i in conv_nodes]
        assert cols[0].shape == cols[1].shape
        assert cols[0] is not cols[1]

    def test_grad_cols_is_separate_when_weight_needs_grad(self):
        plan, conv_nodes = _conv_plan(_TwoConv())
        first, second = conv_nodes
        # The first conv reads the (gradient-free) input, so it never
        # produces a data gradient and allocates no grad_cols at all.
        assert (first, "grad_cols") not in plan.saved
        # The second conv needs both gradients: grad_w reads cols after
        # grad_cols is written, so the two must not share storage.
        assert plan.saved[(second, "grad_cols")] is not plan.saved[(second, "cols")]

    def test_grad_cols_aliases_cols_when_weight_grad_unneeded(self):
        """With no weight gradient the saved activations are dead by the
        time the data gradient forms, so the plan declares the alias —
        the same liveness rule the eager engine applies dynamically."""
        plan, conv_nodes = _conv_plan(_TwoConv(freeze_second=True))
        # conv2's weight is frozen but its input still needs a gradient:
        # cols is dead once the weight gradient is skipped, so grad_cols
        # reuses its storage.
        second = conv_nodes[1]
        assert plan.saved[(second, "grad_cols")] is plan.saved[(second, "cols")]

    def test_replay_buffers_are_stable_across_steps(self):
        model = _build_model("small-cnn", 0)
        session = trace.session_for(model)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(6, 1, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, size=6)
        session.step(x, y)
        plan = session.plan_for(x, y)
        before = {key: id(buf) for key, buf in plan.saved.items()}
        grads_before = {slot: id(buf) for slot, buf in plan.grads.items()}
        session.step(x, y)
        session.step(x, y)
        assert plan.steps_replayed == 2
        assert {key: id(buf) for key, buf in plan.saved.items()} == before
        assert {slot: id(buf) for slot, buf in plan.grads.items()} == grads_before


class _OpsSoup(nn.Module):
    """Float64 model exercising the element-wise traced VJP kernels."""

    def __init__(self) -> None:
        super().__init__()
        rng = np.random.default_rng(12)
        self.w = nn.Parameter(rng.normal(size=(5, 7)) * 0.4)
        self.b = nn.Parameter(rng.normal(size=(7,)) * 0.1)
        self.v = nn.Parameter(rng.normal(size=(7, 4)) * 0.4)
        self.trace_signature = ("test-ops-soup",)

    def forward(self, x):
        h = (x @ self.w + self.b).tanh()
        h = h * h.sigmoid()
        h = ((h - 0.25).exp() + 1.0).log()
        h = h.reshape(h.shape[0], 7)
        return h @ self.v


class TestTracedOpGradients:
    def _replayed_grads(self, model, x, y):
        session = trace.session_for(model)
        assert session.step(x, y) is not None  # record
        for param in model.parameters():
            param.zero_grad()
        assert session.step(x, y) is not None  # replay
        assert trace.trace_counters()["replays"] == 1
        return [param.grad.copy() for param in model.parameters()]

    def test_elementwise_soup_matches_numerical_gradient(self):
        model = _OpsSoup()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(6, 5))
        y = rng.integers(0, 4, size=6)
        grads = self._replayed_grads(model, x, y)

        def value():
            return float(F.cross_entropy(model(Tensor(x)), y).item())

        for param, grad in zip(model.parameters(), grads):
            numeric = numerical_gradient(value, param.data)
            np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_conv2d_replay_matches_numerical_gradient(self):
        class TinyConv(nn.Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.conv = nn.Conv2d(1, 2, kernel_size=3, stride=2, padding=1, rng=rng)
                self.fc = nn.Linear(2 * 3 * 3, 3, rng=rng)
                self.trace_signature = ("test-tiny-conv",)

            def forward(self, x):
                return self.fc(self.conv(x).relu().flatten_batch())

        model = TinyConv()
        for param in model.parameters():
            param.data = param.data.astype(np.float64)
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 1, 6, 6))
        y = rng.integers(0, 3, size=3)
        grads = self._replayed_grads(model, x, y)

        def value():
            return float(F.cross_entropy(model(Tensor(x)), y).item())

        for param, grad in zip(model.parameters(), grads):
            numeric = numerical_gradient(value, param.data)
            np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_gru_classifier_replay_matches_numerical_gradient(self):
        """Golden gradients for the recurrent path: the GRU tape (matmul,
        sigmoid/tanh gates, slicing, state reuse) replayed against central
        differences in float64."""
        model = GRUClassifier(
            in_channels=1,
            image_size=5,
            num_classes=3,
            hidden=4,
            rng=np.random.default_rng(0),
        )
        for param in model.parameters():
            param.data = param.data.astype(np.float64)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(3, 1, 5, 5))
        y = rng.integers(0, 3, size=3)
        grads = self._replayed_grads(model, x, y)
        assert any(np.abs(grad).max() > 0 for grad in grads)

        def value():
            return float(F.cross_entropy(model(Tensor(x)), y).item())

        for param, grad in zip(model.parameters(), grads):
            numeric = numerical_gradient(value, param.data)
            np.testing.assert_allclose(grad, numeric, atol=1e-6)


class TestModelFactoryIntegration:
    def test_gru_is_registered(self):
        assert "gru" in CLASSIFIER_REGISTRY
        model = build_classifier("gru", in_channels=1, image_size=12, num_classes=10, seed=0)
        logits = model(Tensor(np.zeros((2, 1, 12, 12), dtype=np.float32)))
        assert logits.shape == (2, 10)

    def test_factory_exposes_trace_signature(self):
        factory = ClassifierFactory(
            architecture="fashion-cnn",
            in_channels=1,
            image_size=12,
            num_classes=10,
            seed=0,
        )
        assert factory.trace_signature == ("fashion-cnn", 1, 12, 10)
        assert factory.trace_signature == factory().trace_signature

    @pytest.mark.parametrize("name", ARCHITECTURES)
    def test_every_architecture_declares_a_signature(self, name):
        model = _build_model(name, 0)
        assert trace.session_for(model) is not None
