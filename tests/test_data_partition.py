"""Tests for the client data partitioners (i.i.d., Dirichlet, label skew)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.data.partition import (
    DirichletPartitioner,
    IidPartitioner,
    LabelSkewPartitioner,
    partition_dataset,
)


def _dataset(n: int = 200, classes: int = 10) -> ArrayDataset:
    rng = np.random.default_rng(0)
    images = rng.standard_normal((n, 1, 8, 8)).astype(np.float32)
    labels = np.arange(n) % classes
    return ArrayDataset(images, labels)


def _coverage(shards) -> np.ndarray:
    return np.sort(np.concatenate([shard.indices for shard in shards]))


class TestIidPartitioner:
    def test_covers_all_samples_exactly_once(self, rng):
        ds = _dataset(101)
        shards = IidPartitioner().split(ds, 7, rng)
        np.testing.assert_array_equal(_coverage(shards), np.arange(101))

    def test_shard_sizes_are_balanced(self, rng):
        shards = IidPartitioner().split(_dataset(100), 10, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_label_distribution_roughly_uniform(self, rng):
        shards = IidPartitioner().split(_dataset(1000), 10, rng)
        for shard in shards:
            counts = shard.class_counts(10)
            assert counts.min() >= 3  # each class present in every shard

    def test_invalid_client_count(self, rng):
        with pytest.raises(ValueError):
            IidPartitioner().split(_dataset(10), 0, rng)


class TestDirichletPartitioner:
    def test_covers_all_samples_exactly_once(self, rng):
        ds = _dataset(300)
        shards = DirichletPartitioner(beta=0.5).split(ds, 10, rng)
        np.testing.assert_array_equal(_coverage(shards), np.arange(300))

    def test_rejects_nonpositive_beta(self):
        with pytest.raises(ValueError):
            DirichletPartitioner(beta=0.0)

    def test_min_samples_respected(self, rng):
        ds = _dataset(300)
        shards = DirichletPartitioner(beta=0.1, min_samples_per_client=2).split(ds, 10, rng)
        assert min(len(s) for s in shards) >= 2

    def test_low_beta_is_more_heterogeneous_than_high_beta(self):
        ds = _dataset(2000)

        def heterogeneity(beta: float) -> float:
            shards = DirichletPartitioner(beta=beta).split(
                ds, 10, np.random.default_rng(42)
            )
            # Mean per-shard std of class proportions: higher = more skewed.
            values = []
            for shard in shards:
                proportions = shard.class_counts(10) / max(len(shard), 1)
                values.append(proportions.std())
            return float(np.mean(values))

        assert heterogeneity(0.1) > heterogeneity(10.0)

    def test_deterministic_given_rng_seed(self):
        ds = _dataset(200)
        a = DirichletPartitioner(beta=0.5).split(ds, 5, np.random.default_rng(7))
        b = DirichletPartitioner(beta=0.5).split(ds, 5, np.random.default_rng(7))
        for shard_a, shard_b in zip(a, b):
            np.testing.assert_array_equal(shard_a.indices, shard_b.indices)

    def test_number_of_shards(self, rng):
        shards = DirichletPartitioner(beta=0.5).split(_dataset(100), 13, rng)
        assert len(shards) == 13


class TestLabelSkewPartitioner:
    def test_clients_hold_limited_classes(self, rng):
        ds = _dataset(500)
        shards = LabelSkewPartitioner(classes_per_client=2).split(ds, 10, rng)
        for shard in shards:
            present = (shard.class_counts(10) > 0).sum()
            assert present <= 2

    def test_invalid_classes_per_client(self):
        with pytest.raises(ValueError):
            LabelSkewPartitioner(classes_per_client=0)

    def test_indices_are_unique_across_clients(self, rng):
        ds = _dataset(500)
        shards = LabelSkewPartitioner(classes_per_client=3).split(ds, 8, rng)
        combined = _coverage(shards)
        assert len(combined) == len(set(combined.tolist()))


class TestPartitionDataset:
    def test_beta_none_gives_iid_balanced_shards(self, rng):
        shards = partition_dataset(_dataset(100), 10, beta=None, rng=rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_finite_beta_gives_dirichlet(self, rng):
        shards = partition_dataset(_dataset(200), 10, beta=0.2, rng=rng)
        assert len(shards) == 10
        np.testing.assert_array_equal(_coverage(shards), np.arange(200))

    def test_default_rng_is_created(self):
        shards = partition_dataset(_dataset(50), 5, beta=0.5)
        assert len(shards) == 5
