"""Tests for the pluggable client executor: determinism and API contract."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.experiments import build_simulation, smoke_scale
from repro.fl.executor import (
    ParallelExecutor,
    SerialExecutor,
    SharedParamsLease,
    SharedParamsRef,
    ThreadedExecutor,
    build_executor,
    run_client_task,
)
from repro.fl.simulation import FederatedSimulation
from repro.fl.types import LocalTrainingConfig
from repro.models import ClassifierFactory


def _records_signature(result):
    """Everything a round record contributes to the paper's metrics."""
    return [
        (
            record.round_number,
            tuple(record.selected_client_ids),
            tuple(record.selected_malicious_ids),
            None
            if record.accepted_client_ids is None
            else tuple(record.accepted_client_ids),
            record.accuracy,
            record.test_loss,
            record.num_malicious_passed,
        )
        for record in result.records
    ]


def _run_with(executor, num_rounds=2):
    config = smoke_scale(attack="lie", defense="mkrum", num_rounds=num_rounds)
    with build_simulation(config, executor=executor) as simulation:
        return simulation.run(num_rounds)


class TestBuildExecutor:
    def test_none_gives_serial(self):
        assert isinstance(build_executor(None), SerialExecutor)

    def test_names_resolve(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        assert isinstance(build_executor("thread", workers=2), ThreadedExecutor)
        assert isinstance(build_executor("process", workers=2), ParallelExecutor)

    def test_instance_passthrough(self):
        executor = ThreadedExecutor(workers=1)
        assert build_executor(executor) is executor

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_executor("gpu-cluster")


class TestTaskPayload:
    def test_task_is_picklable(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        task = client.make_task(simulation.server.distribute(), round_number=0)
        restored = pickle.loads(pickle.dumps(task))
        assert restored.client_id == task.client_id
        np.testing.assert_array_equal(restored.global_params, task.global_params)

    def test_run_client_task_advances_rng_state(self):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        params = simulation.server.distribute()
        before = client.make_task(params, 0).rng_state
        result = run_client_task(client.make_task(params, 0))
        assert result.rng_state != before
        client.consume_result(result)
        assert client.make_task(params, 1).rng_state == result.rng_state

    def test_consume_result_rejects_foreign_client(self):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        clients = list(simulation.benign_clients.values())
        params = simulation.server.distribute()
        result = run_client_task(clients[0].make_task(params, 0))
        with pytest.raises(ValueError):
            clients[1].consume_result(result)


class TestSharedMemoryBroadcast:
    """The per-round shared-memory parameter publication."""

    def test_lease_roundtrips_vector(self):
        vector = np.arange(64, dtype=np.float32)
        lease = SharedParamsLease(vector)
        try:
            from repro.fl.executor import _attach_shared_params

            view = _attach_shared_params(lease.ref)
            np.testing.assert_array_equal(view, vector)
            assert not view.flags.writeable
        finally:
            lease.release()

    def test_lease_ref_is_picklable(self):
        lease = SharedParamsLease(np.ones(8, dtype=np.float32))
        try:
            restored = pickle.loads(pickle.dumps(lease.ref))
            assert restored == lease.ref
        finally:
            lease.release()

    def test_release_is_idempotent(self):
        lease = SharedParamsLease(np.ones(4, dtype=np.float32))
        lease.release()
        lease.release()

    def test_task_resolution_prefers_inline_params(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        task = client.make_task(simulation.server.distribute(), round_number=0)
        np.testing.assert_array_equal(task.resolve_global_params(), task.global_params)

    def test_task_without_params_or_ref_raises(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        task = client.make_task(simulation.server.distribute(), round_number=0)
        task.global_params = None
        with pytest.raises(ValueError):
            task.resolve_global_params()

    def test_broadcast_vector_requires_shared_object(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        clients = list(simulation.benign_clients.values())[:2]
        params = simulation.server.distribute()
        tasks = [client.make_task(params, 0) for client in clients]
        executor = ParallelExecutor(workers=1)
        assert executor._broadcast_vector(tasks) is params
        tasks[1].global_params = params.copy()  # equal values, different object
        assert executor._broadcast_vector(tasks) is None
        assert ParallelExecutor(workers=1, use_shared_memory=False)._broadcast_vector(tasks) is None


class TestDeterminism:
    """Same seed ⇒ bit-identical records and parameters across backends."""

    def test_serial_twice_is_identical(self):
        first, second = _run_with(None), _run_with(None)
        assert _records_signature(first) == _records_signature(second)
        np.testing.assert_array_equal(first.final_params, second.final_params)

    def test_threaded_matches_serial(self):
        serial = _run_with(None)
        threaded = _run_with(ThreadedExecutor(workers=3))
        assert _records_signature(serial) == _records_signature(threaded)
        np.testing.assert_array_equal(serial.final_params, threaded.final_params)

    @pytest.mark.slow
    def test_process_pool_matches_serial_via_shared_memory(self):
        serial = _run_with(None)
        executor = ParallelExecutor(workers=4)
        parallel = _run_with(executor)
        assert executor.shm_rounds > 0  # the shm fast path actually ran
        assert _records_signature(serial) == _records_signature(parallel)
        np.testing.assert_array_equal(serial.final_params, parallel.final_params)

    @pytest.mark.slow
    def test_process_pool_matches_serial_with_inline_params(self):
        serial = _run_with(None)
        executor = ParallelExecutor(workers=4, use_shared_memory=False)
        parallel = _run_with(executor)
        assert executor.shm_rounds == 0
        assert _records_signature(serial) == _records_signature(parallel)
        np.testing.assert_array_equal(serial.final_params, parallel.final_params)


class TestSimulationWiring:
    def test_executor_name_accepted_by_simulation(self, tiny_task):
        factory = ClassifierFactory(
            architecture="mlp", in_channels=1, image_size=12, num_classes=10, seed=0
        )
        simulation = FederatedSimulation(
            task=tiny_task,
            model_factory=factory,
            num_clients=6,
            clients_per_round=3,
            malicious_fraction=0.0,
            training_config=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.1),
            executor="thread",
            workers=2,
        )
        assert isinstance(simulation.executor, ThreadedExecutor)
        result = simulation.run(1)
        simulation.close()
        assert len(result.records) == 1

    def test_classifier_factory_builds_identical_models(self, tiny_task):
        factory = ClassifierFactory.for_task(tiny_task, architecture="mlp", seed=3)
        from repro.nn.serialization import get_flat_params

        np.testing.assert_array_equal(
            get_flat_params(factory()), get_flat_params(factory())
        )
        restored = pickle.loads(pickle.dumps(factory))
        np.testing.assert_array_equal(
            get_flat_params(factory()), get_flat_params(restored())
        )
