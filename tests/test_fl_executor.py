"""Tests for the pluggable client executor: determinism and API contract."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.experiments import build_simulation, smoke_scale
from repro.fl.executor import (
    FanoutCall,
    ParallelExecutor,
    SerialExecutor,
    ShardRef,
    SharedArrayRef,
    SharedArrayStore,
    SharedParamsLease,
    SharedParamsRef,
    ThreadedExecutor,
    build_executor,
    register_fanout_fn,
    resolve_fanout_fn,
    resolve_shared_array,
    run_client_task,
    run_fanout_call,
)
from repro.fl.simulation import FederatedSimulation
from repro.fl.types import LocalTrainingConfig
from repro.models import ClassifierFactory


def _records_signature(result):
    """Everything a round record contributes to the paper's metrics."""
    return [
        (
            record.round_number,
            tuple(record.selected_client_ids),
            tuple(record.selected_malicious_ids),
            None
            if record.accepted_client_ids is None
            else tuple(record.accepted_client_ids),
            record.accuracy,
            record.test_loss,
            record.num_malicious_passed,
        )
        for record in result.records
    ]


def _run_with(executor, num_rounds=2):
    config = smoke_scale(attack="lie", defense="mkrum", num_rounds=num_rounds)
    with build_simulation(config, executor=executor) as simulation:
        return simulation.run(num_rounds)


class TestBuildExecutor:
    def test_none_gives_serial(self):
        assert isinstance(build_executor(None), SerialExecutor)

    def test_names_resolve(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        assert isinstance(build_executor("thread", workers=2), ThreadedExecutor)
        assert isinstance(build_executor("process", workers=2), ParallelExecutor)

    def test_instance_passthrough(self):
        executor = ThreadedExecutor(workers=1)
        assert build_executor(executor) is executor

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_executor("gpu-cluster")


class TestTaskPayload:
    def test_task_is_picklable(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        task = client.make_task(simulation.server.distribute(), round_number=0)
        restored = pickle.loads(pickle.dumps(task))
        assert restored.client_id == task.client_id
        np.testing.assert_array_equal(restored.global_params, task.global_params)

    def test_run_client_task_advances_rng_state(self):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        params = simulation.server.distribute()
        before = client.make_task(params, 0).rng_state
        result = run_client_task(client.make_task(params, 0))
        assert result.rng_state != before
        client.consume_result(result)
        assert client.make_task(params, 1).rng_state == result.rng_state

    def test_consume_result_rejects_foreign_client(self):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        clients = list(simulation.benign_clients.values())
        params = simulation.server.distribute()
        result = run_client_task(clients[0].make_task(params, 0))
        with pytest.raises(ValueError):
            clients[1].consume_result(result)


class TestSharedMemoryBroadcast:
    """The per-round shared-memory parameter publication."""

    def test_lease_roundtrips_vector(self):
        vector = np.arange(64, dtype=np.float32)
        lease = SharedParamsLease(vector)
        try:
            from repro.fl.executor import _attach_shared_params

            view = _attach_shared_params(lease.ref)
            np.testing.assert_array_equal(view, vector)
            assert not view.flags.writeable
        finally:
            lease.release()

    def test_lease_ref_is_picklable(self):
        lease = SharedParamsLease(np.ones(8, dtype=np.float32))
        try:
            restored = pickle.loads(pickle.dumps(lease.ref))
            assert restored == lease.ref
        finally:
            lease.release()

    def test_release_is_idempotent(self):
        # repro: allow[SHM001] release idempotence is the behavior under test
        lease = SharedParamsLease(np.ones(4, dtype=np.float32))
        lease.release()
        lease.release()

    def test_task_resolution_prefers_inline_params(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        task = client.make_task(simulation.server.distribute(), round_number=0)
        np.testing.assert_array_equal(task.resolve_global_params(), task.global_params)

    def test_task_without_params_or_ref_raises(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        client = next(iter(simulation.benign_clients.values()))
        task = client.make_task(simulation.server.distribute(), round_number=0)
        task.global_params = None
        with pytest.raises(ValueError):
            task.resolve_global_params()

    def test_broadcast_vector_recognises_equal_vectors(self, tiny_task):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        clients = list(simulation.benign_clients.values())[:2]
        params = simulation.server.distribute()
        tasks = [client.make_task(params, 0) for client in clients]
        executor = ParallelExecutor(workers=1)
        assert executor._broadcast_vector(tasks) is params
        # An equal-valued copy must not silently disable the shm fast path ...
        tasks[1].global_params = params.copy()
        assert executor._broadcast_vector(tasks) is params
        # ... nor must a view into the same buffer ...
        tasks[1].global_params = params[:]
        assert executor._broadcast_vector(tasks) is params
        # ... but genuinely different vectors cannot be broadcast,
        different = params.copy()
        different[0] += 1.0
        tasks[1].global_params = different
        assert executor._broadcast_vector(tasks) is None
        # and opting out of shared memory always wins.
        tasks[1].global_params = params
        assert ParallelExecutor(workers=1, use_shared_memory=False)._broadcast_vector(tasks) is None


class TestSharedArrayStore:
    """The once-per-simulation multi-array shard store."""

    def test_roundtrips_named_arrays(self):
        rng = np.random.default_rng(0)
        arrays = {
            "a/images": rng.standard_normal((5, 1, 4, 4)).astype(np.float32),
            "a/labels": rng.integers(0, 10, size=5).astype(np.int64),
            "b/images": rng.standard_normal((3, 1, 4, 4)).astype(np.float32),
        }
        with SharedArrayStore(arrays) as store:
            assert set(store.refs) == set(arrays)
            for name, array in arrays.items():
                view = resolve_shared_array(store.refs[name])
                np.testing.assert_array_equal(view, array)
                assert view.dtype == array.dtype
                assert not view.flags.writeable

    def test_refs_are_picklable(self):
        with SharedArrayStore({"x": np.arange(6).reshape(2, 3)}) as store:
            restored = pickle.loads(pickle.dumps(store.refs["x"]))
            assert restored == store.refs["x"]
            np.testing.assert_array_equal(
                resolve_shared_array(restored), np.arange(6).reshape(2, 3)
            )

    def test_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        # repro: allow[SHM001] explicit close/unlink is the behavior under test
        store = SharedArrayStore({"x": np.ones(4, dtype=np.float32)})
        name = store.name
        store.close()
        store.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_del_safety_net_unlinks_segment(self):
        from multiprocessing import shared_memory

        # repro: allow[SHM001] the __del__ safety net is the behavior under test
        store = SharedArrayStore({"x": np.ones(4, dtype=np.float32)})
        name = store.name
        del store
        import gc

        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_lease_is_context_manager(self):
        from multiprocessing import shared_memory

        from repro.fl.executor import _attach_shared_params

        vector = np.arange(16, dtype=np.float32)
        with SharedParamsLease(vector) as lease:
            name = lease.ref.name
            np.testing.assert_array_equal(_attach_shared_params(lease.ref), vector)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_shard_ref_resolves_both_arrays(self):
        images = np.full((2, 1, 3, 3), 7.0, dtype=np.float32)
        labels = np.array([1, 2], dtype=np.int64)
        with SharedArrayStore({"i": images, "l": labels}) as store:
            ref = ShardRef(images=store.refs["i"], labels=store.refs["l"])
            got_images, got_labels = ref.resolve()
            np.testing.assert_array_equal(got_images, images)
            np.testing.assert_array_equal(got_labels, labels)

    def test_persistent_ref_survives_param_round_attaches(self):
        """Per-round param segments must not evict the shard store mapping."""
        images = np.arange(8, dtype=np.float32)
        with SharedArrayStore({"i": images}, persistent=True) as store:
            first = resolve_shared_array(store.refs["i"])
            for _ in range(3):  # three "rounds" of parameter leases
                with SharedParamsLease(np.ones(4, dtype=np.float32)) as lease:
                    from repro.fl.executor import _attach_shared_params

                    _attach_shared_params(lease.ref)
            again = resolve_shared_array(store.refs["i"])
            np.testing.assert_array_equal(again, images)
            assert np.shares_memory(first, again)


def _fanout_square(x):
    return x * x


register_fanout_fn("tests.test_fl_executor:square", _fanout_square)


class TestFanoutRegistry:
    """The named-work registry behind ParallelExecutor.map_fn."""

    def test_resolve_returns_registered_fn(self):
        assert resolve_fanout_fn("tests.test_fl_executor:square") is _fanout_square

    def test_reregistering_same_fn_is_noop(self):
        # repro: allow[FO002] re-registration semantics are the behavior under test
        register_fanout_fn("tests.test_fl_executor:square", _fanout_square)

    def test_conflicting_registration_raises(self):
        with pytest.raises(ValueError):
            # repro: allow[FO001,FO002] negative-path fixture: the conflict must raise
            register_fanout_fn("tests.test_fl_executor:square", lambda x: x)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_fanout_fn("tests.test_fl_executor:no-such-fn")

    def test_import_on_demand_resolution(self):
        # The module:label convention lets a fresh process resolve names by
        # importing the module; refd's worker fn registers itself on import.
        assert resolve_fanout_fn("repro.defenses.refd:evaluate_update") is not None

    def test_fanout_call_roundtrips_through_pickle(self):
        call = FanoutCall(name="tests.test_fl_executor:square", payload=7)
        assert run_fanout_call(pickle.loads(pickle.dumps(call))) == 49

    def test_serial_and_thread_map_fn_accept_names(self):
        assert SerialExecutor().map_fn("tests.test_fl_executor:square", [1, 2, 3]) == [1, 4, 9]
        with ThreadedExecutor(workers=2) as executor:
            assert executor.map_fn("tests.test_fl_executor:square", [1, 2, 3]) == [1, 4, 9]

    def test_process_map_fn_runs_registered_names_on_the_pool(self):
        with ParallelExecutor(workers=2) as executor:
            assert executor.supports_generic_fanout
            assert executor.map_fn("tests.test_fl_executor:square", list(range(6))) == [
                x * x for x in range(6)
            ]
            assert executor.fanout_calls == 6

    def test_process_map_fn_falls_back_to_serial_for_closures(self):
        captured = 3
        with ParallelExecutor(workers=2) as executor:
            assert executor.map_fn(lambda x: x + captured, [1, 2]) == [4, 5]
            assert executor.fanout_calls == 0

    def test_process_map_fn_unknown_name_fails_fast(self):
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(KeyError):
                executor.map_fn("tests.test_fl_executor:no-such-fn", [1])


class TestPublishArrays:
    """Per-call array publication for by-reference fan-out payloads."""

    def test_serial_and_thread_publish_nothing(self):
        arrays = {"m": np.ones((2, 3), dtype=np.float32)}
        assert SerialExecutor().publish_arrays(arrays) is None
        with ThreadedExecutor(workers=1) as executor:
            assert executor.publish_arrays(arrays) is None

    def test_process_publishes_and_counts(self):
        matrix = np.arange(12, dtype=np.float64).reshape(3, 4)
        executor = ParallelExecutor(workers=1)
        store = executor.publish_arrays({"matrix": matrix})
        try:
            assert store is not None
            assert executor.published_stores == 1
            np.testing.assert_array_equal(
                resolve_shared_array(store.refs["matrix"]), matrix
            )
            assert not store.refs["matrix"].persistent
        finally:
            store.close()
            executor.close()

    def test_shared_memory_opt_out_publishes_nothing(self):
        executor = ParallelExecutor(workers=1, use_shared_memory=False)
        assert executor.publish_arrays({"m": np.ones(4)}) is None
        assert executor.published_stores == 0


class TestShardStoreWiring:
    """The simulation publishes shards once and tasks reference them."""

    def _process_simulation(self, **overrides):
        config = smoke_scale(num_rounds=1, **overrides)
        return build_simulation(config, executor=ParallelExecutor(workers=2))

    def test_process_tasks_carry_shard_refs_not_arrays(self):
        simulation = self._process_simulation()
        try:
            for client in simulation.benign_clients.values():
                assert client.shard_ref is not None
                task = client.make_task(simulation.server.distribute(), 0)
                assert task.images is None and task.labels is None
                assert task.shard_ref is not None
                images, labels = task.resolve_arrays()
                expected_images, expected_labels = client.dataset.arrays()
                np.testing.assert_array_equal(images, expected_images)
                np.testing.assert_array_equal(labels, expected_labels)
        finally:
            simulation.close()

    def test_process_task_pickle_contains_no_shard_arrays(self):
        """Acceptance: the dispatched payload ships refs, not image tensors."""
        import dataclasses

        simulation = self._process_simulation()
        try:
            client = next(iter(simulation.benign_clients.values()))
            params = simulation.server.distribute()
            task = client.make_task(params, 0)
            with SharedParamsLease(params) as lease:
                dispatched = dataclasses.replace(
                    task, global_params=None, params_ref=lease.ref
                )
                dispatched_bytes = len(pickle.dumps(dispatched))
            client.shard_ref = None
            inline = client.make_task(params, 0)
            inline_bytes = len(pickle.dumps(inline))
            shard_nbytes = sum(a.nbytes for a in client.dataset.arrays())
            # The dispatched task must be smaller than the arrays it no
            # longer carries, and orders of magnitude below the inline task.
            assert dispatched_bytes < 4096
            assert dispatched_bytes < shard_nbytes
            assert inline_bytes > dispatched_bytes + shard_nbytes // 2
        finally:
            simulation.close()

    def test_serial_simulation_keeps_inline_arrays(self):
        config = smoke_scale(num_rounds=1)
        simulation = build_simulation(config)
        try:
            client = next(iter(simulation.benign_clients.values()))
            assert client.shard_ref is None
            task = client.make_task(simulation.server.distribute(), 0)
            assert task.images is not None and task.shard_ref is None
        finally:
            simulation.close()

    def test_shared_memory_opt_out_keeps_inline_arrays(self):
        config = smoke_scale(num_rounds=1)
        executor = ParallelExecutor(workers=2, use_shared_memory=False)
        simulation = build_simulation(config, executor=executor)
        try:
            assert not executor.supports_shard_store
            client = next(iter(simulation.benign_clients.values()))
            assert client.shard_ref is None
        finally:
            simulation.close()

    def test_close_unlinks_shard_store(self):
        from multiprocessing import shared_memory

        simulation = self._process_simulation()
        name = simulation._shard_store.name
        simulation.close()
        assert simulation._shard_store is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_reference_arrays_published_for_refd(self):
        simulation = self._process_simulation(attack="lie", defense="refd")
        try:
            ref = simulation.server.reference_ref
            assert ref is not None
            images, labels = ref.resolve()
            expected_images, expected_labels = simulation.server.reference_dataset.arrays()
            np.testing.assert_array_equal(images, expected_images)
            np.testing.assert_array_equal(labels, expected_labels)
        finally:
            simulation.close()


class TestDeterminism:
    """Same seed ⇒ bit-identical records and parameters across backends."""

    def test_serial_twice_is_identical(self):
        first, second = _run_with(None), _run_with(None)
        assert _records_signature(first) == _records_signature(second)
        np.testing.assert_array_equal(first.final_params, second.final_params)

    def test_threaded_matches_serial(self):
        serial = _run_with(None)
        threaded = _run_with(ThreadedExecutor(workers=3))
        assert _records_signature(serial) == _records_signature(threaded)
        np.testing.assert_array_equal(serial.final_params, threaded.final_params)

    @pytest.mark.slow
    def test_process_pool_matches_serial_via_shared_memory(self):
        serial = _run_with(None)
        executor = ParallelExecutor(workers=4)
        parallel = _run_with(executor)
        assert executor.shm_rounds > 0  # the shm fast path actually ran
        assert _records_signature(serial) == _records_signature(parallel)
        np.testing.assert_array_equal(serial.final_params, parallel.final_params)

    def test_process_refd_fanout_matches_serial(self):
        """Registry fan-out + shard store: REFD rounds are bit-identical."""
        config = smoke_scale(attack="lie", defense="refd", num_rounds=2)
        with build_simulation(config) as simulation:
            serial = simulation.run(2)
            serial_reports = [
                (r.client_id, r.balance, r.confidence, r.score)
                for r in simulation.server.defense.last_reports
            ]
        executor = ParallelExecutor(workers=2)
        with build_simulation(config, executor=executor) as simulation:
            parallel = simulation.run(2)
            parallel_reports = [
                (r.client_id, r.balance, r.confidence, r.score)
                for r in simulation.server.defense.last_reports
            ]
        assert executor.shm_rounds > 0
        assert executor.shard_rounds > 0
        assert executor.fanout_calls > 0  # D-scores went through the pool
        assert serial_reports == parallel_reports
        assert _records_signature(serial) == _records_signature(parallel)
        np.testing.assert_array_equal(serial.final_params, parallel.final_params)

    def test_process_krum_distance_fanout_matches_serial(self):
        """Distance-plane fan-out: Krum rounds are bit-identical on the pool."""
        config = smoke_scale(attack="lie", defense="krum", num_rounds=2)
        with build_simulation(config) as simulation:
            serial = simulation.run(2)
        executor = ParallelExecutor(workers=2)
        with build_simulation(config, executor=executor) as simulation:
            parallel = simulation.run(2)
        assert executor.fanout_calls > 0  # distance blocks went through the pool
        assert executor.published_stores > 0  # one matrix publication per round
        assert _records_signature(serial) == _records_signature(parallel)
        np.testing.assert_array_equal(serial.final_params, parallel.final_params)

    @pytest.mark.slow
    def test_process_bulyan_distance_fanout_matches_serial(self):
        config = smoke_scale(attack="lie", defense="bulyan", num_rounds=2)
        with build_simulation(config) as simulation:
            serial = simulation.run(2)
        executor = ParallelExecutor(workers=2)
        with build_simulation(config, executor=executor) as simulation:
            parallel = simulation.run(2)
        assert executor.fanout_calls > 0
        assert _records_signature(serial) == _records_signature(parallel)
        np.testing.assert_array_equal(serial.final_params, parallel.final_params)

    @pytest.mark.slow
    def test_process_pool_matches_serial_with_inline_params(self):
        serial = _run_with(None)
        executor = ParallelExecutor(workers=4, use_shared_memory=False)
        parallel = _run_with(executor)
        assert executor.shm_rounds == 0
        assert _records_signature(serial) == _records_signature(parallel)
        np.testing.assert_array_equal(serial.final_params, parallel.final_params)


class TestSimulationWiring:
    def test_executor_name_accepted_by_simulation(self, tiny_task):
        factory = ClassifierFactory(
            architecture="mlp", in_channels=1, image_size=12, num_classes=10, seed=0
        )
        simulation = FederatedSimulation(
            task=tiny_task,
            model_factory=factory,
            num_clients=6,
            clients_per_round=3,
            malicious_fraction=0.0,
            training_config=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.1),
            executor="thread",
            workers=2,
        )
        assert isinstance(simulation.executor, ThreadedExecutor)
        result = simulation.run(1)
        simulation.close()
        assert len(result.records) == 1

    def test_classifier_factory_builds_identical_models(self, tiny_task):
        factory = ClassifierFactory.for_task(tiny_task, architecture="mlp", seed=3)
        from repro.nn.serialization import get_flat_params

        np.testing.assert_array_equal(
            get_flat_params(factory()), get_flat_params(factory())
        )
        restored = pickle.loads(pickle.dumps(factory))
        np.testing.assert_array_equal(
            get_flat_params(factory()), get_flat_params(restored())
        )
