"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageSpec, make_synthetic_task
from repro.fl.types import LocalTrainingConfig
from repro.models import MLP, SmallCNN
from repro.utils.sanitize import ENV_VAR as _SANITIZE_ENV


@pytest.fixture(autouse=True, scope="session")
def _sealed_array_sanitizer():
    """Arm the sealed-array sanitizer for the whole suite.

    Every shm publication records BLAKE2b digests and re-verifies them at
    release (``SealedArrayViolation`` on mismatch), so tier-1 doubles as a
    mutation-free certificate of the shm data plane.  An explicit
    ``REPRO_SANITIZE`` from the caller (e.g. ``REPRO_SANITIZE=0`` to
    bisect sanitizer overhead) wins.
    """
    if os.environ.get(_SANITIZE_ENV) is not None:
        yield
        return
    os.environ[_SANITIZE_ENV] = "1"
    try:
        yield
    finally:
        os.environ.pop(_SANITIZE_ENV, None)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_task():
    """A very small grayscale task (12x12, 10 classes) for fast FL tests."""
    spec = SyntheticImageSpec(name="tiny", channels=1, image_size=12, noise_std=0.2, jitter=1)
    return make_synthetic_task(spec, train_size=120, test_size=60, seed=7)


@pytest.fixture
def tiny_rgb_task():
    """A very small RGB task (12x12, 10 classes)."""
    spec = SyntheticImageSpec(name="tiny-rgb", channels=3, image_size=12, noise_std=0.3, jitter=1)
    return make_synthetic_task(spec, train_size=100, test_size=40, seed=8)


@pytest.fixture
def mlp_factory(tiny_task):
    """Factory building a small MLP matching the tiny task."""

    def factory():
        return MLP(in_channels=1, image_size=12, num_classes=10, hidden=32,
                   rng=np.random.default_rng(0))

    return factory


@pytest.fixture
def cnn_factory(tiny_task):
    """Factory building a SmallCNN matching the tiny task."""

    def factory():
        return SmallCNN(in_channels=1, image_size=12, num_classes=10, width=4,
                        rng=np.random.default_rng(0))

    return factory


@pytest.fixture
def train_config() -> LocalTrainingConfig:
    """Fast local-training configuration."""
    return LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.1)


# ``numerical_gradient`` lives in ``tests/helpers.py``; import it from there
# (``from helpers import numerical_gradient``), not from ``conftest``.
