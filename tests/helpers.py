"""Plain helper functions shared by test modules.

Kept out of ``conftest.py`` on purpose: test modules import helpers by module
name, and ``conftest`` is ambiguous when pytest also loads the benchmark
suite's ``benchmarks/conftest.py`` (whichever directory lands on ``sys.path``
first wins).  ``helpers`` exists only under ``tests/``, so the import is
unambiguous.
"""

from __future__ import annotations

import numpy as np

__all__ = ["numerical_gradient"]


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference numerical gradient of ``func()`` w.r.t. ``array`` (in place)."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = func()
        array[index] = original - eps
        lower = func()
        array[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        iterator.iternext()
    return grad
