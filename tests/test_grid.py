"""Tests for the scenario-grid runner: expansion, hashing, caching, dispatch."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentRunner,
    GridRunner,
    GridSpec,
    config_hash,
    expand_grid,
    smoke_scale,
)
from repro.experiments.config import ExperimentConfig


def _tiny_grid(**overrides):
    return expand_grid(
        attacks=("lie",),
        defenses=("mkrum", "median"),
        betas=(0.5, None),
        scale=smoke_scale,
        num_rounds=overrides.pop("num_rounds", 1),
        **overrides,
    )


class TestExpandGrid:
    def test_cross_product_size_and_labels(self):
        grid = _tiny_grid()
        assert len(grid) == 4
        labels = [label for label, _ in grid]
        assert len(set(labels)) == 4
        assert "fashion-mnist/mkrum/lie/beta=0.5/attackers=20%/seed=0" in labels
        assert "fashion-mnist/median/lie/iid/attackers=20%/seed=0" in labels

    def test_configs_carry_the_axis_values(self):
        grid = expand_grid(
            attacks=(None,),
            defenses=("fedavg",),
            malicious_fractions=(0.1, 0.3),
            scale=smoke_scale,
        )
        fractions = sorted(config.malicious_fraction for _, config in grid)
        assert fractions == [0.1, 0.3]
        assert all(config.attack is None for _, config in grid)

    def test_grid_spec_expand_matches_function(self):
        spec = GridSpec(
            attacks=("lie",),
            defenses=("mkrum", "median"),
            betas=(0.5, None),
            scale=smoke_scale,
            overrides={"num_rounds": 1},
        )
        assert spec.size == 4
        assert spec.expand() == _tiny_grid()


class TestConfigHash:
    def test_stable_within_process(self):
        config = smoke_scale(attack="lie", defense="mkrum")
        assert config_hash(config) == config_hash(config)
        assert config_hash(config) == config_hash(smoke_scale(attack="lie", defense="mkrum"))

    def test_sensitive_to_any_field(self):
        config = smoke_scale(attack="lie")
        assert config_hash(config) != config_hash(config.with_overrides(seed=1))
        assert config_hash(config) != config_hash(config.with_overrides(defense="mkrum"))

    def test_stable_across_processes(self):
        """hash() is salted per interpreter; config_hash must not be."""
        config = smoke_scale(attack="lie", defense="mkrum", num_rounds=1)
        local = config_hash(config)
        script = (
            "import json, sys\n"
            "from repro.experiments import config_hash\n"
            "from repro.experiments.config import ExperimentConfig\n"
            "config = ExperimentConfig(**json.loads(sys.argv[1]))\n"
            "print(config_hash(config))\n"
        )
        for _ in range(2):
            output = subprocess.run(
                [sys.executable, "-c", script, json.dumps(config.to_dict())],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent.parent,
                env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
            ).stdout.strip()
            assert output == local


class TestGridRunnerCaching:
    def test_miss_then_hit(self, tmp_path):
        grid = _tiny_grid()
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        first = runner.run(grid)
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == len(grid)
        # 2 betas share nothing; each beta has its own clean baseline.
        assert runner.last_stats.baselines_executed == 2
        artifacts = list(tmp_path.glob("*.json"))
        assert len(artifacts) == len(grid) + 2

        rerun = GridRunner(workers=1, cache_dir=tmp_path)
        second = rerun.run(grid)
        assert rerun.last_stats.cache_hits == len(grid)
        assert rerun.last_stats.executed == 0
        assert rerun.last_stats.baselines_executed == 0
        for (label_a, result_a), (label_b, result_b) in zip(first, second):
            assert label_a == label_b
            assert result_a.max_accuracy == result_b.max_accuracy
            assert result_a.asr == result_b.asr
            assert [r.accuracy for r in result_a.records] == [
                r.accuracy for r in result_b.records
            ]

    def test_partial_cache_only_runs_missing_cells(self, tmp_path):
        grid = _tiny_grid()
        GridRunner(workers=1, cache_dir=tmp_path).run(grid[:2])
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        runner.run(grid)
        assert runner.last_stats.cache_hits == 2
        assert runner.last_stats.executed == 2

    def test_corrupt_artifact_reruns(self, tmp_path):
        grid = _tiny_grid()[:1]
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        runner.run(grid)
        for artifact in tmp_path.glob("*.json"):
            artifact.write_text("{not json")
        rerun = GridRunner(workers=1, cache_dir=tmp_path)
        rerun.run(grid)
        assert rerun.last_stats.cache_hits == 0
        assert rerun.last_stats.executed == 1

    def test_duplicate_labels_rejected(self):
        grid = _tiny_grid()
        duplicated = [("same-label", config) for _, config in grid[:2]]
        with pytest.raises(ValueError, match="duplicate scenario labels"):
            GridRunner(workers=1).run(duplicated)

    def test_no_cache_dir_disables_caching(self):
        grid = _tiny_grid()[:1]
        runner = GridRunner(workers=1)
        runner.run(grid)
        runner.run(grid)
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == 1

    def test_results_keep_input_order_and_metrics(self, tmp_path):
        grid = _tiny_grid()
        results = GridRunner(workers=1, cache_dir=tmp_path).run(grid)
        assert [label for label, _ in results] == [label for label, _ in grid]
        for _, result in results:
            assert result.baseline_accuracy is not None
            assert result.asr is not None


@pytest.mark.slow
class TestGridRunnerParallel:
    def test_parallel_matches_serial(self, tmp_path):
        grid = _tiny_grid()
        serial = GridRunner(workers=1).run(grid)
        parallel = GridRunner(workers=2, cache_dir=tmp_path / "cache").run(grid)
        for (label_a, result_a), (label_b, result_b) in zip(serial, parallel):
            assert label_a == label_b
            assert result_a.max_accuracy == result_b.max_accuracy
            assert result_a.asr == result_b.asr

    def test_run_many_workers_matches_serial(self):
        configs = [config for _, config in _tiny_grid()]
        serial = ExperimentRunner().run_many(configs)
        parallel = ExperimentRunner().run_many(configs, workers=2)
        assert [r.max_accuracy for r in serial] == [r.max_accuracy for r in parallel]
        assert [r.asr for r in serial] == [r.asr for r in parallel]

    def test_progress_streams_one_line_per_cell(self, tmp_path):
        lines = []
        grid = _tiny_grid()
        GridRunner(workers=2, cache_dir=tmp_path, progress=lines.append).run(grid)
        grid_lines = [line for line in lines if line.startswith("[grid")]
        assert len(grid_lines) == len(grid)
        GridRunner(workers=2, cache_dir=tmp_path, progress=lines.append).run(grid)
        assert sum(1 for line in lines if line.startswith("[cache]")) == len(grid)
