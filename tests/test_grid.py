"""Tests for the scenario-grid runner: expansion, hashing, caching, dispatch."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentRunner,
    GridBaselineError,
    GridExecutionError,
    GridRunner,
    GridSpec,
    config_hash,
    expand_grid,
    smoke_scale,
)
from repro.experiments.config import ExperimentConfig


def _tiny_grid(**overrides):
    return expand_grid(
        attacks=("lie",),
        defenses=("mkrum", "median"),
        betas=(0.5, None),
        scale=smoke_scale,
        num_rounds=overrides.pop("num_rounds", 1),
        **overrides,
    )


class TestExpandGrid:
    def test_cross_product_size_and_labels(self):
        grid = _tiny_grid()
        assert len(grid) == 4
        labels = [label for label, _ in grid]
        assert len(set(labels)) == 4
        assert "fashion-mnist/mkrum/lie/beta=0.5/attackers=20%/seed=0" in labels
        assert "fashion-mnist/median/lie/iid/attackers=20%/seed=0" in labels

    def test_configs_carry_the_axis_values(self):
        grid = expand_grid(
            attacks=(None,),
            defenses=("fedavg",),
            malicious_fractions=(0.1, 0.3),
            scale=smoke_scale,
        )
        fractions = sorted(config.malicious_fraction for _, config in grid)
        assert fractions == [0.1, 0.3]
        assert all(config.attack is None for _, config in grid)

    def test_grid_spec_expand_matches_function(self):
        spec = GridSpec(
            attacks=("lie",),
            defenses=("mkrum", "median"),
            betas=(0.5, None),
            scale=smoke_scale,
            overrides={"num_rounds": 1},
        )
        assert spec.size == 4
        assert spec.expand() == _tiny_grid()


class TestConfigHash:
    def test_stable_within_process(self):
        config = smoke_scale(attack="lie", defense="mkrum")
        assert config_hash(config) == config_hash(config)
        assert config_hash(config) == config_hash(smoke_scale(attack="lie", defense="mkrum"))

    def test_sensitive_to_any_field(self):
        config = smoke_scale(attack="lie")
        assert config_hash(config) != config_hash(config.with_overrides(seed=1))
        assert config_hash(config) != config_hash(config.with_overrides(defense="mkrum"))

    def test_stable_across_processes(self):
        """hash() is salted per interpreter; config_hash must not be."""
        config = smoke_scale(attack="lie", defense="mkrum", num_rounds=1)
        local = config_hash(config)
        script = (
            "import json, sys\n"
            "from repro.experiments import config_hash\n"
            "from repro.experiments.config import ExperimentConfig\n"
            "config = ExperimentConfig(**json.loads(sys.argv[1]))\n"
            "print(config_hash(config))\n"
        )
        for _ in range(2):
            output = subprocess.run(
                [sys.executable, "-c", script, json.dumps(config.to_dict())],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).resolve().parent.parent,
                env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
            ).stdout.strip()
            assert output == local


class TestGridRunnerCaching:
    def test_miss_then_hit(self, tmp_path):
        grid = _tiny_grid()
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        first = runner.run(grid)
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == len(grid)
        # 2 betas share nothing; each beta has its own clean baseline.
        assert runner.last_stats.baselines_executed == 2
        artifacts = sorted(tmp_path.glob("*.json"))
        assert len(artifacts) == len(grid) + 2

        rerun = GridRunner(workers=1, cache_dir=tmp_path)
        second = rerun.run(grid)
        assert rerun.last_stats.cache_hits == len(grid)
        assert rerun.last_stats.executed == 0
        assert rerun.last_stats.baselines_executed == 0
        for (label_a, result_a), (label_b, result_b) in zip(first, second):
            assert label_a == label_b
            assert result_a.max_accuracy == result_b.max_accuracy
            assert result_a.asr == result_b.asr
            assert [r.accuracy for r in result_a.records] == [
                r.accuracy for r in result_b.records
            ]

    def test_partial_cache_only_runs_missing_cells(self, tmp_path):
        grid = _tiny_grid()
        GridRunner(workers=1, cache_dir=tmp_path).run(grid[:2])
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        runner.run(grid)
        assert runner.last_stats.cache_hits == 2
        assert runner.last_stats.executed == 2

    def test_corrupt_artifact_reruns(self, tmp_path):
        grid = _tiny_grid()[:1]
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        runner.run(grid)
        for artifact in sorted(tmp_path.glob("*.json")):
            artifact.write_text("{not json")
        rerun = GridRunner(workers=1, cache_dir=tmp_path)
        rerun.run(grid)
        assert rerun.last_stats.cache_hits == 0
        assert rerun.last_stats.executed == 1

    def test_duplicate_labels_rejected(self):
        grid = _tiny_grid()
        duplicated = [("same-label", config) for _, config in grid[:2]]
        with pytest.raises(ValueError, match="duplicate scenario labels"):
            GridRunner(workers=1).run(duplicated)

    def test_no_cache_dir_disables_caching(self):
        grid = _tiny_grid()[:1]
        runner = GridRunner(workers=1)
        runner.run(grid)
        runner.run(grid)
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == 1

    def test_results_keep_input_order_and_metrics(self, tmp_path):
        grid = _tiny_grid()
        results = GridRunner(workers=1, cache_dir=tmp_path).run(grid)
        assert [label for label, _ in results] == [label for label, _ in grid]
        for _, result in results:
            assert result.baseline_accuracy is not None
            assert result.asr is not None


def _killer_run_cell(label, config, baseline_accuracy, **_extras):
    """Module-level so the pool can pickle it: kills its worker for one
    specific cell, behaves like the real worker entry point otherwise."""
    import os

    from repro.experiments.dispatch import resolve_task
    from repro.experiments.runner import run_experiment

    if label == "killer-cell":
        os._exit(1)
    task = resolve_task(config)
    return label, run_experiment(config, baseline_accuracy=baseline_accuracy, task=task)


class TestGridRunnerFailurePaths:
    def _grid_with_poison_cell(self):
        """Three cells; the middle one raises in the worker (unknown attack
        only fails at build time inside run_experiment, not at config
        time)."""
        grid = _tiny_grid()[:2]
        poison = ("poisoned-cell", grid[0][1].with_overrides(attack="no-such-attack"))
        return [grid[0], poison, grid[1]]

    def test_failing_cell_does_not_lose_siblings(self, tmp_path):
        scenario_list = self._grid_with_poison_cell()
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        with pytest.raises(GridExecutionError) as info:
            runner.run(scenario_list)
        error = info.value
        assert set(error.failures) == {"poisoned-cell"}
        assert "no-such-attack" in error.failures["poisoned-cell"]
        # both siblings completed, streamed and cached
        assert {label for label, _ in error.results} == {
            scenario_list[0][0],
            scenario_list[2][0],
        }
        assert runner.last_stats.executed == 2
        assert runner.last_stats.failed == 1
        assert runner.last_failures == error.failures
        rerun = GridRunner(workers=1, cache_dir=tmp_path)
        with pytest.raises(GridExecutionError):
            rerun.run(scenario_list)
        assert rerun.last_stats.cache_hits == 2
        assert rerun.last_stats.executed == 0

    @pytest.mark.slow
    def test_failing_cell_does_not_abandon_inflight_pool_siblings(self, tmp_path):
        runner = GridRunner(workers=2, cache_dir=tmp_path)
        with pytest.raises(GridExecutionError) as info:
            runner.run(self._grid_with_poison_cell())
        assert len(info.value.results) == 2
        assert runner.last_stats.executed == 2

    @pytest.mark.slow
    def test_dead_worker_breaks_only_its_batch_and_pool_recovers(
        self, tmp_path, monkeypatch
    ):
        """A worker killed mid-cell poisons the shared pool for its batch;
        later batches must run on a fresh pool instead of dying on submit
        (claim batching reuses one pool across many batches)."""
        import repro.experiments.grid as grid_module

        monkeypatch.setattr(grid_module, "_run_cell", _killer_run_cell)
        grid = expand_grid(
            attacks=("lie",),
            defenses=("fedavg", "mkrum", "median", "krum"),
            betas=(0.5, None),
            scale=smoke_scale,
            num_rounds=1,
        )
        scenario_list = [("killer-cell", grid[0][1])] + grid[1:]
        # claim_ttl forces small claim batches -> several batches, one pool
        runner = GridRunner(workers=2, cache_dir=tmp_path, claim_ttl=30)
        with pytest.raises(GridExecutionError) as info:
            runner.run(scenario_list)
        assert "killer-cell" in info.value.failures
        stats = runner.last_stats
        # every cell either completed or was recorded as a failure...
        assert stats.executed + stats.failed == len(scenario_list)
        # ...and cells from batches after the crash completed on a new pool
        assert stats.executed >= 4

    def test_unfilled_baseline_raises_with_offending_labels(self, monkeypatch):
        grid = _tiny_grid()
        runner = GridRunner(workers=1)
        original = GridRunner._execute_batch

        def drop_baselines(self, jobs, phase, ledger=None):
            if phase == "baseline":
                return {}, {}
            return original(self, jobs, phase, ledger)

        monkeypatch.setattr(GridRunner, "_execute_batch", drop_baselines)
        with pytest.raises(GridBaselineError) as info:
            runner.run(grid)
        # every cell whose baseline placeholder survived phase 1 is named
        assert sorted(info.value.labels) == sorted(label for label, _ in grid)

    def test_failed_baseline_job_skips_dependent_cells_only(
        self, tmp_path, monkeypatch
    ):
        grid = _tiny_grid()
        import repro.experiments.grid as grid_module

        original = grid_module._run_cell

        def poisoned_run_cell(label, config, baseline_accuracy, **extras):
            if label.startswith("baseline/"):
                raise RuntimeError("baseline exploded")
            return original(label, config, baseline_accuracy, **extras)

        monkeypatch.setattr(grid_module, "_run_cell", poisoned_run_cell)
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        with pytest.raises(GridBaselineError):
            runner.run(grid)
        assert runner.last_stats.executed == 0  # no cell ran with a NaN baseline
        # failures: 2 baseline jobs + 4 baseline-starved cells
        assert runner.last_stats.failed == 6

    def test_one_bad_baseline_does_not_starve_the_other(self, tmp_path, monkeypatch):
        """Only the cells depending on the broken baseline are skipped;
        cells with a healthy baseline still execute and are salvaged."""
        grid = _tiny_grid()  # betas (0.5, None) -> two distinct baselines
        import repro.experiments.grid as grid_module

        original = grid_module._run_cell

        def poisoned_run_cell(label, config, baseline_accuracy, **extras):
            if label.startswith("baseline/") and config.beta is None:
                raise RuntimeError("iid baseline exploded")
            return original(label, config, baseline_accuracy, **extras)

        monkeypatch.setattr(grid_module, "_run_cell", poisoned_run_cell)
        runner = GridRunner(workers=1, cache_dir=tmp_path)
        with pytest.raises(GridBaselineError) as info:
            runner.run(grid)
        iid_labels = [label for label, config in grid if config.beta is None]
        assert info.value.labels == sorted(iid_labels)
        # the beta=0.5 cells completed and ride along on the error
        completed = {label for label, _ in info.value.results}
        assert completed == {label for label, config in grid if config.beta is not None}
        assert runner.last_stats.executed == 2


@pytest.mark.slow
class TestGridRunnerParallel:
    def test_parallel_matches_serial(self, tmp_path):
        grid = _tiny_grid()
        serial = GridRunner(workers=1).run(grid)
        parallel = GridRunner(workers=2, cache_dir=tmp_path / "cache").run(grid)
        for (label_a, result_a), (label_b, result_b) in zip(serial, parallel):
            assert label_a == label_b
            assert result_a.max_accuracy == result_b.max_accuracy
            assert result_a.asr == result_b.asr

    def test_run_many_workers_matches_serial(self):
        configs = [config for _, config in _tiny_grid()]
        serial = ExperimentRunner().run_many(configs)
        parallel = ExperimentRunner().run_many(configs, workers=2)
        assert [r.max_accuracy for r in serial] == [r.max_accuracy for r in parallel]
        assert [r.asr for r in serial] == [r.asr for r in parallel]

    def test_progress_streams_one_line_per_cell(self, tmp_path):
        lines = []
        grid = _tiny_grid()
        GridRunner(workers=2, cache_dir=tmp_path, progress=lines.append).run(grid)
        grid_lines = [line for line in lines if line.startswith("[grid")]
        assert len(grid_lines) == len(grid)
        GridRunner(workers=2, cache_dir=tmp_path, progress=lines.append).run(grid)
        assert sum(1 for line in lines if line.startswith("[cache]")) == len(grid)
