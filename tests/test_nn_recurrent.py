"""Tests for the Embedding / GRU building blocks of the text extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.recurrent import GRU, Embedding, GRUCell
from repro.nn.tensor import Tensor

from helpers import numerical_gradient


class TestEmbedding:
    def test_validation(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)

    def test_hard_lookup_shape_and_values(self):
        embedding = Embedding(6, 3, rng=np.random.default_rng(0))
        tokens = np.array([[0, 5], [2, 2]])
        out = embedding(tokens)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data[0, 1], embedding.weight.data[5])

    def test_out_of_range_token_rejected(self):
        embedding = Embedding(4, 3)
        with pytest.raises(ValueError):
            embedding(np.array([[4]]))

    def test_hard_lookup_gradient_accumulates_per_token(self):
        embedding = Embedding(5, 2, rng=np.random.default_rng(0))
        tokens = np.array([[1, 1, 3]])
        embedding(tokens).sum().backward()
        grad = embedding.weight.grad
        np.testing.assert_allclose(grad[1], [2.0, 2.0])
        np.testing.assert_allclose(grad[3], [1.0, 1.0])
        np.testing.assert_allclose(grad[0], [0.0, 0.0])

    def test_soft_lookup_matches_expected_embedding(self):
        embedding = Embedding(4, 3, rng=np.random.default_rng(0))
        soft = np.zeros((2, 1, 4), dtype=np.float64)
        soft[:, 0, 2] = 0.5
        soft[:, 0, 3] = 0.5
        out = embedding(Tensor(soft))
        expected = 0.5 * (embedding.weight.data[2] + embedding.weight.data[3])
        np.testing.assert_allclose(out.data[0, 0], expected, atol=1e-6)

    def test_soft_lookup_wrong_vocab_rejected(self):
        embedding = Embedding(4, 3)
        with pytest.raises(ValueError):
            embedding(Tensor(np.zeros((2, 5))))

    def test_soft_lookup_is_differentiable_wrt_distribution(self):
        embedding = Embedding(4, 3, rng=np.random.default_rng(0))
        soft = Tensor(np.random.default_rng(1).random((2, 4)), requires_grad=True)
        embedding(soft).sum().backward()
        assert soft.grad is not None and soft.grad.shape == (2, 4)


class TestGRUCell:
    def test_validation(self):
        with pytest.raises(ValueError):
            GRUCell(0, 4)

    def test_output_shape_and_default_hidden(self):
        cell = GRUCell(5, 7, rng=np.random.default_rng(0))
        out = cell(Tensor(np.zeros((3, 5), dtype=np.float32)))
        assert out.shape == (3, 7)

    def test_hidden_state_is_carried(self, rng):
        cell = GRUCell(4, 4, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
        h1 = cell(x)
        h2 = cell(x, h1)
        assert not np.allclose(h1.data, h2.data)

    def test_gradient_flows_to_parameters_and_input(self, rng):
        cell = GRUCell(3, 3, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        cell(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in cell.parameters())

    def test_gradient_check_against_numerical(self, rng):
        cell = GRUCell(2, 2, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        h = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        (cell(x, h) ** 2).sum().backward()

        def value():
            return float((cell(Tensor(x.data), Tensor(h.data)).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-4)
        np.testing.assert_allclose(numerical_gradient(value, h.data), h.grad, atol=1e-4)


class TestGRU:
    def test_rejects_non_3d_input(self):
        gru = GRU(3, 4)
        with pytest.raises(ValueError):
            gru(Tensor(np.zeros((2, 3))))

    def test_output_shapes(self, rng):
        gru = GRU(3, 5, rng=np.random.default_rng(0))
        sequence = Tensor(rng.standard_normal((2, 6, 3)).astype(np.float32))
        outputs, final = gru(sequence)
        assert outputs.shape == (2, 6, 5)
        assert final.shape == (2, 5)
        np.testing.assert_allclose(outputs.data[:, -1, :], final.data, atol=1e-6)

    def test_backward_through_time_reaches_parameters(self, rng):
        gru = GRU(3, 4, rng=np.random.default_rng(0))
        sequence = Tensor(rng.standard_normal((2, 5, 3)), requires_grad=True)
        outputs, _ = gru(sequence)
        (outputs ** 2).sum().backward()
        assert sequence.grad is not None
        assert all(p.grad is not None for p in gru.parameters())

    def test_sequence_classifier_learns_order_sensitive_task(self, rng):
        # Classify whether the first or the second half of the sequence has
        # the larger mean — requires integrating information over time.
        vocab, length, hidden = 10, 8, 16
        embedding = Embedding(vocab, 8, rng=np.random.default_rng(0))
        gru = GRU(8, hidden, rng=np.random.default_rng(1))
        head = nn.Linear(hidden, 2, rng=np.random.default_rng(2))
        parameters = embedding.parameters() + gru.parameters() + head.parameters()
        optimizer = nn.Adam(parameters, lr=0.01)

        tokens = rng.integers(0, vocab, size=(120, length))
        labels = (tokens[:, : length // 2].mean(axis=1) > tokens[:, length // 2 :].mean(axis=1)).astype(int)

        def forward(batch_tokens):
            embedded = embedding(batch_tokens)
            _, final = gru(embedded)
            return head(final)

        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(forward(tokens), labels)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        accuracy = (forward(tokens).data.argmax(axis=1) == labels).mean()
        assert loss.item() < first_loss
        assert accuracy > 0.75
