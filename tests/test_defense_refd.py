"""Tests for REFD: balance value, confidence value, D-score and update filtering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses.refd import (
    EVALUATE_UPDATE_FANOUT,
    Refd,
    balance_value,
    balance_values,
    confidence_value,
    confidence_values,
    d_score,
    d_scores,
    evaluate_update,
    max_balance_value,
)
from repro.fl.executor import ParallelExecutor, ThreadedExecutor, resolve_fanout_fn
from repro.fl.training import train_local_model
from repro.fl.types import DefenseContext, LocalTrainingConfig, ModelUpdate
from repro.nn.serialization import get_flat_params, set_flat_params


class TestScoreComponents:
    def test_balance_value_uniform_counts(self):
        # Perfectly balanced predictions => zero std => the supremum of the
        # finite balance values, sqrt(C / 2) — NOT the old sentinel of 1.0,
        # which ranked perfect balance below mildly imbalanced histograms.
        assert balance_value(np.array([10, 10, 10, 10])) == max_balance_value(4)
        assert max_balance_value(4) == pytest.approx(np.sqrt(2.0))

    def test_balanced_histogram_never_scores_below_imbalanced(self):
        # Regression (Eq. 6 inversion): every integer histogram that is not
        # perfectly balanced deviates by at least (+1, -1, 0, ...), so its
        # balance value is at most sqrt(C / 2).  The perfectly balanced
        # histogram must rank at least as high as every one of them — the
        # old sentinel of 1.0 ranked it below any histogram with std < 1.
        rng = np.random.default_rng(0)
        for num_classes in (2, 4, 10):
            balanced = balance_value(np.full(num_classes, 10))
            # The nearly-balanced worst case the bound is tight against ...
            nearly = np.full(num_classes, 10)
            nearly[0] += 1
            nearly[1] -= 1
            assert balanced >= balance_value(nearly)
            # ... and a fuzzed batch of imbalanced histograms.
            for _ in range(50):
                counts = rng.multinomial(10 * num_classes, rng.dirichlet(np.ones(num_classes)))
                if counts.std() == 0.0:
                    continue
                assert balanced >= balance_value(counts)

    def test_balanced_update_d_score_not_below_imbalanced(self):
        # The inversion flipped *D-scores* too: at equal confidence, a
        # perfectly class-balanced update must never be out-scored by a
        # biased one (that is what Eq. 8 feeds on).
        confidence = 0.9
        balanced_score = d_score(balance_value(np.array([5, 5, 5, 5])), confidence)
        nearly_score = d_score(balance_value(np.array([6, 4, 5, 5])), confidence)
        assert balanced_score >= nearly_score

    def test_balance_value_decreases_with_bias(self):
        balanced = balance_value(np.array([10, 10, 10, 10]))
        biased = balance_value(np.array([37, 1, 1, 1]))
        assert biased < balanced

    def test_balance_value_is_inverse_std(self):
        counts = np.array([4.0, 8.0, 12.0])
        assert balance_value(counts) == pytest.approx(1.0 / counts.std())

    def test_confidence_value_range(self):
        probabilities = np.array([[0.9, 0.05, 0.05], [0.4, 0.35, 0.25]])
        value = confidence_value(probabilities)
        assert value == pytest.approx((0.9 + 0.4) / 2)

    def test_confidence_value_rejects_1d(self):
        with pytest.raises(ValueError):
            confidence_value(np.array([0.5, 0.5]))

    def test_d_score_harmonic_mean_at_alpha_one(self):
        assert d_score(1.0, 1.0) == pytest.approx(1.0)
        assert d_score(0.5, 1.0) == pytest.approx(2 * 0.5 * 1.0 / 1.5)

    def test_d_score_decreases_with_either_component(self):
        base = d_score(0.8, 0.8)
        assert d_score(0.4, 0.8) < base
        assert d_score(0.8, 0.4) < base

    def test_d_score_zero_denominator(self):
        assert d_score(0.0, 0.0) == 0.0

    def test_d_score_alpha_weighting(self):
        # As in the F-beta score, a large alpha shifts the weight towards the
        # second component (the confidence value V in Eq. 8).
        high_confidence = d_score(0.1, 0.9, alpha=4.0)
        low_confidence = d_score(0.9, 0.1, alpha=4.0)
        assert high_confidence > low_confidence


class TestVectorizedScoreHelpers:
    """The batched helpers must agree exactly with their scalar counterparts."""

    def test_balance_values_match_scalar(self):
        counts = np.array([[10, 10, 10], [37, 1, 1], [0, 0, 0], [4, 8, 12]])
        batched = balance_values(counts)
        for row, expected in zip(counts, batched):
            assert balance_value(row) == expected

    def test_confidence_values_match_scalar(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(5), size=(3, 7))  # (updates, samples, classes)
        batched = confidence_values(probs.max(axis=2))
        for matrix, expected in zip(probs, batched):
            assert confidence_value(matrix) == expected

    def test_d_scores_match_scalar(self):
        balances = np.array([1.0, 0.5, 0.0, 0.9])
        confidences = np.array([1.0, 1.0, 0.0, 0.1])
        for alpha in (0.5, 1.0, 4.0):
            batched = d_scores(balances, confidences, alpha)
            for b, c, expected in zip(balances, confidences, batched):
                assert d_score(b, c, alpha) == expected


class TestBatchedScoring:
    def _updates(self, tiny_task, mlp_factory, count=4):
        rng = np.random.default_rng(3)
        params = get_flat_params(mlp_factory())
        return [
            ModelUpdate(
                client_id=i,
                parameters=params + 0.2 * rng.standard_normal(params.shape).astype(np.float32),
                num_samples=5,
            )
            for i in range(count)
        ]

    def _context(self, tiny_task, mlp_factory, executor=None, reference_ref=None):
        return DefenseContext(
            round_number=0,
            global_params=get_flat_params(mlp_factory()),
            expected_num_malicious=1,
            rng=np.random.default_rng(0),
            model_factory=mlp_factory,
            reference_dataset=tiny_task.test,
            executor=executor,
            reference_ref=reference_ref,
        )

    def test_batched_scores_match_per_update_scoring(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        context = self._context(tiny_task, mlp_factory)
        updates = self._updates(tiny_task, mlp_factory)
        images, _ = tiny_task.test.arrays()
        batched = defense.score_updates(updates, images, context)
        for update, report in zip(updates, batched):
            single = defense.score_update(update, images, context)
            assert single.client_id == report.client_id
            assert single.balance == report.balance
            assert single.confidence == report.confidence
            assert single.score == report.score

    def test_thread_executor_fanout_matches_serial(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        updates = self._updates(tiny_task, mlp_factory)
        images, _ = tiny_task.test.arrays()
        serial = defense.score_updates(
            updates, images, self._context(tiny_task, mlp_factory)
        )
        with ThreadedExecutor(workers=2) as executor:
            threaded = defense.score_updates(
                updates, images, self._context(tiny_task, mlp_factory, executor=executor)
            )
        assert [(r.balance, r.confidence, r.score) for r in serial] == [
            (r.balance, r.confidence, r.score) for r in threaded
        ]

    def test_score_updates_empty_list(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        images, _ = tiny_task.test.arrays()
        assert defense.score_updates([], images, self._context(tiny_task, mlp_factory)) == []

    def test_evaluate_update_is_registered_for_fanout(self):
        assert resolve_fanout_fn(EVALUATE_UPDATE_FANOUT) is evaluate_update

    def test_evaluate_update_matches_fused_loop(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        context = self._context(tiny_task, mlp_factory)
        updates = self._updates(tiny_task, mlp_factory)
        images, _ = tiny_task.test.arrays()
        predicted, max_probs, num_classes = defense._evaluate_batched(updates, images, context)
        for index, update in enumerate(updates):
            row_pred, row_max, row_classes = evaluate_update(
                (mlp_factory, update.parameters, images)
            )
            assert row_classes == num_classes
            np.testing.assert_array_equal(row_pred, predicted[index])
            np.testing.assert_array_equal(row_max.astype(np.float64), max_probs[index])

    def test_process_executor_fanout_matches_serial(self, tiny_task):
        from repro.fl.executor import ShardRef, SharedArrayStore
        from repro.models import ClassifierFactory

        factory = ClassifierFactory(
            architecture="mlp", in_channels=1, image_size=12, num_classes=10, seed=0
        )
        defense = Refd(num_rejected=1)
        updates = self._updates(tiny_task, factory)
        images, labels = tiny_task.test.arrays()
        serial = defense.score_updates(updates, images, self._context(tiny_task, factory))
        with SharedArrayStore({"reference/images": images, "reference/labels": labels}) as store:
            reference_ref = ShardRef(
                images=store.refs["reference/images"],
                labels=store.refs["reference/labels"],
            )
            with ParallelExecutor(workers=2) as executor:
                process = defense.score_updates(
                    updates,
                    images,
                    self._context(
                        tiny_task, factory, executor=executor, reference_ref=reference_ref
                    ),
                )
                assert executor.fanout_calls == len(updates)
        assert [(r.balance, r.confidence, r.score) for r in serial] == [
            (r.balance, r.confidence, r.score) for r in process
        ]

    def test_process_executor_without_reference_ref_stays_serial(self, tiny_task):
        """A pickling fan-out backend is skipped when the reference images
        cannot be passed by shared-memory reference — inlining them into
        every envelope would re-ship the tensor num_updates times a round."""
        from repro.models import ClassifierFactory

        factory = ClassifierFactory(
            architecture="mlp", in_channels=1, image_size=12, num_classes=10, seed=0
        )
        defense = Refd(num_rejected=1)
        updates = self._updates(tiny_task, factory)
        images, _ = tiny_task.test.arrays()
        serial = defense.score_updates(updates, images, self._context(tiny_task, factory))
        with ParallelExecutor(workers=2) as executor:
            fused = defense.score_updates(
                updates, images, self._context(tiny_task, factory, executor=executor)
            )
            assert executor.fanout_calls == 0
        assert [(r.balance, r.confidence, r.score) for r in serial] == [
            (r.balance, r.confidence, r.score) for r in fused
        ]


class TestRefdValidation:
    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            Refd(num_rejected=-1)
        with pytest.raises(ValueError):
            Refd(alpha=0.0)

    def test_requires_reference_dataset(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        params = get_flat_params(mlp_factory())
        updates = [ModelUpdate(client_id=0, parameters=params, num_samples=5)]
        context = DefenseContext(
            round_number=0,
            global_params=params,
            expected_num_malicious=1,
            rng=np.random.default_rng(0),
            model_factory=mlp_factory,
            reference_dataset=None,
        )
        with pytest.raises(ValueError):
            defense.aggregate(updates, context)

    def test_requires_model_factory(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        params = get_flat_params(mlp_factory())
        updates = [ModelUpdate(client_id=0, parameters=params, num_samples=5)]
        context = DefenseContext(
            round_number=0,
            global_params=params,
            expected_num_malicious=1,
            rng=np.random.default_rng(0),
            model_factory=None,
            reference_dataset=tiny_task.test,
        )
        with pytest.raises(ValueError):
            defense.aggregate(updates, context)


class TestRefdFiltering:
    def _trained_update(self, tiny_task, mlp_factory, client_id: int, epochs: int = 10):
        model = mlp_factory()
        config = LocalTrainingConfig(local_epochs=epochs, batch_size=32, learning_rate=0.2)
        train_local_model(model, tiny_task.train, config, np.random.default_rng(client_id))
        return ModelUpdate(
            client_id=client_id, parameters=get_flat_params(model), num_samples=40
        )

    def _biased_update(self, tiny_task, mlp_factory, client_id: int, target: int = 0):
        """A model trained to always predict one class (the DFA-G failure mode)."""
        model = mlp_factory()
        images, _ = tiny_task.train.arrays()
        labels = np.full(len(images), target, dtype=np.int64)
        config = LocalTrainingConfig(local_epochs=10, batch_size=32, learning_rate=0.3)
        from repro.fl.training import train_on_arrays

        train_on_arrays(model, images, labels, config, np.random.default_rng(client_id))
        return ModelUpdate(
            client_id=client_id,
            parameters=get_flat_params(model),
            num_samples=40,
            is_malicious=True,
        )

    def _context(self, tiny_task, mlp_factory):
        return DefenseContext(
            round_number=0,
            global_params=get_flat_params(mlp_factory()),
            expected_num_malicious=1,
            rng=np.random.default_rng(0),
            model_factory=mlp_factory,
            reference_dataset=tiny_task.test,
        )

    def test_biased_update_rejected(self, tiny_task, mlp_factory):
        benign = [self._trained_update(tiny_task, mlp_factory, i) for i in range(3)]
        malicious = self._biased_update(tiny_task, mlp_factory, 99)
        defense = Refd(num_rejected=1)
        result = defense.aggregate(benign + [malicious], self._context(tiny_task, mlp_factory))
        assert 99 not in result.accepted_client_ids
        assert len(result.accepted_client_ids) == 3

    def test_reports_cover_all_updates(self, tiny_task, mlp_factory):
        benign = [self._trained_update(tiny_task, mlp_factory, i) for i in range(2)]
        malicious = self._biased_update(tiny_task, mlp_factory, 50)
        defense = Refd(num_rejected=1)
        defense.aggregate(benign + [malicious], self._context(tiny_task, mlp_factory))
        assert len(defense.last_reports) == 3
        scores = {report.client_id: report.score for report in defense.last_reports}
        assert scores[50] == min(scores.values())

    def test_biased_update_has_lower_balance(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        context = self._context(tiny_task, mlp_factory)
        images, _ = tiny_task.test.arrays()
        benign_report = defense.score_update(
            self._trained_update(tiny_task, mlp_factory, 0), images, context
        )
        biased_report = defense.score_update(
            self._biased_update(tiny_task, mlp_factory, 1), images, context
        )
        assert biased_report.balance < benign_report.balance

    def test_untrained_update_has_low_confidence(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1)
        context = self._context(tiny_task, mlp_factory)
        images, _ = tiny_task.test.arrays()
        untrained = ModelUpdate(
            client_id=7, parameters=get_flat_params(mlp_factory()), num_samples=10
        )
        trained = self._trained_update(tiny_task, mlp_factory, 0, epochs=15)
        untrained_report = defense.score_update(untrained, images, context)
        trained_report = defense.score_update(trained, images, context)
        assert untrained_report.confidence < trained_report.confidence

    def test_num_rejected_caps_at_updates_minus_one(self, tiny_task, mlp_factory):
        benign = [self._trained_update(tiny_task, mlp_factory, i) for i in range(2)]
        defense = Refd(num_rejected=10)
        result = defense.aggregate(benign, self._context(tiny_task, mlp_factory))
        assert len(result.accepted_client_ids) == 1

    def test_max_reference_samples_truncates(self, tiny_task, mlp_factory):
        defense = Refd(num_rejected=1, max_reference_samples=20)
        context = self._context(tiny_task, mlp_factory)
        images, _ = defense._reference_arrays(context)
        assert len(images) == 20
