"""Tests for flat-parameter serialization (round trips and error handling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import SmallCNN
from repro.nn.serialization import (
    FlatParams,
    get_flat_params,
    parameter_shapes,
    set_flat_params,
    state_dict_to_vector,
    vector_to_state_dict,
    clone_state_dict,
)


def _make_model(seed: int = 0):
    return nn.Sequential(
        nn.Linear(6, 8, rng=np.random.default_rng(seed)),
        nn.ReLU(),
        nn.Linear(8, 3, rng=np.random.default_rng(seed + 1)),
    )


class TestFlatParams:
    def test_get_flat_params_length(self):
        model = _make_model()
        assert get_flat_params(model).size == model.num_parameters()

    def test_roundtrip_preserves_values(self):
        model = _make_model(0)
        vector = get_flat_params(model)
        other = _make_model(5)
        set_flat_params(other, vector)
        np.testing.assert_allclose(get_flat_params(other), vector)

    def test_set_flat_params_wrong_size_raises(self):
        model = _make_model()
        with pytest.raises(ValueError):
            set_flat_params(model, np.zeros(3))

    def test_set_flat_params_copies_data(self):
        model = _make_model()
        vector = np.zeros(model.num_parameters())
        set_flat_params(model, vector)
        vector[:] = 5.0
        assert np.all(get_flat_params(model) == 0.0)

    def test_roundtrip_on_cnn(self):
        model = SmallCNN(in_channels=1, image_size=12, num_classes=10, width=4,
                         rng=np.random.default_rng(0))
        vector = get_flat_params(model)
        clone = SmallCNN(in_channels=1, image_size=12, num_classes=10, width=4,
                         rng=np.random.default_rng(1))
        set_flat_params(clone, vector)
        np.testing.assert_allclose(get_flat_params(clone), vector)

    def test_parameter_shapes_match_named_parameters(self):
        model = _make_model()
        shapes = parameter_shapes(model)
        for name, param in model.named_parameters():
            assert shapes[name] == param.data.shape


class TestDtypePolicy:
    """Flat vectors keep the native float32 dtype; float64 is an explicit opt-in."""

    def test_get_flat_params_defaults_to_native_float32(self):
        assert get_flat_params(_make_model()).dtype == np.float32

    def test_get_flat_params_float64_opt_in(self):
        model = _make_model()
        vector = get_flat_params(model, dtype=np.float64)
        assert vector.dtype == np.float64
        np.testing.assert_allclose(vector, get_flat_params(model), atol=1e-7)

    def test_state_dict_to_vector_keeps_native_dtype(self):
        model = _make_model()
        assert state_dict_to_vector(model.state_dict(), model).dtype == np.float32

    def test_vector_to_state_dict_casts_to_parameter_dtype(self):
        model = _make_model()
        state = vector_to_state_dict(np.zeros(model.num_parameters(), dtype=np.float64), model)
        assert all(value.dtype == np.float32 for value in state.values())

    def test_flat_buffer_is_contiguous(self):
        vector = get_flat_params(_make_model())
        assert vector.flags["C_CONTIGUOUS"]


class TestFlatParamsView:
    def test_named_slices_are_views(self):
        model = _make_model()
        flat = FlatParams.from_module(model)
        name, param = next(model.named_parameters())
        np.testing.assert_array_equal(flat[name], param.data)
        flat[name][...] = 7.0
        assert np.all(flat.vector[: param.data.size] == 7.0)  # same buffer

    def test_names_follow_parameter_order(self):
        model = _make_model()
        flat = FlatParams.from_module(model)
        assert flat.names() == [name for name, _ in model.named_parameters()]

    def test_roundtrip_through_module(self):
        source, target = _make_model(0), _make_model(9)
        flat = FlatParams.from_module(source)
        flat.write_to(target)
        np.testing.assert_array_equal(get_flat_params(target), flat.vector)

    def test_from_vector_validates_size(self):
        model = _make_model()
        with pytest.raises(ValueError):
            FlatParams.from_vector(np.zeros(3), model)

    def test_with_vector_reuses_layout(self):
        model = _make_model()
        flat = FlatParams.from_module(model)
        other = flat.with_vector(np.zeros_like(flat.vector))
        assert other.names() == flat.names()
        with pytest.raises(ValueError):
            flat.with_vector(np.zeros(3))

    def test_to_state_dict_matches_module_state(self):
        model = _make_model(4)
        flat = FlatParams.from_module(model)
        state = flat.to_state_dict()
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(state[name], param.data)

    def test_copy_is_deep(self):
        flat = FlatParams.from_module(_make_model())
        clone = flat.copy()
        clone.vector[:] = 0.0
        assert not np.all(flat.vector == 0.0)

    def test_nbytes_halved_vs_float64(self):
        model = _make_model()
        assert FlatParams.from_module(model).nbytes * 2 == (
            FlatParams.from_module(model, dtype=np.float64).nbytes
        )


class TestStateDictVector:
    def test_state_dict_vector_roundtrip(self):
        model = _make_model(3)
        state = model.state_dict()
        vector = state_dict_to_vector(state, model)
        recovered = vector_to_state_dict(vector, model)
        for name in state:
            np.testing.assert_allclose(state[name], recovered[name], atol=1e-6)

    def test_state_dict_to_vector_matches_get_flat_params(self):
        model = _make_model(4)
        np.testing.assert_allclose(
            state_dict_to_vector(model.state_dict(), model), get_flat_params(model), atol=1e-6
        )

    def test_missing_parameter_raises(self):
        model = _make_model()
        state = model.state_dict()
        key = next(iter(state))
        del state[key]
        with pytest.raises(KeyError):
            state_dict_to_vector(state, model)

    def test_shape_mismatch_raises(self):
        model = _make_model()
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            state_dict_to_vector(state, model)

    def test_vector_too_short_raises(self):
        model = _make_model()
        with pytest.raises(ValueError):
            vector_to_state_dict(np.zeros(model.num_parameters() - 1), model)

    def test_vector_too_long_raises(self):
        model = _make_model()
        with pytest.raises(ValueError):
            vector_to_state_dict(np.zeros(model.num_parameters() + 1), model)

    def test_clone_state_dict_is_deep(self):
        model = _make_model()
        state = model.state_dict()
        cloned = clone_state_dict(state)
        key = next(iter(state))
        cloned[key][:] = 123.0
        assert not np.allclose(state[key], 123.0)
