"""Tests for the whole-program analyzer and the sealed-array sanitizer.

Covers the project call graph (golden test over a synthetic package), the
fixpoint summaries, violating/clean fixture pairs for every
interprocedural rule family (RNG101, DT101, MUT001-003) asserting exact
rule IDs and lines, the ``--whole-program`` / ``--callgraph-json`` /
``--changed`` CLI surface, and the runtime cross-validation: a write to a
published broker view raises under ``REPRO_SANITIZE=1`` and the same
write is caught statically by MUT001.
"""

import ast
import json
import subprocess
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import lint_paths
from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.engine import load_context
from repro.analysis.summaries import summarize_program
from repro.cli import main as cli_main
from repro.fl.executor import (
    SharedArrayStore,
    SharedParamsLease,
    resolve_shared_array,
)
from repro.utils.sanitize import ENV_VAR, SealedArrayViolation, array_digest, seal

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def wp_lint(tmp_path, files, paths=("src",)):
    write_tree(tmp_path, files)
    return lint_paths([tmp_path / p for p in paths], whole_program=True)


def findings_of(report, rule_id):
    return [d for d in report.diagnostics if d.rule_id == rule_id]


def lines_of(report, rule_id):
    return [d.line for d in findings_of(report, rule_id)]


def contexts_for(tmp_path, files):
    write_tree(tmp_path, files)
    contexts = []
    for path in sorted(tmp_path.rglob("*.py")):
        ctx, error = load_context(path)
        assert error is None, error
        contexts.append(ctx)
    return contexts


# ----------------------------------------------------------------------
# Call graph golden test over a small synthetic package
# ----------------------------------------------------------------------
SYNTHETIC_PKG = {
    "src/pkg/__init__.py": """\
        from .a import outer
        """,
    "src/pkg/a.py": """\
        from .b import helper

        def outer(x):
            return helper(x)

        def unused(x):
            return outer(x)
        """,
    "src/pkg/b.py": """\
        def inner(x):
            return x + 1

        def helper(x):
            return inner(x)
        """,
    "src/pkg/c.py": """\
        class Box:
            def __init__(self, value):
                self._value = value

            def get(self):
                return self._value

            def double(self):
                return self.get() + self.get()
        """,
}


class TestCallGraph:
    def test_symbol_table_and_edges(self, tmp_path):
        contexts = contexts_for(tmp_path, SYNTHETIC_PKG)
        index = ProjectIndex(contexts)
        graph = CallGraph(index)
        assert set(index.functions) == {
            "pkg.a.outer",
            "pkg.a.unused",
            "pkg.b.inner",
            "pkg.b.helper",
            "pkg.c.Box.__init__",
            "pkg.c.Box.get",
            "pkg.c.Box.double",
        }
        assert graph.edges["pkg.a.outer"] == ("pkg.b.helper",)
        assert graph.edges["pkg.a.unused"] == ("pkg.a.outer",)
        assert graph.edges["pkg.b.helper"] == ("pkg.b.inner",)
        # self.method() resolves within the class
        assert graph.edges["pkg.c.Box.double"] == ("pkg.c.Box.get",)

    def test_reexport_alias_chases_to_definition(self, tmp_path):
        contexts = contexts_for(tmp_path, SYNTHETIC_PKG)
        index = ProjectIndex(contexts)
        info = index.resolve("pkg.outer")
        assert info is not None and info.qualname == "pkg.a.outer"

    def test_to_dict_is_json_ready_golden(self, tmp_path):
        contexts = contexts_for(tmp_path, SYNTHETIC_PKG)
        graph = CallGraph(ProjectIndex(contexts))
        payload = json.loads(json.dumps(graph.to_dict()))
        assert payload["version"] == 1
        outer = payload["functions"]["pkg.a.outer"]
        assert outer["module"] == "pkg.a"
        assert outer["line"] == 3
        assert outer["params"] == ["x"]
        assert outer["is_method"] is False
        box_get = payload["functions"]["pkg.c.Box.get"]
        assert box_get["is_method"] is True and box_get["params"] == ["self"]
        assert payload["edges"]["pkg.a.outer"] == ["pkg.b.helper"]

    def test_summaries_fixpoint_rng_taint(self, tmp_path):
        contexts = contexts_for(
            tmp_path,
            {
                "src/pkg/r.py": """\
                    import numpy as np

                    def source():
                        return np.random.default_rng()

                    def middle():
                        return source().random()

                    def top():
                        return middle() + 1.0

                    def seeded(seed):
                        return np.random.default_rng(seed).random()
                    """,
            },
        )
        index = ProjectIndex(contexts)
        summaries = summarize_program(index, CallGraph(index))
        assert summaries["pkg.r.source"].rng_source
        assert summaries["pkg.r.middle"].rng_tainted
        assert summaries["pkg.r.top"].rng_tainted
        assert summaries["pkg.r.top"].rng_via == "pkg.r.middle"
        assert not summaries["pkg.r.seeded"].rng_tainted


# ----------------------------------------------------------------------
# RNG101 — unseeded streams reaching science packages
# ----------------------------------------------------------------------
class TestRng101:
    def test_cross_module_chain_flagged_at_science_boundary(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/helpersx/__init__.py": "",
                "src/repro/helpersx/streams.py": """\
                    import numpy as np

                    def fresh_stream():
                        return np.random.default_rng()

                    def noise(shape):
                        return fresh_stream().standard_normal(shape)
                    """,
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/client.py": """\
                    from repro.helpersx.streams import noise

                    def perturb(update):
                        return update + noise(update.shape)
                    """,
            },
        )
        assert lines_of(report, "RNG101") == [4]
        (finding,) = findings_of(report, "RNG101")
        assert finding.path.endswith("src/repro/fl/client.py")
        assert "fresh_stream" in finding.message  # the chain is spelled out

    def test_direct_source_in_science_module_flagged(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/defenses/__init__.py": "",
                "src/repro/defenses/pick.py": """\
                    import numpy as np

                    def tiebreak(scores):
                        rng = np.random.default_rng()
                        return rng.permutation(len(scores))
                    """,
            },
        )
        assert lines_of(report, "RNG101") == [4]

    def test_sanctioned_idioms_are_exempt(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/clean.py": """\
                    import numpy as np

                    def fallback(rng=None):
                        rng = rng or np.random.default_rng()
                        return rng.standard_normal(3)

                    def restore(state):
                        rng = np.random.default_rng()
                        rng.bit_generator.state = state
                        return rng.random()

                    def seeded(seed):
                        return np.random.default_rng(seed).random()
                    """,
            },
        )
        assert report.ok, [d.render() for d in report.diagnostics]

    def test_pragma_suppresses_rng101(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/entropy.py": """\
                    import numpy as np

                    def salt():
                        # repro: allow[RNG101] non-science nonce fixture
                        return np.random.default_rng().integers(1 << 30)
                    """,
            },
        )
        assert report.ok and report.suppressed_pragma == 1


# ----------------------------------------------------------------------
# DT101 — float64 geometry traced through helper calls
# ----------------------------------------------------------------------
DT_FILES = {
    "src/repro/defenses/__init__.py": "",
    "src/repro/defenses/helpersx.py": """\
        import numpy as np

        def load_f64(x):
            return np.asarray(x, dtype=np.float64)

        def load_f32(x):
            return np.asarray(x, dtype=np.float32)
        """,
    "src/repro/defenses/geometry.py": """\
        import numpy as np
        from repro.defenses.helpersx import load_f32, load_f64

        def bad(a):
            rows = load_f32(a)
            return np.matmul(rows, rows.T)

        def good(a, b):
            left = load_f64(a)
            right = load_f64(b)
            return np.matmul(left, right.T)
        """,
}


class TestDt101:
    def test_float32_helper_flagged_float64_helper_clean(self, tmp_path):
        report = wp_lint(tmp_path, dict(DT_FILES))
        assert lines_of(report, "DT101") == [6]
        # DT001 is superseded in whole-program mode: no double report.
        assert findings_of(report, "DT001") == []

    def test_per_file_dt001_cannot_see_through_the_helper(self, tmp_path):
        write_tree(tmp_path, dict(DT_FILES))
        report = lint_paths([tmp_path / "src"])  # per-file mode
        # Function-locally *both* products are untraceable — the helper
        # refinement is exactly what DT101 adds.
        assert lines_of(report, "DT001") == [6, 11]

    def test_existing_dt001_pragma_also_suppresses_dt101(self, tmp_path):
        files = dict(DT_FILES)
        files["src/repro/defenses/geometry.py"] = """\
            import numpy as np
            from repro.defenses.helpersx import load_f32

            def bad(a):
                rows = load_f32(a)
                # repro: allow[DT001] fixture: float32 by documented contract
                return np.matmul(rows, rows.T)
            """
        report = wp_lint(tmp_path, files)
        assert report.ok and report.suppressed_pragma == 1


# ----------------------------------------------------------------------
# MUT001-003 — mutation safety of the shm data plane
# ----------------------------------------------------------------------
class TestMut001:
    def test_writes_through_resolved_views_flagged(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/use.py": """\
                    from repro.fl.executor import resolve_shared_array

                    def stomp(ref, batch):
                        view = resolve_shared_array(ref)
                        view[0] = 1.0
                        view -= batch
                        view.fill(0.0)
                        view.setflags(write=True)
                        return view
                    """,
            },
        )
        assert lines_of(report, "MUT001") == [5, 6, 7, 8]

    def test_broker_task_attribute_chain_flagged(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/experiments/__init__.py": "",
                "src/repro/experiments/cell.py": """\
                    from repro.experiments.dispatch import resolve_task

                    def poison(config):
                        task = resolve_task(config)
                        task.train.images[0] = 0.0
                        images = task.train.images
                        images[:] = 0.0
                        return task
                    """,
            },
        )
        assert lines_of(report, "MUT001") == [5, 7]

    def test_copy_before_write_is_clean(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/use.py": """\
                    from repro.fl.executor import resolve_shared_array

                    def adjust(ref):
                        scratch = resolve_shared_array(ref).copy()
                        scratch[0] = 1.0
                        scratch -= scratch.mean()
                        return scratch
                    """,
            },
        )
        assert report.ok, [d.render() for d in report.diagnostics]

    def test_sealing_flags_assignment_is_not_a_mutation(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/use.py": """\
                    from repro.fl.executor import resolve_shared_array

                    def attach(ref):
                        view = resolve_shared_array(ref)
                        view.flags.writeable = False
                        return view
                    """,
            },
        )
        assert report.ok, [d.render() for d in report.diagnostics]


class TestMut002:
    FILES = {
        "src/repro/fl/__init__.py": "",
        "src/repro/fl/ops.py": """\
            def scale_inplace(arr, factor):
                arr *= factor
                return arr

            def normalize(arr):
                return scale_inplace(arr, 0.5)
            """,
        "src/repro/fl/use.py": """\
            from repro.fl.executor import resolve_shared_array
            from repro.fl.ops import normalize, scale_inplace

            def direct(ref):
                view = resolve_shared_array(ref)
                return scale_inplace(view, 2.0)

            def transitive(ref):
                view = resolve_shared_array(ref)
                return normalize(view)
            """,
    }

    def test_direct_and_transitive_escapes_flagged(self, tmp_path):
        report = wp_lint(tmp_path, dict(self.FILES))
        assert lines_of(report, "MUT002") == [6, 10]
        direct, transitive = findings_of(report, "MUT002")
        assert "scale_inplace" in direct.message
        assert "via repro.fl.ops.scale_inplace" in transitive.message

    def test_passing_a_copy_is_clean(self, tmp_path):
        files = dict(self.FILES)
        files["src/repro/fl/use.py"] = """\
            from repro.fl.executor import resolve_shared_array
            from repro.fl.ops import normalize

            def safe(ref):
                view = resolve_shared_array(ref)
                return normalize(view.copy())
            """
        report = wp_lint(tmp_path, files)
        assert report.ok, [d.render() for d in report.diagnostics]


class TestMut003:
    def test_registered_fanout_kernel_mutating_input_flagged(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/kern.py": """\
                    from repro.fl.executor import register_fanout_fn

                    def block_stat(block, out):
                        block -= block.mean()
                        out[:] = block
                        return out

                    register_fanout_fn("repro.fl.kern:block_stat", block_stat)
                    """,
            },
        )
        # only the *input* write is a finding; ``out`` is the kernel's
        # designated output buffer
        assert lines_of(report, "MUT003") == [4]
        (finding,) = findings_of(report, "MUT003")
        assert "'block'" in finding.message

    def test_registered_trace_kernel_mutating_input_flagged(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/nn/__init__.py": "",
                "src/repro/nn/tkern.py": """\
                    from repro.nn.trace import register_trace_op

                    def fwd(xp, x):
                        x[0] = 1.0
                        return x

                    def vjp(xp, grad):
                        return grad

                    register_trace_op("poke", fwd, vjp)
                    """,
            },
        )
        assert lines_of(report, "MUT003") == [4]

    def test_pure_kernel_is_clean(self, tmp_path):
        report = wp_lint(
            tmp_path,
            {
                "src/repro/fl/__init__.py": "",
                "src/repro/fl/kern.py": """\
                    from repro.fl.executor import register_fanout_fn

                    def block_stat(block, out):
                        local = block - block.mean()
                        out[:] = local
                        return out

                    register_fanout_fn("repro.fl.kern:block_stat", block_stat)
                    """,
            },
        )
        assert report.ok, [d.render() for d in report.diagnostics]


# ----------------------------------------------------------------------
# CLI surface: --whole-program / --callgraph-json / --changed
# ----------------------------------------------------------------------
class TestWholeProgramCli:
    def test_whole_program_exit_and_callgraph_json(self, tmp_path, capsys):
        write_tree(tmp_path, SYNTHETIC_PKG)
        graph_path = tmp_path / "out" / "callgraph.json"
        code = cli_main(
            [
                "lint",
                "--whole-program",
                "--callgraph-json",
                str(graph_path),
                str(tmp_path / "src"),
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(graph_path.read_text())
        assert payload["edges"]["pkg.a.outer"] == ["pkg.b.helper"]

    def test_callgraph_json_requires_whole_program(self, tmp_path, capsys):
        code = cli_main(["lint", "--callgraph-json", str(tmp_path / "g.json")])
        assert code == 2
        assert "--whole-program" in capsys.readouterr().err

    def test_whole_program_finding_fails_the_run(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "src/repro/defenses/__init__.py": "",
                "src/repro/defenses/pick.py": """\
                    import numpy as np

                    def tiebreak(scores):
                        return np.random.default_rng().permutation(len(scores))
                    """,
            },
        )
        code = cli_main(["lint", "--whole-program", str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert code == 1 and "RNG101" in out

    def test_changed_lints_only_git_changed_files(self, tmp_path, capsys, monkeypatch):
        write_tree(
            tmp_path,
            {
                "src/repro/fl/clean.py": "x = 1\n",
                "src/repro/fl/dirty.py": "import random\n",
            },
        )
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@x", "HOME": str(tmp_path)}
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True, env=env)
        subprocess.run(["git", "add", "src/repro/fl/clean.py"], cwd=tmp_path, check=True, env=env)
        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@x", "commit", "-qm", "seed"],
            cwd=tmp_path,
            check=True,
            env=env,
        )
        monkeypatch.chdir(tmp_path)
        # Only dirty.py is untracked/changed; clean.py is committed and
        # untouched, so --changed lints exactly one file and fails on it.
        code = cli_main(["lint", "--changed", "src"])
        out = capsys.readouterr().out
        assert code == 1
        assert "dirty.py" in out and "clean.py" not in out
        assert "1 file(s)" in out

    def test_changed_outside_git_is_a_noop(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent.git"))
        code = cli_main(["lint", "--changed", "src"])
        captured = capsys.readouterr()
        assert code == 0
        assert "not a git checkout" in captured.err


# ----------------------------------------------------------------------
# Runtime cross-validation: the sealed-array sanitizer
# ----------------------------------------------------------------------
class TestSanitizer:
    def test_sealed_view_rejects_in_place_write(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        store = SharedArrayStore({"x": np.arange(6, dtype=np.float32)})
        try:
            view = resolve_shared_array(store.refs["x"])
            with pytest.raises(ValueError):
                view[0] = 99.0  # repro: allow[MUT001] asserting the seal rejects this
            del view
        finally:
            store.close()

    def test_bypass_write_trips_digest_verification_at_close(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        # repro: allow[SHM001] released below; close() itself is under test
        store = SharedArrayStore({"x": np.arange(6, dtype=np.float32)})
        ref = store.refs["x"]
        # Re-wrap the raw buffer: defeats the sealed writeable flag, which
        # is exactly what the digest re-verification exists to catch.
        raw = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=store._shm.buf, offset=ref.offset
        )
        raw[0] = 123.0
        del raw
        with pytest.raises(SealedArrayViolation) as excinfo:
            store.close()
        assert "x" in str(excinfo.value)
        store.close()  # idempotent after the violation; segment released

    def test_lease_release_verifies_params_segment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        # repro: allow[SHM001] release() itself is under test and must raise
        lease = SharedParamsLease(np.arange(8, dtype=np.float32))
        raw = np.ndarray((8,), dtype=np.float32, buffer=lease._store._shm.buf)
        raw[3] = -1.0
        del raw
        with pytest.raises(SealedArrayViolation):
            lease.release()

    def test_disabled_sanitizer_records_and_checks_nothing(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        # repro: allow[SHM001] closed two lines down; nothing here can raise
        store = SharedArrayStore({"x": np.arange(6, dtype=np.float32)})
        assert store._digests == {}
        raw = np.ndarray((6,), dtype=np.float32, buffer=store._shm.buf)
        raw[0] = 7.0
        del raw
        store.close()  # no digests, no violation

    def test_broker_view_write_raises_and_is_caught_statically(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(ENV_VAR, "1")
        from repro.experiments import smoke_scale
        from repro.experiments.dispatch import DatasetBroker, resolve_task

        config = smoke_scale(attack="lie", defense="median", num_rounds=1)
        with DatasetBroker() as broker:
            broker.publish([config])
            task = resolve_task(config)
            assert task is not None
            # Runtime: the broker view is sealed; writing raises at the site.
            with pytest.raises(ValueError):
                task.train.images[0] = 0.0  # repro: allow[MUT001] asserting the seal
        # Static: the same write is a MUT001 finding.
        report = wp_lint(
            tmp_path,
            {
                "src/repro/experiments/__init__.py": "",
                "src/repro/experiments/cell.py": """\
                    from repro.experiments.dispatch import resolve_task

                    def poison(config):
                        task = resolve_task(config)
                        task.train.images[0] = 0.0
                        return task
                    """,
            },
        )
        assert lines_of(report, "MUT001") == [5]

    def test_array_digest_is_content_sensitive(self):
        a = np.arange(6, dtype=np.float32)
        b = a.copy()
        assert array_digest(a) == array_digest(b)
        b[0] = 5.0
        assert array_digest(a) != array_digest(b)
        assert array_digest(a) != array_digest(a.astype(np.float64))

    def test_seal_marks_read_only(self):
        a = np.arange(3, dtype=np.float32)
        assert seal(a) is a
        with pytest.raises(ValueError):
            a[0] = 1.0


# ----------------------------------------------------------------------
# The shipped tree is whole-program-clean with an empty baseline
# ----------------------------------------------------------------------
class TestWholeProgramSelfLint:
    def test_shipped_tree_is_whole_program_clean(self):
        report = lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "tests",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "examples",
            ],
            whole_program=True,
        )
        rendered = "\n".join(d.render() for d in report.diagnostics)
        assert report.ok, f"whole-program findings on the shipped tree:\n{rendered}"
        assert report.files_checked > 100

    def test_shipped_callgraph_resolves_core_edges(self):
        contexts = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            ctx, error = load_context(path)
            assert error is None
            contexts.append(ctx)
        index = ProjectIndex(contexts)
        graph = CallGraph(index)
        # Spot-check a known cross-module resolution: ShardRef.resolve
        # calls resolve_shared_array in the same module.
        edges = graph.edges.get("repro.fl.executor.ShardRef.resolve", ())
        assert "repro.fl.executor.resolve_shared_array" in edges
        summaries = summarize_program(index, graph)
        # ShardRef.resolve returns a resolve_shared_array(...) call — a
        # registered view producer — so its summary carries view-ness.
        assert summaries["repro.fl.executor.ShardRef.resolve"].returns_view
        assert "repro.fl.executor.resolve_shared_array" in summaries
