"""Tests for the autograd Tensor: arithmetic, broadcasting and backward passes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import DEFAULT_DTYPE, Tensor, is_grad_enabled, no_grad

from helpers import numerical_gradient


class TestConstruction:
    def test_from_list_uses_default_dtype(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == DEFAULT_DTYPE
        assert t.shape == (3,)

    def test_from_float64_array_preserves_dtype(self):
        t = Tensor(np.zeros(4, dtype=np.float64))
        assert t.dtype == np.float64

    def test_from_int_array_converts_to_float(self):
        t = Tensor(np.arange(5))
        assert np.issubdtype(t.dtype, np.floating)

    def test_from_numpy_scalar_preserves_float64(self):
        t = Tensor(np.float64(3.5))
        assert t.dtype == np.float64
        assert t.item() == pytest.approx(3.5)

    def test_from_tensor_shares_data(self):
        base = Tensor(np.ones(3))
        again = Tensor(base)
        assert np.shares_memory(base.data, again.data)

    def test_zeros_and_ones_constructors(self):
        z = Tensor.zeros((2, 3))
        o = Tensor.ones((2, 3), requires_grad=True)
        assert np.all(z.data == 0)
        assert np.all(o.data == 1)
        assert o.requires_grad

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_detach_and_copy(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        c = t.copy()
        assert not d.requires_grad and not c.requires_grad
        assert np.shares_memory(d.data, t.data)
        assert not np.shares_memory(c.data, t.data)


class TestBackwardBasics:
    def test_backward_requires_grad_flag(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        y = t * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        y = t * 3.0
        y.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [3.0, 6.0, 9.0])

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0, 4.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_reused_node_accumulates_gradient(self):
        # Diamond graph: y = x*x used twice in the same expression.
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        # Pooled inference threads (REFD fan-out over a ThreadedExecutor)
        # enter no_grad concurrently with the main thread; the switch must
        # not leak across threads — a process-global flag with save/restore
        # could leave gradient recording permanently disabled after a race.
        import threading

        entered = threading.Event()
        release = threading.Event()
        worker_state = {}

        def worker():
            with no_grad():
                worker_state["inside"] = is_grad_enabled()
                entered.set()
                release.wait(timeout=5)
            worker_state["after"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5)
        assert is_grad_enabled()  # main thread unaffected while worker is inside
        release.set()
        thread.join(timeout=5)
        assert worker_state == {"inside": False, "after": True}
        assert is_grad_enabled()

    def test_constant_branch_gets_no_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        c = Tensor(np.full(3, 2.0))
        y = (x * c).sum()
        y.backward()
        assert c.grad is None
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])


class TestArithmetic:
    def test_add_and_radd(self):
        x = Tensor(np.array([1.0, 2.0]))
        assert np.allclose((x + 1.0).data, [2.0, 3.0])
        assert np.allclose((1.0 + x).data, [2.0, 3.0])

    def test_sub_and_rsub(self):
        x = Tensor(np.array([1.0, 2.0]))
        assert np.allclose((x - 1.0).data, [0.0, 1.0])
        assert np.allclose((5.0 - x).data, [4.0, 3.0])

    def test_mul_div_neg_pow_values(self):
        x = Tensor(np.array([2.0, 4.0]))
        assert np.allclose((x * 3.0).data, [6.0, 12.0])
        assert np.allclose((x / 2.0).data, [1.0, 2.0])
        assert np.allclose((8.0 / x).data, [4.0, 2.0])
        assert np.allclose((-x).data, [-2.0, -4.0])
        assert np.allclose((x ** 2).data, [4.0, 16.0])

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor(np.ones(2))
        with pytest.raises(TypeError):
            _ = x ** Tensor(np.ones(2))

    def test_matmul_2d_values(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        b = Tensor(np.array([[5.0, 6.0], [7.0, 8.0]]))
        np.testing.assert_allclose((a @ b).data, np.array([[19.0, 22.0], [43.0, 50.0]]))

    @pytest.mark.parametrize(
        "op",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a / b,
        ],
    )
    def test_binary_op_gradients(self, op, rng):
        a_data = rng.standard_normal((3, 4)) + 2.0
        b_data = rng.standard_normal((3, 4)) + 2.0
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (op(a, b) ** 2).sum().backward()

        def value():
            return float((op(Tensor(a.data), Tensor(b.data)).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, a.data), a.grad, atol=1e-6)
        np.testing.assert_allclose(numerical_gradient(value, b.data), b.grad, atol=1e-6)

    def test_broadcast_add_gradient_shapes(self, rng):
        a = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_broadcast_mul_gradient_values(self, rng):
        a_data = rng.standard_normal((2, 3))
        b_data = rng.standard_normal((1, 3))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b_data, (2, 3)))
        np.testing.assert_allclose(b.grad, a_data.sum(axis=0, keepdims=True))

    def test_matmul_gradient(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        def value():
            return float(((Tensor(a.data) @ Tensor(b.data)).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, a.data), a.grad, atol=1e-6)
        np.testing.assert_allclose(numerical_gradient(value, b.data), b.grad, atol=1e-6)


class TestReductions:
    def test_sum_all(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        s = x.sum()
        assert s.item() == pytest.approx(15.0)
        s.backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        s = x.sum(axis=1, keepdims=True)
        assert s.shape == (2, 1)
        s.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_axis_gradient(self, rng):
        x = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        (x.mean(axis=0) ** 2).sum().backward()

        def value():
            return float((Tensor(x.data).data.mean(axis=0) ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-6)

    def test_mean_all_value(self):
        x = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        assert x.mean().item() == pytest.approx(2.5)

    def test_max_all_gradient_flows_to_maximum(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis_value(self):
        x = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]))
        np.testing.assert_allclose(x.max(axis=1).data, [2.0, 4.0])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        y = x.reshape(3, 4).reshape((2, 6))
        (y * y).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)

    def test_flatten_batch(self):
        x = Tensor(np.zeros((4, 2, 3, 3)))
        assert x.flatten_batch().shape == (4, 18)

    def test_transpose_default_and_axes(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        assert x.transpose().shape == (4, 3, 2)
        y = x.transpose((1, 0, 2))
        assert y.shape == (3, 2, 4)
        (y * y).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)

    def test_T_property(self):
        x = Tensor(np.zeros((2, 5)))
        assert x.T.shape == (5, 2)

    def test_getitem_basic_and_gradient(self):
        x = Tensor(np.arange(10, dtype=np.float64), requires_grad=True)
        y = x[2:5]
        np.testing.assert_allclose(y.data, [2.0, 3.0, 4.0])
        y.sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_fancy_duplicate_indices_accumulate(self):
        x = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        idx = np.array([1, 1, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 2.0, 1.0, 0.0])


class TestElementwiseFunctions:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: x.exp(),
            lambda x: x.tanh(),
            lambda x: x.sigmoid(),
            lambda x: x.relu(),
            lambda x: x.leaky_relu(0.1),
            lambda x: x.abs(),
        ],
    )
    def test_unary_gradients(self, fn, rng):
        x = Tensor(rng.standard_normal((3, 4)) + 0.1, requires_grad=True)
        (fn(x) ** 2).sum().backward()

        def value():
            return float((fn(Tensor(x.data)).data ** 2).sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-5)

    def test_log_and_sqrt_gradients(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        (x.log() + x.sqrt()).sum().backward()

        def value():
            data = Tensor(x.data)
            return float((data.log() + data.sqrt()).data.sum())

        np.testing.assert_allclose(numerical_gradient(value, x.data), x.grad, atol=1e-6)

    def test_relu_zeroes_negative(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(x.relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self, rng):
        x = Tensor(rng.standard_normal(100) * 10)
        s = x.sigmoid().data
        assert np.all((s > 0) & (s < 1))

    def test_clip_gradient_mask(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_norm_matches_numpy(self, rng):
        data = rng.standard_normal((4, 5))
        x = Tensor(data.copy(), requires_grad=True)
        n = x.norm()
        assert n.item() == pytest.approx(np.linalg.norm(data), rel=1e-6)
        n.backward()
        np.testing.assert_allclose(x.grad, data / np.linalg.norm(data), atol=1e-6)
