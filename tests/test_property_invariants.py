"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.data.dataset import ArrayDataset
from repro.data.partition import DirichletPartitioner, IidPartitioner
from repro.defenses import Bulyan, Median, MultiKrum, TrimmedMean, d_score
from repro.defenses.krum import krum_scores
from repro.fl.aggregation import fedavg
from repro.fl.types import DefenseContext, ModelUpdate
from repro.metrics import attack_success_rate
from repro.nn import functional as F
from repro.nn.serialization import get_flat_params, set_flat_params
from repro.nn.tensor import Tensor

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _context(dim: int, num_malicious: int = 1) -> DefenseContext:
    return DefenseContext(
        round_number=0,
        global_params=np.zeros(dim),
        expected_num_malicious=num_malicious,
        rng=np.random.default_rng(0),
    )


# ----------------------------------------------------------------------
# Tensor / autograd invariants
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=5),
               elements=st.floats(-10, 10)),
)
def test_softmax_rows_are_probability_distributions(data):
    probs = F.softmax(Tensor(data), axis=-1).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-6)


@_SETTINGS
@given(
    hnp.arrays(np.float64, (4, 6), elements=st.floats(-5, 5)),
    hnp.arrays(np.float64, (4, 6), elements=st.floats(-5, 5)),
)
def test_addition_gradient_is_identity_for_both_operands(a, b):
    ta = Tensor(a.copy(), requires_grad=True)
    tb = Tensor(b.copy(), requires_grad=True)
    (ta + tb).sum().backward()
    np.testing.assert_allclose(ta.grad, np.ones_like(a))
    np.testing.assert_allclose(tb.grad, np.ones_like(b))


@_SETTINGS
@given(
    hnp.arrays(np.float64, (3, 4), elements=st.floats(-3, 3)),
    st.integers(min_value=0, max_value=3),
)
def test_cross_entropy_nonnegative_and_consistent_with_soft_targets(logits, label):
    targets = np.full(3, label, dtype=np.int64)
    hard = F.cross_entropy(Tensor(logits), targets).item()
    soft = F.soft_cross_entropy(Tensor(logits), F.one_hot(targets, 4)).item()
    assert hard >= 0.0
    assert hard == pytest.approx(soft, rel=1e-5, abs=1e-6)


@_SETTINGS
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=1000))
def test_flat_parameter_roundtrip(hidden_scale, seed):
    model = nn.Sequential(
        nn.Linear(5, 4 * hidden_scale, rng=np.random.default_rng(seed)),
        nn.ReLU(),
        nn.Linear(4 * hidden_scale, 3, rng=np.random.default_rng(seed + 1)),
    )
    vector = get_flat_params(model)
    clone = nn.Sequential(
        nn.Linear(5, 4 * hidden_scale, rng=np.random.default_rng(seed + 2)),
        nn.ReLU(),
        nn.Linear(4 * hidden_scale, 3, rng=np.random.default_rng(seed + 3)),
    )
    set_flat_params(clone, vector)
    np.testing.assert_allclose(get_flat_params(clone), vector)


# ----------------------------------------------------------------------
# Aggregation / defense invariants
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    hnp.arrays(np.float64, (5, 8), elements=st.floats(-100, 100)),
    hnp.arrays(np.int64, (5,), elements=st.integers(1, 50)),
)
def test_fedavg_is_convex_combination(matrix, samples):
    updates = [
        ModelUpdate(client_id=i, parameters=row, num_samples=int(n))
        for i, (row, n) in enumerate(zip(matrix, samples))
    ]
    aggregated = fedavg(updates)
    assert np.all(aggregated <= matrix.max(axis=0) + 1e-9)
    assert np.all(aggregated >= matrix.min(axis=0) - 1e-9)


@_SETTINGS
@given(hnp.arrays(np.float64, (7, 5), elements=st.floats(-50, 50)))
def test_median_and_trimmed_mean_bounded_by_update_range(matrix):
    updates = [
        ModelUpdate(client_id=i, parameters=row, num_samples=1) for i, row in enumerate(matrix)
    ]
    context = _context(5, num_malicious=2)
    for defense in (Median(), TrimmedMean()):
        result = defense.aggregate(updates, context)
        assert np.all(result.new_params <= matrix.max(axis=0) + 1e-9)
        assert np.all(result.new_params >= matrix.min(axis=0) - 1e-9)


@_SETTINGS
@given(hnp.arrays(np.float64, (8, 6), elements=st.floats(-20, 20)), st.integers(0, 1000))
def test_krum_scores_permutation_equivariance(matrix, seed):
    scores = krum_scores(matrix, 2)
    permutation = np.random.default_rng(seed).permutation(matrix.shape[0])
    permuted_scores = krum_scores(matrix[permutation], 2)
    np.testing.assert_allclose(permuted_scores, scores[permutation], rtol=1e-7, atol=1e-6)


@_SETTINGS
@given(hnp.arrays(np.float64, (9, 4), elements=st.floats(-10, 10)))
def test_selecting_defenses_accept_subset_of_submitted_clients(matrix):
    updates = [
        ModelUpdate(client_id=10 + i, parameters=row, num_samples=1)
        for i, row in enumerate(matrix)
    ]
    context = _context(4, num_malicious=2)
    for defense in (MultiKrum(), Bulyan()):
        result = defense.aggregate(updates, context)
        accepted = set(result.accepted_client_ids)
        assert accepted <= {u.client_id for u in updates}
        assert len(accepted) >= 1


@_SETTINGS
@given(st.floats(0.01, 1.0), st.floats(0.01, 1.0))
def test_d_score_bounded_by_components(balance, confidence):
    score = d_score(balance, confidence)
    assert 0.0 <= score <= max(balance, confidence) + 1e-9
    # Symmetric at alpha = 1.
    assert score == pytest.approx(d_score(confidence, balance), rel=1e-9)


@_SETTINGS
@given(st.floats(0.05, 1.0), st.floats(0.0, 1.0))
def test_attack_success_rate_bounds(clean, attacked):
    asr = attack_success_rate(clean, attacked)
    assert asr <= 100.0
    if attacked <= clean:
        assert asr >= 0.0


# ----------------------------------------------------------------------
# Partitioning invariants
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    st.integers(min_value=40, max_value=150),
    st.integers(min_value=2, max_value=8),
    st.floats(min_value=0.1, max_value=5.0),
    st.integers(min_value=0, max_value=10_000),
)
def test_dirichlet_partition_is_a_partition(num_samples, num_clients, beta, seed):
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, 1, 8, 8), dtype=np.float32)
    labels = np.arange(num_samples) % 5
    dataset = ArrayDataset(images, labels)
    shards = DirichletPartitioner(beta=beta, min_samples_per_client=1).split(
        dataset, num_clients, rng
    )
    all_indices = np.sort(np.concatenate([shard.indices for shard in shards]))
    np.testing.assert_array_equal(all_indices, np.arange(num_samples))


@_SETTINGS
@given(
    st.integers(min_value=10, max_value=100),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=10_000),
)
def test_iid_partition_is_balanced(num_samples, num_clients, seed):
    rng = np.random.default_rng(seed)
    images = np.zeros((num_samples, 1, 8, 8), dtype=np.float32)
    labels = np.arange(num_samples) % 3
    dataset = ArrayDataset(images, labels)
    shards = IidPartitioner().split(dataset, num_clients, rng)
    sizes = [len(shard) for shard in shards]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == num_samples
