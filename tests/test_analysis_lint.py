"""Tests for the contract linter (``repro.analysis`` / ``repro lint``).

Every rule family gets a violating/clean fixture pair asserting exact rule
IDs and line numbers; the engine machinery (pragmas, baseline round-trip,
module derivation) and the CLI surface are covered; and a self-lint test
pins the shipped tree to zero findings so contract regressions fail CI
with a precise ``file:line:col RULE-ID`` diagnostic.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Diagnostic,
    default_rules,
    lint_paths,
    module_name_for,
)
from repro.analysis.engine import lint_file
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]

TYPED_CORE = [
    "src/repro/fl/types.py",
    "src/repro/nn/serialization.py",
    "src/repro/experiments/config.py",
    "src/repro/fl/dispatch_policy.py",
    "src/repro/analysis/engine.py",
    "src/repro/analysis/callgraph.py",
    "src/repro/analysis/summaries.py",
]


def lint_snippet(tmp_path, relpath, source):
    """Write a dedented snippet at ``relpath`` and lint it with all rules."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path])


def findings_of(report, rule_id):
    return [d for d in report.diagnostics if d.rule_id == rule_id]


def lines_of(report, rule_id):
    return [d.line for d in findings_of(report, rule_id)]


# ----------------------------------------------------------------------
# Engine machinery
# ----------------------------------------------------------------------
class TestEngine:
    def test_diagnostic_renders_file_line_col_rule_message(self):
        diag = Diagnostic("src/x.py", 3, 7, "RNG001", "no global RNG")
        assert diag.render() == "src/x.py:3:7 RNG001 no global RNG"

    def test_module_name_derivation(self):
        assert module_name_for(Path("src/repro/fl/types.py")) == "repro.fl.types"
        assert module_name_for(Path("/a/b/src/repro/nn/__init__.py")) == "repro.nn"
        assert module_name_for(Path("tests/test_grid.py")) == "tests.test_grid"
        assert module_name_for(Path("scripts/tool.py")) is None

    def test_rule_ids_are_unique_and_documented(self):
        rules = default_rules()
        ids = [rule.rule_id for rule in rules]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)
        for rule in rules:
            assert rule.contract, f"{rule.rule_id} has no contract text"

    def test_syntax_error_reports_eng002(self, tmp_path):
        report = lint_snippet(tmp_path, "src/repro/fl/broken.py", "def f(:\n")
        assert [d.rule_id for d in report.diagnostics] == ["ENG002"]

    def test_files_are_visited_in_sorted_order(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("import random\n")
        report = lint_paths([tmp_path])
        assert [Path(d.path).name for d in report.diagnostics] == [
            "a.py",
            "b.py",
            "c.py",
        ]


class TestPragmas:
    VIOLATION = textwrap.dedent(
        """\
        import numpy as np

        def f():
            np.random.seed(0)
        """
    )

    def test_unsuppressed_violation_is_reported(self, tmp_path):
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", self.VIOLATION)
        assert lines_of(report, "RNG001") == [4]

    def test_same_line_pragma_suppresses(self, tmp_path):
        source = self.VIOLATION.replace(
            "np.random.seed(0)",
            "np.random.seed(0)  # repro: allow[RNG001] fixture",
        )
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.ok
        assert report.suppressed_pragma == 1

    def test_comment_line_above_suppresses(self, tmp_path):
        source = self.VIOLATION.replace(
            "    np.random.seed(0)",
            "    # repro: allow[RNG001] fixture\n    np.random.seed(0)",
        )
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.ok and report.suppressed_pragma == 1

    def test_multi_line_comment_block_pragma_covers_first_code_line(self, tmp_path):
        source = self.VIOLATION.replace(
            "    np.random.seed(0)",
            "    # repro: allow[RNG001] a justification that needs\n"
            "    # a second comment line to fit\n"
            "    np.random.seed(0)",
        )
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.ok and report.suppressed_pragma == 1

    def test_wildcard_and_multi_id_pragmas(self, tmp_path):
        source = """\
        import numpy as np
        import random  # repro: allow[*] wildcard fixture

        def f():
            np.random.seed(0)  # repro: allow[RNG001, RNG004] multi-id fixture
        """
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.ok and report.suppressed_pragma == 2

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        source = self.VIOLATION.replace(
            "np.random.seed(0)",
            "np.random.seed(0)  # repro: allow[DT001] wrong id",
        )
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert lines_of(report, "RNG001") == [4]

    DECORATED = textwrap.dedent(
        """\
        import functools
        import numpy as np

        @functools.lru_cache(maxsize=None)
        def f():
            np.random.seed(0)
        """
    )

    def test_decorated_def_violation_is_reported(self, tmp_path):
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", self.DECORATED)
        assert lines_of(report, "RNG001") == [6]

    def test_block_pragma_above_decorator_suppresses(self, tmp_path):
        source = self.DECORATED.replace(
            "np.random.seed(0)",
            "np.random.seed(0)  # repro: allow[RNG001] fixture",
        )
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.ok and report.suppressed_pragma == 1

    def test_pragma_above_decorator_covers_def_line_finding(self, tmp_path):
        # The finding anchors on the ``def`` line (a mutable default), but
        # the natural place for the pragma is above the decorator stack.
        source = """\
        import functools
        import numpy as np

        # repro: allow[RNG001] fixture: pragma above the decorator
        @functools.lru_cache(maxsize=None)
        def f(noise=np.random.rand(3)):
            return noise
        """
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.ok and report.suppressed_pragma == 1

    def test_pragma_above_multiline_decorator_covers_def_line(self, tmp_path):
        source = """\
        import functools
        import numpy as np

        # repro: allow[RNG001] fixture: multi-line decorator call
        @functools.lru_cache(
            maxsize=None,
        )
        def f(noise=np.random.rand(3)):
            return noise
        """
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.ok and report.suppressed_pragma == 1

    def test_pragma_above_decorator_does_not_leak_past_the_def(self, tmp_path):
        source = """\
        import functools
        import numpy as np

        # repro: allow[RNG001] fixture
        @functools.lru_cache(maxsize=None)
        def f(noise=np.random.rand(3)):
            return noise

        def g():
            np.random.seed(0)
        """
        report = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert report.suppressed_pragma == 1
        assert lines_of(report, "RNG001") == [10]


class TestBaseline:
    def test_round_trip_suppresses_then_catches_new_findings(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/a.py",
            """\
            import random
            import numpy as np

            def f():
                np.random.seed(0)
            """,
        )
        assert len(report.diagnostics) == 2
        baseline_path = tmp_path / "lint-baseline.json"
        Baseline.from_diagnostics(report.diagnostics).save(baseline_path)

        loaded = Baseline.load(baseline_path)
        fresh, suppressed = loaded.filter(report.diagnostics)
        assert fresh == [] and suppressed == 2

        # A *new* violation of an already-baselined rule still fails.
        source_path = tmp_path / "src/repro/fl/a.py"
        source_path.write_text(
            source_path.read_text() + "\n\ndef g():\n    np.random.rand(3)\n"
        )
        report2 = lint_paths([source_path], baseline=loaded)
        assert report2.suppressed_baseline == 2
        assert [d.rule_id for d in report2.diagnostics] == ["RNG001"]
        assert "rand" in report2.diagnostics[0].message

    def test_missing_baseline_file_suppresses_nothing(self, tmp_path):
        loaded = Baseline.load(tmp_path / "absent.json")
        assert loaded.counts == {}


# ----------------------------------------------------------------------
# RNG discipline
# ----------------------------------------------------------------------
class TestRngRules:
    def test_rng001_global_state_calls(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/a.py",
            """\
            import numpy as np
            from numpy.random import shuffle

            def f():
                np.random.seed(0)
                np.random.shuffle([1, 2])
                return np.random.rand(3)
            """,
        )
        assert lines_of(report, "RNG001") == [2, 5, 6, 7]

    def test_rng001_clean_generator_usage(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/a.py",
            """\
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(3)
            """,
        )
        assert report.ok

    def test_rng002_stdlib_random(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/experiments/a.py",
            """\
            import random
            from random import choice
            """,
        )
        assert lines_of(report, "RNG002") == [1, 2]

    def test_rng003_entropy_in_science_package(self, tmp_path):
        source = """\
        import time
        import uuid

        def f():
            return time.time(), uuid.uuid4()

        def deadline():
            return time.monotonic()
        """
        science = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert lines_of(science, "RNG003") == [5, 5]
        # The same calls outside a science package are legitimate
        # (lease heartbeats, tmp names) and not flagged.
        infra = lint_snippet(tmp_path, "src/repro/experiments/b.py", source)
        assert findings_of(infra, "RNG003") == []

    def test_rng004_seed_construction_only_in_the_seam(self, tmp_path):
        source = """\
        import numpy as np

        def f(seed):
            ss = np.random.SeedSequence(seed)
            return np.random.Generator(np.random.PCG64(ss))
        """
        elsewhere = lint_snippet(tmp_path, "src/repro/fl/a.py", source)
        assert lines_of(elsewhere, "RNG004") == [4, 5, 5]
        seam = lint_snippet(tmp_path, "src/repro/utils/rng.py", source)
        assert findings_of(seam, "RNG004") == []


# ----------------------------------------------------------------------
# Dtype contract
# ----------------------------------------------------------------------
class TestDtypeRules:
    def test_dt001_untracked_einsum_and_matmul_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/defenses/geometry.py",
            """\
            import numpy as np

            def bad(a, b):
                return np.einsum("ij,kj->ik", a, b)

            def bad_matmul(a, b):
                return a @ b
            """,
        )
        assert lines_of(report, "DT001") == [4, 7]

    def test_dt001_float64_traced_operands_are_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/defenses/geometry.py",
            """\
            import numpy as np

            def good(a, b):
                left = np.asarray(a, dtype=np.float64)
                right = b.astype(np.float64)
                gram = np.einsum("ij,kj->ik", left, right)
                return left[:2] @ right.T

            def good_kwarg(a, b):
                return np.dot(a, b, dtype=np.float64)
            """,
        )
        assert findings_of(report, "DT001") == []

    def test_dt001_sum_mean_checked_only_in_distance_modules(self, tmp_path):
        source = """\
        import numpy as np

        def bad(diff):
            return diff.sum(axis=1)

        def good(diff):
            acc = np.asarray(diff, dtype=np.float64)
            return acc.sum(axis=1)

        def good_kwarg(diff):
            return np.sum(diff, axis=1, dtype=np.float64)
        """
        distances = lint_snippet(tmp_path, "src/repro/defenses/distances.py", source)
        assert lines_of(distances, "DT001") == [4]
        # The float32 aggregation plane (statistics.py etc.) is contractually
        # float32 — sum/mean there must NOT be flagged.
        other = lint_snippet(tmp_path, "src/repro/defenses/statistics.py", source)
        assert findings_of(other, "DT001") == []

    def test_dt001_does_not_apply_outside_defenses(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/attacks/a.py",
            """\
            import numpy as np

            def f(a, b):
                return np.einsum("ij,kj->ik", a, b)
            """,
        )
        assert findings_of(report, "DT001") == []

    def test_dt002_float64_promotion_in_nn(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/nn/layers.py",
            """\
            import numpy as np

            def promote(x):
                return x.astype(np.float64)

            def promote_str(x):
                return x.astype("float64")

            def keep(x):
                return x.astype(np.float32)
            """,
        )
        assert lines_of(report, "DT002") == [4, 7]


# ----------------------------------------------------------------------
# Fan-out purity
# ----------------------------------------------------------------------
class TestFanoutRules:
    def test_fo001_lambda_and_bound_method_targets(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/myfan.py",
            """\
            from repro.fl.executor import register_fanout_fn

            class Kernel:
                def run(self, p):
                    return p

            kernel = Kernel()
            register_fanout_fn("repro.fl.myfan:lam", lambda p: p)
            register_fanout_fn("repro.fl.myfan:bound", kernel.run)
            """,
        )
        assert lines_of(report, "FO001") == [8, 9]

    def test_fo002_registration_inside_a_function(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/myfan.py",
            """\
            from repro.fl.executor import register_fanout_fn

            def work(p):
                return p

            def setup():
                register_fanout_fn("repro.fl.myfan:late", work)
            """,
        )
        assert lines_of(report, "FO002") == [7]

    def test_fo003_name_must_match_defining_module(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/myfan.py",
            """\
            from repro.fl.executor import register_fanout_fn

            def work(p):
                return p

            register_fanout_fn("repro.fl.other:work", work)
            register_fanout_fn("nocolon", work)
            """,
        )
        assert lines_of(report, "FO003") == [6, 7]

    def test_clean_module_level_registration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/myfan.py",
            """\
            from repro.fl.executor import register_fanout_fn

            WORK_FANOUT = "repro.fl.myfan:work"

            def work(p):
                return p

            register_fanout_fn(WORK_FANOUT, work)
            """,
        )
        assert report.ok


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
class TestShmRule:
    def test_shm001_leaked_constructions(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/shmex.py",
            """\
            from multiprocessing import shared_memory
            from repro.fl.executor import SharedArrayStore

            def leak(arrays):
                store = SharedArrayStore(arrays)
                return store.name

            def leak_raw(n):
                seg = shared_memory.SharedMemory(create=True, size=n)
                return seg.name
            """,
        )
        assert lines_of(report, "SHM001") == [5, 9]

    def test_shm001_managed_constructions_are_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/shmex.py",
            """\
            from repro.fl.executor import SharedArrayStore

            def ok_with(arrays):
                with SharedArrayStore(arrays) as store:
                    return store.name

            def ok_finally(arrays):
                store = SharedArrayStore(arrays)
                try:
                    return store.name
                finally:
                    store.close()

            def ok_transfer(arrays):
                store = SharedArrayStore(arrays)
                return store

            def ok_attach(name):
                from multiprocessing import shared_memory
                return shared_memory.SharedMemory(name=name)

            class Owner:
                def __init__(self, arrays):
                    self._store = SharedArrayStore(arrays)

                def close(self):
                    self._store.close()
            """,
        )
        assert report.ok

    def test_shm001_class_without_teardown_is_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/shmex.py",
            """\
            from repro.fl.executor import SharedArrayStore

            class Hoarder:
                def __init__(self, arrays):
                    self._store = SharedArrayStore(arrays)
            """,
        )
        assert lines_of(report, "SHM001") == [5]


# ----------------------------------------------------------------------
# Ordering determinism
# ----------------------------------------------------------------------
class TestOrderingRules:
    def test_ord001_unsorted_scans(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/experiments/scan.py",
            """\
            import os
            from pathlib import Path

            def bad(d):
                return [name for name in os.listdir(d)]

            def bad_path(p):
                for child in Path(p).iterdir():
                    print(child)

            def bad_var(p):
                return list(p.glob("*.json"))
            """,
        )
        assert lines_of(report, "ORD001") == [5, 8, 12]

    def test_ord001_sorted_scans_are_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/experiments/scan.py",
            """\
            import os
            from pathlib import Path

            def good(d):
                return sorted(os.listdir(d))

            def good_comp(p):
                return sorted(x.name for x in Path(p).iterdir())
            """,
        )
        assert report.ok

    def test_ord002_set_iteration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/pick.py",
            """\
            def bad(pairs):
                uncovered = set(pairs)
                for pair in uncovered:
                    print(pair)
                return {p for p in uncovered}

            def bad_literal():
                for item in {"a", "b"}:
                    print(item)
            """,
        )
        assert lines_of(report, "ORD002") == [3, 5, 8]

    def test_ord002_sorted_iteration_and_membership_are_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "src/repro/fl/pick.py",
            """\
            def good(pairs, probe):
                uncovered = set(pairs)
                hit = probe in uncovered
                for pair in sorted(uncovered):
                    print(pair)
                return hit

            def good_list(items):
                for item in list(items):
                    print(item)
            """,
        )
        assert report.ok


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestLintCli:
    VIOLATING = textwrap.dedent(
        """\
        import random
        """
    )

    def write_violation(self, tmp_path):
        path = tmp_path / "src/repro/fl/v.py"
        path.parent.mkdir(parents=True)
        path.write_text(self.VIOLATING)
        return path

    def test_exit_nonzero_with_rendered_diagnostics(self, tmp_path, capsys):
        path = self.write_violation(tmp_path)
        code = cli_main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert f"{path.as_posix()}:1:1 RNG002" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        path = tmp_path / "src/repro/fl/c.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        assert cli_main(["lint", str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = self.write_violation(tmp_path)
        code = cli_main(["lint", str(path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "RNG002"
        assert payload["findings"][0]["line"] == 1

    def test_baseline_write_and_consume(self, tmp_path, capsys):
        path = self.write_violation(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert cli_main(["lint", str(path), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert cli_main(["lint", str(path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_list_rules_names_every_rule(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.rule_id in out

    def test_console_entry_point(self, tmp_path):
        path = self.write_violation(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", str(path)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RNG002" in proc.stdout


# ----------------------------------------------------------------------
# The shipped tree honors its own contracts
# ----------------------------------------------------------------------
class TestSelfLint:
    def test_shipped_tree_is_clean_with_empty_baseline(self):
        report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        rendered = "\n".join(d.render() for d in report.diagnostics)
        assert report.ok, f"shipped tree has lint findings:\n{rendered}"
        assert report.files_checked > 50

    def test_lint_file_counts_pragma_suppressions(self):
        distances = REPO_ROOT / "src/repro/defenses/distances.py"
        kept, suppressed = lint_file(distances, default_rules())
        assert kept == []
        assert suppressed >= 3  # the documented DT001/ORD002 pragma sites


# ----------------------------------------------------------------------
# Typed-core mypy gate (runs where mypy is installed, e.g. CI)
# ----------------------------------------------------------------------
class TestTypedCore:
    def test_mypy_clean_on_typed_core(self):
        mypy_api = pytest.importorskip(
            "mypy.api", reason="mypy not installed; the CI static-analysis job runs it"
        )
        stdout, stderr, status = mypy_api.run(
            ["--config-file", str(REPO_ROOT / "pyproject.toml")]
            + [str(REPO_ROOT / rel) for rel in TYPED_CORE]
        )
        assert status == 0, f"mypy findings on the typed core:\n{stdout}\n{stderr}"
