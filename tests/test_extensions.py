"""Tests for the extension features beyond the paper's core evaluation.

Covers the learning-rate schedulers, the norm-clipping defense, the
adaptive-α REFD variant, the hybrid synthetic+real DFA attack (both listed as
future work in the paper's conclusion), result serialization and the CLI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.attacks import DfaHybrid, DfaHyperParameters, build_attack
from repro.defenses import AdaptiveRefd, NormClipping, build_defense
from repro.experiments import (
    ExperimentRunner,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
    smoke_scale,
    write_summary_csv,
)
from repro.fl.types import AttackRoundContext, DefenseContext, LocalTrainingConfig, ModelUpdate
from repro.models import MLP, SmallCNN
from repro.nn.lr_scheduler import CosineAnnealingLR, ExponentialLR, StepLR
from repro.nn.modules import Parameter
from repro.nn.optim import SGD
from repro.nn.serialization import get_flat_params
from repro import cli


# ----------------------------------------------------------------------
# Learning-rate schedulers
# ----------------------------------------------------------------------
class TestLrSchedulers:
    def _optimizer(self, lr: float = 1.0) -> SGD:
        return SGD([Parameter(np.zeros(3))], lr=lr)

    def test_step_lr_decays_in_steps(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25])

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=1, gamma=0.0)

    def test_exponential_lr(self):
        scheduler = ExponentialLR(self._optimizer(), gamma=0.9)
        scheduler.step()
        scheduler.step()
        assert scheduler.current_lr == pytest.approx(0.81)

    def test_cosine_annealing_reaches_eta_min(self):
        optimizer = self._optimizer(lr=0.4)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.02)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.02, abs=1e-9)

    def test_cosine_annealing_monotone_decay(self):
        scheduler = CosineAnnealingLR(self._optimizer(), t_max=8)
        values = [scheduler.step() for _ in range(8)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), t_max=0)


# ----------------------------------------------------------------------
# Norm clipping defense
# ----------------------------------------------------------------------
class TestNormClipping:
    def _context(self, dim: int = 4) -> DefenseContext:
        return DefenseContext(
            round_number=0,
            global_params=np.zeros(dim),
            expected_num_malicious=1,
            rng=np.random.default_rng(0),
        )

    def test_large_update_is_scaled_down(self):
        updates = [
            ModelUpdate(client_id=0, parameters=np.full(4, 0.1), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.full(4, 100.0), num_samples=1),
        ]
        result = NormClipping(clip_norm=1.0).aggregate(updates, self._context())
        # The huge update contributes at most a unit-norm delta.
        assert np.linalg.norm(result.new_params) <= 1.0 + 1e-9
        assert result.scores[1] < result.scores[0]

    def test_adaptive_bound_uses_median(self):
        updates = [
            ModelUpdate(client_id=i, parameters=np.full(4, float(v)), num_samples=1)
            for i, v in enumerate([0.1, 0.2, 50.0])
        ]
        defense = NormClipping()
        result = defense.aggregate(updates, self._context())
        assert result.scores[2] < 1.0  # outlier got clipped
        assert result.scores[0] == pytest.approx(1.0)

    def test_small_updates_untouched(self):
        updates = [
            ModelUpdate(client_id=0, parameters=np.full(4, 0.1), num_samples=1),
            ModelUpdate(client_id=1, parameters=np.full(4, 0.2), num_samples=1),
        ]
        result = NormClipping(clip_norm=100.0).aggregate(updates, self._context())
        np.testing.assert_allclose(result.new_params, np.full(4, 0.15))

    def test_invalid_clip_norm(self):
        with pytest.raises(ValueError):
            NormClipping(clip_norm=0.0)

    def test_registered(self):
        assert build_defense("norm-clipping").name == "norm-clipping"


# ----------------------------------------------------------------------
# Adaptive REFD
# ----------------------------------------------------------------------
class TestAdaptiveRefd:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRefd(adaptation_rate=2.0)
        with pytest.raises(ValueError):
            AdaptiveRefd(min_alpha=0.0)

    def test_alpha_adapts_and_stays_in_range(self, tiny_task, mlp_factory):
        defense = AdaptiveRefd(num_rejected=1, adaptation_rate=0.5)
        params = get_flat_params(mlp_factory())
        rng = np.random.default_rng(0)
        updates = [
            ModelUpdate(client_id=i, parameters=params + 0.1 * rng.standard_normal(params.shape),
                        num_samples=5)
            for i in range(4)
        ]
        context = DefenseContext(
            round_number=0,
            global_params=params,
            expected_num_malicious=1,
            rng=rng,
            model_factory=mlp_factory,
            reference_dataset=tiny_task.test,
        )
        result = defense.aggregate(updates, context)
        assert len(defense.alpha_history) == 1
        assert defense.min_alpha <= defense.alpha <= defense.max_alpha
        assert len(result.accepted_client_ids) == 3

    def test_zero_adaptation_rate_keeps_alpha_one(self, tiny_task, mlp_factory):
        defense = AdaptiveRefd(num_rejected=1, adaptation_rate=0.0)
        params = get_flat_params(mlp_factory())
        updates = [
            ModelUpdate(client_id=i, parameters=params, num_samples=5) for i in range(3)
        ]
        context = DefenseContext(
            round_number=0,
            global_params=params,
            expected_num_malicious=1,
            rng=np.random.default_rng(0),
            model_factory=mlp_factory,
            reference_dataset=tiny_task.test,
        )
        defense.aggregate(updates, context)
        assert defense.alpha == pytest.approx(1.0)

    def test_registered(self):
        assert build_defense("adaptive-refd").name == "adaptive-refd"


# ----------------------------------------------------------------------
# Hybrid DFA attack
# ----------------------------------------------------------------------
class TestDfaHybrid:
    def _context(self, tiny_task, attacker_datasets=None) -> AttackRoundContext:
        def model_factory():
            return SmallCNN(in_channels=1, image_size=12, num_classes=10, width=4,
                            rng=np.random.default_rng(0))

        return AttackRoundContext(
            round_number=1,
            global_params=get_flat_params(model_factory()),
            previous_global_params=None,
            model_factory=model_factory,
            num_classes=10,
            image_shape=(1, 12, 12),
            selected_malicious_ids=[100, 101],
            training_config=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.1),
            benign_num_samples=10,
            rng=np.random.default_rng(0),
            attacker_datasets=attacker_datasets,
        )

    def _hyper(self):
        return DfaHyperParameters(num_synthetic=8, synthesis_epochs=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DfaHybrid(synthetic_fraction=1.5)
        with pytest.raises(ValueError):
            DfaHybrid(variant="gan")

    def test_requires_attacker_data(self, tiny_task):
        attack = DfaHybrid(hyper=self._hyper(), synthetic_fraction=0.5)
        with pytest.raises(ValueError):
            attack.craft_updates(self._context(tiny_task, attacker_datasets=None))

    @pytest.mark.parametrize("variant", ["dfa-r", "dfa-g"])
    def test_crafts_one_update_per_sybil(self, tiny_task, variant):
        datasets = {100: tiny_task.train.subset(range(20))}
        attack = DfaHybrid(hyper=self._hyper(), synthetic_fraction=0.5, variant=variant, seed=1)
        updates = attack.craft_updates(self._context(tiny_task, datasets))
        assert len(updates) == 2
        assert all(u.is_malicious for u in updates)
        assert updates[0].num_samples == 8

    def test_pure_synthetic_fraction_needs_no_real_samples_drawn(self, tiny_task):
        datasets = {100: tiny_task.train.subset(range(5))}
        attack = DfaHybrid(hyper=self._hyper(), synthetic_fraction=1.0, seed=1)
        updates = attack.craft_updates(self._context(tiny_task, datasets))
        assert updates[0].num_samples == 8

    def test_target_label_shared_with_synthesizer(self, tiny_task):
        datasets = {100: tiny_task.train.subset(range(20))}
        attack = DfaHybrid(hyper=self._hyper(), synthetic_fraction=0.5, seed=2)
        attack.craft_updates(self._context(tiny_task, datasets))
        assert attack.target_label == attack._synthesizer.target_label

    def test_registered_and_runs_through_harness(self):
        attack = build_attack("dfa-hybrid", synthetic_fraction=0.5)
        assert attack.name == "dfa-hybrid"
        runner = ExperimentRunner()
        result = runner.run(smoke_scale("fashion-mnist", attack="dfa-hybrid", defense="mkrum"))
        assert result.asr is not None


# ----------------------------------------------------------------------
# Result serialization
# ----------------------------------------------------------------------
class TestResultIo:
    @pytest.fixture(scope="class")
    def example_results(self):
        runner = ExperimentRunner()
        config = smoke_scale("fashion-mnist", attack="lie", defense="mkrum")
        return [("lie/mkrum", runner.run(config))]

    def test_dict_roundtrip(self, example_results):
        label, result = example_results[0]
        data = result_to_dict(label, result)
        loaded_label, loaded = result_from_dict(json.loads(json.dumps(data)))
        assert loaded_label == label
        assert loaded.max_accuracy == pytest.approx(result.max_accuracy)
        assert loaded.config.attack == "lie"
        assert len(loaded.records) == len(result.records)

    def test_save_and_load_json(self, example_results, tmp_path):
        path = save_results(example_results, tmp_path / "results.json")
        loaded = load_results(path)
        assert len(loaded) == 1
        assert loaded[0][0] == "lie/mkrum"
        assert loaded[0][1].dpr == example_results[0][1].dpr

    def test_write_summary_csv(self, example_results, tmp_path):
        path = write_summary_csv(example_results, tmp_path / "summary.csv")
        content = path.read_text().splitlines()
        assert content[0].startswith("label,dataset,attack,defense")
        assert "lie/mkrum" in content[1]
        assert len(content) == 2


# ----------------------------------------------------------------------
# Command-line interface
# ----------------------------------------------------------------------
class TestCli:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "dfa-r" in output and "refd" in output and "table2" in output

    def test_run_command_smoke_scale(self, capsys):
        code = cli.main(
            ["run", "--dataset", "fashion-mnist", "--attack", "lie", "--defense", "mkrum",
             "--scale", "smoke"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "attack success rate" in output.lower()

    def test_run_command_iid_flag(self, capsys):
        code = cli.main(
            ["run", "--dataset", "fashion-mnist", "--defense", "median", "--scale", "smoke",
             "--iid", "--rounds", "1"]
        )
        assert code == 0

    def test_scenario_command_with_output(self, capsys, tmp_path, monkeypatch):
        # Restrict the scenario to a tiny subset by monkeypatching its generator.
        def tiny_scenario(scale):
            return [("fashion-mnist/mkrum/lie", scale("fashion-mnist", attack="lie", defense="mkrum"))]

        monkeypatch.setitem(cli._SCENARIOS, "table2", tiny_scenario)
        output_base = tmp_path / "table2"
        code = cli.main(["scenario", "table2", "--scale", "smoke", "--output", str(output_base)])
        assert code == 0
        assert (tmp_path / "table2.json").exists()
        assert (tmp_path / "table2.csv").exists()

    def test_parser_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_parser_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["scenario", "table99"])
