"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  The paper's attacks (DFA-R and DFA-G) require
back-propagating through a *frozen* global classifier into a trainable
filter layer or generator network; a full autograd engine makes that
optimization identical in structure to the original PyTorch code.

The engine is intentionally small but complete: broadcasting-aware
element-wise arithmetic, matrix multiplication, reductions, shape
manipulation, basic indexing and the non-linearities used by the models
in :mod:`repro.models`.  Convolution and loss primitives live in
:mod:`repro.nn.functional` and register their own backward closures via
:meth:`Tensor._from_op`.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "DEFAULT_DTYPE", "no_grad", "is_grad_enabled", "trace_fallback"]

#: Default floating point type for tensors created from Python data.
DEFAULT_DTYPE = np.float32

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Per-thread autograd switch.  Thread-local because executor thread pools
#: run inference (``no_grad`` blocks) concurrently with the main thread —
#: REFD scoring fans out ``predict_proba`` across a ThreadedExecutor while
#: the round loop may keep recording gradients — and a process-global flag
#: with per-instance save/restore would race (one interleaving leaves
#: gradient recording permanently disabled, the other builds stray graphs
#: mid-inference).
_GRAD_STATE = threading.local()

#: Per-thread trace recorder hook.  While :mod:`repro.nn.trace` records a
#: step, ``_TRACE_STATE.recorder`` observes every ``_from_op`` call; ops
#: carry a ``(name, kwargs)`` descriptor when they are replayable and pass
#: ``op=None`` otherwise, which poisons the recording and pins that step
#: signature to eager execution.  Thread-local for the same reason as
#: ``_GRAD_STATE``: pooled executor threads record independently.
_TRACE_STATE = threading.local()


def trace_fallback(reason: str) -> None:
    """Mark the active trace recording (if any) as not replayable.

    Called by ops whose effects cannot be captured in a static tape:
    fresh RNG draws (Dropout masks), in-place buffer mutation
    (BatchNorm running stats) or data-dependent indexing (integer
    embedding lookups).  A no-op when nothing is recording.
    """
    recorder = getattr(_TRACE_STATE, "recorder", None)
    if recorder is not None:
        recorder.fail(reason)


class no_grad:
    """Context manager that disables graph construction (per thread).

    Inside a ``with no_grad():`` block all tensor operations produce
    results with ``requires_grad=False`` and no backward closures, which
    keeps inference (e.g. defense-side evaluation of client updates on
    the reference dataset) cheap.  The switch is thread-local, so pooled
    inference threads never disable recording for anyone else.
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _GRAD_STATE.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autograd."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size one.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional autograd graph attached.

    Parameters
    ----------
    data:
        Array-like initial value.  Converted to ``DEFAULT_DTYPE`` unless it
        is already a floating numpy array.
    requires_grad:
        If ``True``, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, (np.ndarray, np.generic)):
            data = np.asarray(data)
            if not np.issubdtype(data.dtype, np.floating):
                data = data.astype(DEFAULT_DTYPE)
        else:
            data = np.asarray(data, dtype=DEFAULT_DTYPE)
        self.data: np.ndarray = data
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: Optional[Tuple[str, dict]] = None,
    ) -> "Tensor":
        """Create the result of an operation, wiring the backward closure.

        When gradient recording is disabled, or none of the parents
        require gradients, the result is a detached constant tensor.

        ``op`` is the optional trace descriptor ``(name, static_kwargs)``
        consumed by an active :class:`repro.nn.trace.TraceRecorder`; ops
        without one are simply not replayable and force the recording
        signature back to eager execution.
        """
        parents = tuple(parents)
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = cls(data)
        out.requires_grad = requires_grad
        if requires_grad:
            out._parents = parents
            out._backward = backward
        recorder = getattr(_TRACE_STATE, "recorder", None)
        if recorder is not None:
            recorder.record_op(out, parents, op)
        return out

    @staticmethod
    def as_tensor(value: Union["Tensor", ArrayLike]) -> "Tensor":
        """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    @staticmethod
    def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        """Return a tensor of zeros with the given shape."""
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        """Return a tensor of ones with the given shape."""
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        """Data type of the underlying array."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor."""
        return self.transpose()

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        """Return a detached deep copy of this tensor."""
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones, which is only valid for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            if node._backward is None:
                continue
            node._collect(node_grad, grads)

    def _collect(self, node_grad: np.ndarray, grads: dict) -> None:
        """Invoke the backward closure and scatter gradients to parents."""
        parent_grads = self._backward(node_grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            pgrad = np.asarray(pgrad, dtype=parent.data.dtype)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Element-wise arithmetic (broadcasting aware)
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return Tensor._from_op(data, (self, other), backward, op=("add", {}))

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other.shape),
            )

        return Tensor._from_op(data, (self, other), backward, op=("sub", {}))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return Tensor.as_tensor(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data * other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other_data, self.shape),
                _unbroadcast(grad * self_data, other.shape),
            )

        return Tensor._from_op(data, (self, other), backward, op=("mul", {}))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data / other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other_data, self.shape),
                _unbroadcast(-grad * self_data / (other_data ** 2), other.shape),
            )

        return Tensor._from_op(data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return Tensor.as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._from_op(data, (self,), backward, op=("neg", {}))

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        base = self.data

        def backward(grad: np.ndarray):
            return (grad * exponent * base ** (exponent - 1),)

        return Tensor._from_op(data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data @ other.data
        a, b = self.data, other.data

        def backward(grad: np.ndarray):
            if a.ndim == 2 and b.ndim == 2:
                return (grad @ b.T, a.T @ grad)
            # Batched matmul: contract over the batch dimensions.
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (
                _unbroadcast(grad_a, a.shape),
                _unbroadcast(grad_b, b.shape),
            )

        return Tensor._from_op(data, (self, other), backward, op=("matmul", {}))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum of elements, optionally along ``axis``."""
        data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.shape

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, input_shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, input_shape).copy(),)

        return Tensor._from_op(
            data, (self,), backward, op=("sum", {"axis": axis, "keepdims": keepdims})
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean of elements, optionally along ``axis``."""
        data = self.data.mean(axis=axis, keepdims=keepdims)
        input_shape = self.shape
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= input_shape[ax]

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, input_shape) / count,)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, input_shape) / count,)

        return Tensor._from_op(
            data, (self,), backward, op=("mean", {"axis": axis, "keepdims": keepdims})
        )

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum of elements; gradient flows to the (first) maxima."""
        data = self.data.max(axis=axis, keepdims=keepdims)
        source = self.data

        def backward(grad: np.ndarray):
            if axis is None:
                mask = (source == source.max()).astype(source.dtype)
                mask /= mask.sum()
                return (mask * grad,)
            expanded = data if keepdims else np.expand_dims(data, axis=axis)
            mask = (source == expanded).astype(source.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            return (mask * g,)

        return Tensor._from_op(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Return a tensor with the same data and a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original_shape),)

        return Tensor._from_op(
            data, (self,), backward, op=("reshape", {"shape": data.shape})
        )

    def flatten_batch(self) -> "Tensor":
        """Flatten all dimensions except the leading (batch) dimension."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        """Permute array dimensions (reverses them when ``axes`` is None)."""
        data = self.data.transpose(axes)

        def backward(grad: np.ndarray):
            if axes is None:
                return (grad.transpose(),)
            inverse = np.argsort(axes)
            return (grad.transpose(inverse),)

        return Tensor._from_op(data, (self,), backward, op=("transpose", {"axes": axes}))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        input_shape = self.shape
        input_dtype = self.data.dtype

        def backward(grad: np.ndarray):
            full = np.zeros(input_shape, dtype=input_dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._from_op(data, (self,), backward, op=("getitem", {"index": index}))

    # ------------------------------------------------------------------
    # Element-wise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._from_op(data, (self,), backward, op=("exp", {}))

    def log(self) -> "Tensor":
        """Element-wise natural logarithm."""
        data = np.log(self.data)
        source = self.data

        def backward(grad: np.ndarray):
            return (grad / source,)

        return Tensor._from_op(data, (self,), backward, op=("log", {}))

    def sqrt(self) -> "Tensor":
        """Element-wise square root."""
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / data,)

        return Tensor._from_op(data, (self,), backward)

    def abs(self) -> "Tensor":
        """Element-wise absolute value."""
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return Tensor._from_op(data, (self,), backward)

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._from_op(data, (self,), backward, op=("relu", {}))

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        """Leaky rectified linear unit."""
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray):
            return (np.where(mask, grad, negative_slope * grad),)

        return Tensor._from_op(
            data,
            (self,),
            backward,
            op=("leaky_relu", {"negative_slope": negative_slope}),
        )

    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data ** 2),)

        return Tensor._from_op(data, (self,), backward, op=("tanh", {}))

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid."""
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._from_op(data, (self,), backward, op=("sigmoid", {}))

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into ``[low, high]``; gradient is zero outside."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._from_op(data, (self,), backward)

    # ------------------------------------------------------------------
    # Norms (used by the distance-based regularization of DFA)
    # ------------------------------------------------------------------
    def norm(self) -> "Tensor":
        """Euclidean (L2) norm of the flattened tensor."""
        return (self * self).sum() ** 0.5
