"""Conversion between module parameters and flat 1-D vectors.

Every robust-aggregation defense in the paper (Krum, mKrum, Bulyan, Median,
Trimmed mean, REFD) and every statistical attack (LIE, Fang, Min-Max)
operates on model updates represented as flat parameter vectors.  These
helpers guarantee a stable, loss-free round trip between that flat
representation and module state dicts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

import numpy as np

from .modules import Module

__all__ = [
    "get_flat_params",
    "set_flat_params",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "parameter_shapes",
    "clone_state_dict",
]


def parameter_shapes(module: Module) -> "OrderedDict[str, Tuple[int, ...]]":
    """Return the ordered mapping of parameter names to shapes."""
    shapes: "OrderedDict[str, Tuple[int, ...]]" = OrderedDict()
    for name, param in module.named_parameters():
        shapes[name] = param.data.shape
    return shapes


def get_flat_params(module: Module, dtype=np.float64) -> np.ndarray:
    """Concatenate all parameters of ``module`` into one 1-D vector."""
    chunks = [param.data.ravel().astype(dtype) for param in module.parameters()]
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(chunks)


def set_flat_params(module: Module, vector: np.ndarray) -> None:
    """Write the values of a flat vector back into the module's parameters."""
    vector = np.asarray(vector)
    expected = module.num_parameters()
    if vector.size != expected:
        raise ValueError(
            f"flat vector has {vector.size} entries but the module has {expected} parameters"
        )
    offset = 0
    for param in module.parameters():
        count = param.data.size
        values = vector[offset : offset + count].reshape(param.data.shape)
        param.data = values.astype(param.data.dtype, copy=True)
        offset += count


def state_dict_to_vector(state: Dict[str, np.ndarray], reference: Module) -> np.ndarray:
    """Flatten a state dict using the parameter ordering of ``reference``.

    Buffers (e.g. batch-norm running statistics) are excluded, matching the
    paper's treatment of model updates as weight vectors.
    """
    chunks: List[np.ndarray] = []
    for name, param in reference.named_parameters():
        if name not in state:
            raise KeyError(f"state dict is missing parameter '{name}'")
        value = np.asarray(state[name])
        if value.shape != param.data.shape:
            raise ValueError(
                f"parameter '{name}' has shape {value.shape}, expected {param.data.shape}"
            )
        chunks.append(value.ravel().astype(np.float64))
    return np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.float64)


def vector_to_state_dict(vector: np.ndarray, reference: Module) -> Dict[str, np.ndarray]:
    """Unflatten a vector into a state dict shaped like ``reference``'s parameters."""
    vector = np.asarray(vector)
    state: Dict[str, np.ndarray] = OrderedDict()
    offset = 0
    for name, param in reference.named_parameters():
        count = param.data.size
        if offset + count > vector.size:
            raise ValueError("vector is too short for the reference module")
        state[name] = (
            vector[offset : offset + count].reshape(param.data.shape).astype(np.float32)
        )
        offset += count
    if offset != vector.size:
        raise ValueError("vector is too long for the reference module")
    return state


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Return a deep copy of a state dict."""
    return OrderedDict((name, np.array(value, copy=True)) for name, value in state.items())
