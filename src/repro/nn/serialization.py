"""Conversion between module parameters and flat 1-D vectors.

Every robust-aggregation defense in the paper (Krum, mKrum, Bulyan, Median,
Trimmed mean, REFD) and every statistical attack (LIE, Fang, Min-Max)
operates on model updates represented as flat parameter vectors.  These
helpers guarantee a stable, loss-free round trip between that flat
representation and module state dicts.

Dtype policy
------------
All model parameters are ``float32``, and the flat representation keeps
that dtype by default: a flat vector is a *single contiguous buffer in the
module's native dtype*, so shipping it to a worker process, caching it, or
stacking it into a defense matrix costs half the bytes of the former
float64 representation.  Callers that need extra precision (the
numerical-gradient tests perturb individual coordinates by ``1e-5``) opt in
explicitly with ``dtype=np.float64``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import DTypeLike

from .modules import Module

__all__ = [
    "FlatParams",
    "get_flat_params",
    "set_flat_params",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "parameter_shapes",
    "clone_state_dict",
]


def parameter_shapes(module: Module) -> "OrderedDict[str, Tuple[int, ...]]":
    """Return the ordered mapping of parameter names to shapes."""
    shapes: "OrderedDict[str, Tuple[int, ...]]" = OrderedDict()
    for name, param in module.named_parameters():
        shapes[name] = param.data.shape
    return shapes


class FlatParams:
    """A contiguous flat parameter buffer with named zero-copy slices.

    ``vector`` is the single 1-D array holding every parameter of a module
    in registration order; ``self[name]`` returns a *view* into it reshaped
    to the parameter's shape, so reading or editing a named slice never
    copies.  The layout (names, offsets, shapes) is derived once from a
    reference module and can be reused across rounds.
    """

    __slots__ = ("vector", "_layout")

    def __init__(
        self, vector: np.ndarray, layout: "OrderedDict[str, Tuple[int, Tuple[int, ...]]]"
    ) -> None:
        self.vector = vector
        self._layout = layout

    # ------------------------------------------------------------------
    @staticmethod
    def layout_of(module: Module) -> "OrderedDict[str, Tuple[int, Tuple[int, ...]]]":
        """Return the ``name -> (offset, shape)`` layout of a module."""
        layout: "OrderedDict[str, Tuple[int, Tuple[int, ...]]]" = OrderedDict()
        offset = 0
        for name, param in module.named_parameters():
            layout[name] = (offset, param.data.shape)
            offset += param.data.size
        return layout

    @classmethod
    def from_module(cls, module: Module, dtype: Optional[DTypeLike] = None) -> "FlatParams":
        """Snapshot ``module``'s parameters into one contiguous buffer.

        ``dtype=None`` keeps the module's native parameter dtype (float32
        for every model in this repository); pass ``np.float64`` to opt in
        to double precision.
        """
        params = list(module.named_parameters())
        if dtype is None:
            dtype = np.result_type(*(p.data.dtype for _, p in params)) if params else np.float32
        total = sum(p.data.size for _, p in params)
        vector = np.empty(total, dtype=dtype)
        layout: "OrderedDict[str, Tuple[int, Tuple[int, ...]]]" = OrderedDict()
        offset = 0
        for name, param in params:
            count = param.data.size
            vector[offset : offset + count] = param.data.reshape(-1)
            layout[name] = (offset, param.data.shape)
            offset += count
        return cls(vector, layout)

    @classmethod
    def from_vector(cls, vector: np.ndarray, reference: Module) -> "FlatParams":
        """Wrap an existing flat vector with ``reference``'s slice layout."""
        vector = np.asarray(vector).ravel()
        expected = reference.num_parameters()
        if vector.size != expected:
            raise ValueError(
                f"flat vector has {vector.size} entries but the module has {expected} parameters"
            )
        return cls(vector, cls.layout_of(reference))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of scalar parameters in the buffer."""
        return self.vector.size

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying buffer."""
        return self.vector.dtype

    @property
    def nbytes(self) -> int:
        """Size of the underlying buffer in bytes."""
        return self.vector.nbytes

    def names(self) -> List[str]:
        """Parameter names in buffer order."""
        return list(self._layout)

    def __contains__(self, name: str) -> bool:
        return name in self._layout

    def __getitem__(self, name: str) -> np.ndarray:
        """Zero-copy view of one named parameter, reshaped to its shape."""
        offset, shape = self._layout[name]
        count = int(np.prod(shape)) if shape else 1
        return self.vector[offset : offset + count].reshape(shape)

    def copy(self) -> "FlatParams":
        """Deep copy of the buffer; the layout is shared (it is immutable)."""
        return FlatParams(self.vector.copy(), self._layout)

    def with_vector(self, vector: np.ndarray) -> "FlatParams":
        """A new view object around ``vector`` reusing this buffer's layout."""
        vector = np.asarray(vector).ravel()
        if vector.size != self.size:
            raise ValueError(
                f"flat vector has {vector.size} entries but the layout expects {self.size}"
            )
        return FlatParams(vector, self._layout)

    def astype(self, dtype: DTypeLike) -> "FlatParams":
        """Buffer cast to ``dtype`` (no copy if the dtype already matches)."""
        return FlatParams(self.vector.astype(dtype, copy=False), self._layout)

    def write_to(self, module: Module) -> None:
        """Copy the buffer's values into ``module``'s parameters."""
        set_flat_params(module, self.vector)

    def to_state_dict(self) -> Dict[str, np.ndarray]:
        """Materialise a state dict (copies, so the buffer stays unshared)."""
        return OrderedDict((name, self[name].copy()) for name in self._layout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatParams(size={self.size}, dtype={self.dtype}, slices={len(self._layout)})"


def get_flat_params(module: Module, dtype: Optional[DTypeLike] = None) -> np.ndarray:
    """Concatenate all parameters of ``module`` into one 1-D vector.

    The vector keeps the module's native parameter dtype (float32 for the
    paper's models) unless ``dtype`` explicitly requests another precision.
    """
    return FlatParams.from_module(module, dtype=dtype).vector


def set_flat_params(module: Module, vector: np.ndarray) -> None:
    """Write the values of a flat vector back into the module's parameters."""
    vector = np.asarray(vector)
    expected = module.num_parameters()
    if vector.size != expected:
        raise ValueError(
            f"flat vector has {vector.size} entries but the module has {expected} parameters"
        )
    offset = 0
    for param in module.parameters():
        count = param.data.size
        values = vector[offset : offset + count].reshape(param.data.shape)
        param.data = values.astype(param.data.dtype, copy=True)
        offset += count


def state_dict_to_vector(
    state: Dict[str, np.ndarray], reference: Module, dtype: Optional[DTypeLike] = None
) -> np.ndarray:
    """Flatten a state dict using the parameter ordering of ``reference``.

    Buffers (e.g. batch-norm running statistics) are excluded, matching the
    paper's treatment of model updates as weight vectors.  The result keeps
    the reference module's parameter dtype unless ``dtype`` overrides it.
    """
    params = list(reference.named_parameters())
    if dtype is None:
        dtype = np.result_type(*(p.data.dtype for _, p in params)) if params else np.float32
    total = sum(p.data.size for _, p in params)
    vector = np.empty(total, dtype=dtype)
    offset = 0
    for name, param in params:
        if name not in state:
            raise KeyError(f"state dict is missing parameter '{name}'")
        value = np.asarray(state[name])
        if value.shape != param.data.shape:
            raise ValueError(
                f"parameter '{name}' has shape {value.shape}, expected {param.data.shape}"
            )
        count = param.data.size
        vector[offset : offset + count] = value.reshape(-1)
        offset += count
    return vector


def vector_to_state_dict(vector: np.ndarray, reference: Module) -> Dict[str, np.ndarray]:
    """Unflatten a vector into a state dict shaped like ``reference``'s parameters."""
    vector = np.asarray(vector)
    state: Dict[str, np.ndarray] = OrderedDict()
    offset = 0
    for name, param in reference.named_parameters():
        count = param.data.size
        if offset + count > vector.size:
            raise ValueError("vector is too short for the reference module")
        state[name] = (
            vector[offset : offset + count]
            .reshape(param.data.shape)
            .astype(param.data.dtype)
        )
        offset += count
    if offset != vector.size:
        raise ValueError("vector is too long for the reference module")
    return state


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Return a deep copy of a state dict."""
    return OrderedDict((name, np.array(value, copy=True)) for name, value in state.items())
