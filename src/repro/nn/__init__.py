"""A small, self-contained neural-network library built on numpy.

This package is the substrate that replaces PyTorch in the reproduction of
"Fabricated Flips: Poisoning Federated Learning without Data" (DSN 2023).
It provides reverse-mode autograd (:mod:`repro.nn.tensor`), convolution and
loss primitives (:mod:`repro.nn.functional`), layer containers
(:mod:`repro.nn.modules`), optimizers (:mod:`repro.nn.optim`) and parameter
flattening utilities (:mod:`repro.nn.serialization`).
"""

from . import functional
from .init import (
    calculate_fan_in_and_fan_out,
    kaiming_uniform,
    normal,
    uniform,
    xavier_uniform,
    zeros,
)
from .modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from .lr_scheduler import CosineAnnealingLR, ExponentialLR, LRScheduler, StepLR
from .optim import SGD, Adam, Optimizer
from .recurrent import GRU, Embedding, GRUCell
from .serialization import (
    FlatParams,
    clone_state_dict,
    get_flat_params,
    parameter_shapes,
    set_flat_params,
    state_dict_to_vector,
    vector_to_state_dict,
)
from .tensor import DEFAULT_DTYPE, Tensor, is_grad_enabled, no_grad

__all__ = [
    "functional",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "DEFAULT_DTYPE",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "Embedding",
    "GRUCell",
    "GRU",
    "FlatParams",
    "get_flat_params",
    "set_flat_params",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "parameter_shapes",
    "clone_state_dict",
    "kaiming_uniform",
    "xavier_uniform",
    "normal",
    "uniform",
    "zeros",
    "calculate_fan_in_and_fan_out",
]
