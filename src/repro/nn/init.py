"""Weight initialization schemes used by the models in :mod:`repro.models`."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "calculate_fan_in_and_fan_out",
    "kaiming_uniform",
    "xavier_uniform",
    "normal",
    "uniform",
    "zeros",
]


def calculate_fan_in_and_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    Follows the PyTorch convention: for linear weights ``(out, in)`` and
    for convolution weights ``(out, in, kh, kw)``.
    """
    if len(shape) < 2:
        raise ValueError("fan in/out require at least a 2-D weight shape")
    receptive_field = 1
    for dim in shape[2:]:
        receptive_field *= dim
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def kaiming_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)
) -> np.ndarray:
    """He-uniform initialization appropriate for ReLU networks."""
    fan_in, _ = calculate_fan_in_and_fan_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialization for tanh/sigmoid networks."""
    fan_in, fan_out = calculate_fan_in_and_fan_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Zero-mean Gaussian initialization (DCGAN-style generators)."""
    return (rng.standard_normal(shape) * std).astype(np.float32)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Uniform initialization in ``[-bound, bound]``."""
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=np.float32)
