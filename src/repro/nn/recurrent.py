"""Embedding and gated-recurrent layers.

Sec. III-C and III-D of the paper sketch how DFA extends beyond images: the
DFA-R filter layer becomes a sequence-to-sequence model and the DFA-G
generator becomes a recurrent network such as a GRU that emits synthetic
text.  These modules provide the corresponding building blocks on top of the
autograd engine (the backward pass through time falls out of the graph
automatically), so that a text instantiation of the attacks can be built with
the same APIs as the image one.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

import numpy as np

from . import init
from .modules import Linear, Module, Parameter
from .tensor import Tensor, trace_fallback

__all__ = ["Embedding", "GRUCell", "GRU"]


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors.

    The forward pass also accepts *soft* token distributions of shape
    ``(..., num_embeddings)``, in which case it returns the expected
    embedding — this is what a differentiable text generator needs in order
    to feed its output into a frozen classifier.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_embeddings < 1 or embedding_dim < 1:
            raise ValueError("num_embeddings and embedding_dim must be positive")
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.1))

    def forward(self, tokens: Union[np.ndarray, Tensor]) -> Tensor:
        if isinstance(tokens, Tensor):
            # Soft tokens: (..., vocab) distribution times the embedding matrix.
            if tokens.shape[-1] != self.num_embeddings:
                raise ValueError(
                    f"soft tokens must have {self.num_embeddings} entries in the last dimension"
                )
            flat = tokens.reshape(-1, self.num_embeddings)
            embedded = flat @ self.weight
            return embedded.reshape(*tokens.shape[:-1], self.embedding_dim)
        indices = np.asarray(tokens, dtype=np.int64)
        if indices.min() < 0 or indices.max() >= self.num_embeddings:
            raise ValueError("token index out of range")
        # The gather depends on the concrete token values of this batch;
        # a static tape would bake them in.
        trace_fallback("Embedding integer lookup is data-dependent")
        return self.weight[indices]


class GRUCell(Module):
    """A single gated recurrent unit step ``h' = GRU(x, h)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Update gate z, reset gate r and candidate state n, each with input
        # and hidden affine maps (PyTorch GRUCell parameterization).
        self.input_gates = Linear(input_size, 3 * hidden_size, rng=rng)
        self.hidden_gates = Linear(hidden_size, 3 * hidden_size, rng=rng)

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tensor:
        batch = x.shape[0]
        if hidden is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))
        gates_x = self.input_gates(x)
        gates_h = self.hidden_gates(hidden)
        h = self.hidden_size
        z = (gates_x[:, 0:h] + gates_h[:, 0:h]).sigmoid()
        r = (gates_x[:, h : 2 * h] + gates_h[:, h : 2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h : 3 * h] + r * gates_h[:, 2 * h : 3 * h]).tanh()
        return (1.0 - z) * candidate + z * hidden


class GRU(Module):
    """Unidirectional single-layer GRU over ``(batch, time, features)`` input.

    With ``return_sequences=False`` only the final hidden state is built
    (the per-step output assembly — a quadratic chain of time-axis
    concatenations — is skipped entirely and the first return value is
    ``None``).  Sequence classifiers that read only the last state should
    use this mode; it also keeps the recorded trace linear in the number
    of time steps.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
        return_sequences: bool = True,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(
        self, sequence: Tensor, hidden: Optional[Tensor] = None
    ) -> Tuple[Optional[Tensor], Tensor]:
        if sequence.ndim != 3:
            raise ValueError("GRU expects input of shape (batch, time, features)")
        batch, time_steps, _ = sequence.shape
        outputs: List[Tensor] = []
        state = hidden
        for step in range(time_steps):
            state = self.cell(sequence[:, step, :], state)
            if self.return_sequences:
                outputs.append(state.reshape(batch, 1, self.hidden_size))
        if not self.return_sequences:
            return None, state
        full = outputs[0]
        for chunk in outputs[1:]:
            full = _concat_time(full, chunk)
        return full, state


def _concat_time(left: Tensor, right: Tensor) -> Tensor:
    """Concatenate two ``(batch, t, h)`` tensors along the time axis (autograd-aware)."""
    left_t = left.shape[1]
    right_t = right.shape[1]
    data = np.concatenate([left.data, right.data], axis=1)

    def backward(grad: np.ndarray):
        return (grad[:, :left_t, :], grad[:, left_t : left_t + right_t, :])

    return Tensor._from_op(data, (left, right), backward, op=("concat_time", {}))
