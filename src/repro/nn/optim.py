"""Gradient-based optimizers for :class:`repro.nn.modules.Module` parameters."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class for optimizers operating on a list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients of all managed parameters.

        The default drops the reference (``param.grad = None``) instead of
        zeroing storage: under trace replay ``param.grad`` is a plan-owned
        buffer that the next replayed step overwrites wholesale, so
        zeroing it would be wasted work (and would mutate storage shared
        with the plan).  Pass ``set_to_none=False`` to zero in place for
        callers that accumulate gradients across micro-batches.
        """
        for param in self.parameters:
            if set_to_none:
                param.zero_grad()
            elif param.grad is not None:
                param.grad.fill(0.0)

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    This is the optimizer used for both benign local training and the
    adversarial classifier training in the reproduction, matching the
    plain SGD used by the paper's FL emulator.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient.

        Updates run in place on ``param.data`` (and on the velocity buffers),
        so no per-parameter arrays are allocated on the hot path.  The
        operation order matches the out-of-place formulation exactly, keeping
        training trajectories bit-identical.
        """
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                    self._velocity[id(param)] = velocity
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer, used for training the DFA-G generator and DFA-R filter."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one Adam update to every parameter that has a gradient.

        The moment buffers and ``param.data`` are updated in place with the
        same operation order as the textbook out-of-place formulation, so
        trajectories are unchanged while per-step allocations drop to the
        unavoidable temporaries.
        """
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._first_moment.get(key)
            v = self._second_moment.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
                self._first_moment[key] = m
                self._second_moment[key] = v
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
