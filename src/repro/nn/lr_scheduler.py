"""Learning-rate schedulers for the optimizers in :mod:`repro.nn.optim`.

Long paper-scale federated runs (hundreds of rounds) benefit from decaying
the clients' local learning rate; these schedulers mirror the corresponding
``torch.optim.lr_scheduler`` classes at the small scale needed here.
"""

from __future__ import annotations

import math
from typing import List

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` when :meth:`step` is called."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        """Learning rate for the current epoch counter."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.last_epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr

    @property
    def current_lr(self) -> float:
        """Learning rate currently installed in the optimizer."""
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ValueError("step_size must be at least 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** self.last_epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        if t_max < 1:
            raise ValueError("t_max must be at least 1")
        if eta_min < 0:
            raise ValueError("eta_min must be non-negative")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))
