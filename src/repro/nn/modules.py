"""Layer and container abstractions over the autograd engine.

The design mirrors a small subset of ``torch.nn``: a :class:`Module` base
class with parameter discovery, ``state_dict`` round-tripping and
train/eval modes, plus the concrete layers needed to build the paper's
classifiers (convolutional networks), the DFA-R filter layer and the
DFA-G transpose-convolutional generator.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor, trace_fallback

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
]


class Parameter(Tensor):
    """A tensor that is registered as a learnable module parameter."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses define parameters and sub-modules as attributes in their
    ``__init__`` and implement :meth:`forward`.  Parameter and module
    discovery is attribute-order based, which keeps ``state_dict`` keys
    stable across identically-constructed modules — a property the FL
    aggregation layer relies on.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable array that is part of the state dict."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *inputs: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *inputs: Tensor) -> Tensor:
        return self.forward(*inputs)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs, depth first in registration order."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def parameters(self) -> List[Parameter]:
        """Return all learnable parameters of this module tree."""
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(name, buffer)`` pairs (e.g. batch-norm running statistics)."""
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag: bool) -> "Module":
        """Enable or disable gradient accumulation for all parameters."""
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # ------------------------------------------------------------------
    # Train / eval modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set the module (and all sub-modules) to training mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set the module (and all sub-modules) to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameters and buffers keyed by name."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Copy values from ``state`` into this module's parameters/buffers."""
        param_map = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        missing = []
        for name, param in param_map.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter '{name}': "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()
        for name, (owner, local_name) in buffer_owners.items():
            if name in state:
                owner._buffers[local_name] = np.array(state[name], copy=True)
                object.__setattr__(owner, local_name, owner._buffers[local_name])
        if missing:
            raise KeyError(f"missing parameters in state dict: {missing}")

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            owners[prefix + name] = (self, name)
        for mod_name, module in self._modules.items():
            owners.update(module._buffer_owners(prefix + mod_name + "."))
        return owners

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child_repr = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child_repr})"


class Sequential(Module):
    """Container that applies modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), rng, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(init.uniform((out_channels,), rng, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class ConvTranspose2d(Module):
    """2-D transposed convolution layer (used by the DFA-G generator)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.normal(shape, rng, std=0.05))
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of ``(N, C, H, W)`` input."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        # Batch statistics and the running-buffer update are data-dependent
        # state mutation a static tape cannot capture.
        trace_fallback("BatchNorm2d mutates running statistics per step")
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * mean
            )
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"] + self.momentum * var
            )
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        mean_t = Tensor(mean.reshape(1, -1, 1, 1))
        std_t = Tensor(np.sqrt(var + self.eps).reshape(1, -1, 1, 1))
        normalized = (x - mean_t) / std_t
        weight = self.weight.reshape(1, self.num_features, 1, 1)
        bias = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * weight + bias


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky rectified linear unit activation."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent activation (generator output)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Softmax(Module):
    """Softmax over the last dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=-1)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        # A fresh RNG mask per step would be baked into the tape as a
        # constant; dropout models must train eagerly.
        trace_fallback("Dropout draws a fresh RNG mask per step")
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class MaxPool2d(Module):
    """Max-pooling layer."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average-pooling layer."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)
