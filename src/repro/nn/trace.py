"""Trace-recorded VJP replay with buffer planning.

The eager engine in :mod:`repro.nn.tensor` rebuilds a closure graph on
every forward/backward step.  This module records that step *once* per
``(model signature, input shape, dtype)`` as an op-level tape and then
replays the tape through a :class:`CompiledPlan`: a flat list of
pre-compiled forward and backward callables whose activation, saved and
gradient storage is preallocated and reused across steps.

Lifecycle
---------
1. **Record** — :meth:`TraceSession.step` sees an unseen signature, runs
   the step eagerly with a :class:`TraceRecorder` hooked into
   ``Tensor._from_op``, and (when every op carried a trace descriptor)
   finalizes the tape.  The recording step *is* an eager step, so its
   result is trivially bit-identical.
2. **Replay** — subsequent steps with the same signature execute the
   compiled program.  Kernels perform exactly the numpy expressions the
   eager closures perform, in the same order, through the
   :class:`~repro.nn.backend.ArrayBackend` shim — replay is bit-identical
   to eager under a fixed seed (covered by the trace test suite).
3. **Fallback** — any shape/dtype change keys a fresh tape (up to a small
   cap); untraceable ops (Dropout in train mode, BatchNorm, integer
   embedding lookups, any op without a descriptor) poison the recording
   and pin that signature to eager execution permanently.

The backward schedule replicates ``Tensor.backward``'s DFS topological
order and gradient-accumulation order exactly: "store" vs "add" per edge
is resolved statically by simulating the eager algorithm on the recorded
graph, so multi-consumer values (GRU hidden state) accumulate in the
same float order as eager.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import ArrayBackend, default_backend
from . import tensor as tensor_module
from .tensor import Tensor

__all__ = [
    "TraceUnsupported",
    "TraceRecorder",
    "Trace",
    "CompiledPlan",
    "TraceSession",
    "register_trace_op",
    "registered_trace_ops",
    "session_for",
    "reset_trace_cache",
    "trace_counters",
    "MAX_SIGNATURES_PER_MODEL",
]


class TraceUnsupported(RuntimeError):
    """The recorded step cannot be replayed; callers fall back to eager."""


# ----------------------------------------------------------------------
# Op registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpSpec:
    """A replayable op: compile-time forward and VJP kernel builders.

    ``forward``/``vjp`` are *compilers*: called once per plan with an
    :class:`OpContext`, they bind buffers and return the per-step callable.
    Both must be module-level named functions (the ``TR002`` lint rule),
    so a worker process rebuilding plans after import sees the same
    registry.
    """

    name: str
    forward: Callable
    vjp: Callable


OP_REGISTRY: Dict[str, OpSpec] = {}


def register_trace_op(name: str, forward: Callable, vjp: Callable) -> None:
    """Register the forward/VJP kernel builders for op ``name``.

    Must be called at module import time with module-level functions
    (mirroring the fan-out registry contract) — the ``TR001``/``TR002``
    lint rules enforce both properties statically.
    """
    OP_REGISTRY[name] = OpSpec(name, forward, vjp)


def registered_trace_ops() -> List[str]:
    """Names of all replayable ops, sorted."""
    return sorted(OP_REGISTRY)


# ----------------------------------------------------------------------
# Recorded structure
# ----------------------------------------------------------------------
KIND_NODE = "node"
KIND_PARAM = "param"
KIND_INPUT = "input"
KIND_CONST = "const"
KIND_EXT = "ext"


@dataclass(frozen=True)
class ExtArg:
    """Marker for a kwarg array rebound per step (e.g. the target labels)."""

    slot: int


@dataclass
class SlotInfo:
    kind: str
    shape: Tuple[int, ...]
    dtype: np.dtype
    const: Optional[np.ndarray] = None
    param_index: Optional[int] = None
    name: Optional[str] = None
    requires_grad: bool = False
    tensor: Optional[Tensor] = None  # record-time only; dropped at finalize


@dataclass
class TraceNode:
    op: str
    parents: Tuple[int, ...]
    out: int
    kwargs: Dict[str, object]
    requires_grad: bool


@dataclass
class BackwardStep:
    """One VJP emission: node index plus its gradient sinks.

    ``edges`` maps parent position -> ("store" | "add"); the order and
    store/add split replicate the eager accumulation exactly.
    """

    node_index: int
    edges: Dict[int, str] = field(default_factory=dict)


class Trace:
    """An immutable recorded tape plus its derived backward schedule."""

    def __init__(
        self,
        nodes: List[TraceNode],
        slots: List[SlotInfo],
        loss_slot: int,
        input_slots: Dict[str, int],
        ext_slots: Dict[str, int],
        param_slots: List[Tuple[int, int]],
    ) -> None:
        self.nodes = nodes
        self.slots = slots
        self.loss_slot = loss_slot
        self.input_slots = input_slots
        self.ext_slots = ext_slots
        self.param_slots = param_slots  # (slot, parameter index) pairs
        self.forward_indices = self._needed_forward()
        self.backward_steps, self.grad_param_slots = self._build_schedule()

    # -- schedule ------------------------------------------------------
    def _needed_forward(self) -> List[int]:
        """Indices of nodes that feed the loss, in recorded order."""
        producer = {node.out: i for i, node in enumerate(self.nodes)}
        if self.loss_slot not in producer:
            raise TraceUnsupported("loss is not the output of a recorded op")
        needed = {self.loss_slot}
        for i in range(len(self.nodes) - 1, -1, -1):
            node = self.nodes[i]
            if node.out in needed:
                needed.update(node.parents)
        return [i for i, node in enumerate(self.nodes) if node.out in needed]

    def _build_schedule(self) -> Tuple[List[BackwardStep], List[Tuple[int, int]]]:
        """Replicate ``Tensor.backward``'s DFS order and accumulation modes."""
        producer = {node.out: i for i, node in enumerate(self.nodes)}

        def effective_parents(slot: int) -> Tuple[int, ...]:
            info = self.slots[slot]
            if info.kind != KIND_NODE or not info.requires_grad:
                return ()
            return self.nodes[producer[slot]].parents

        topo: List[int] = []
        visited: set = set()
        stack: List[Tuple[int, bool]] = [(self.loss_slot, False)]
        while stack:
            slot, processed = stack.pop()
            if processed:
                topo.append(slot)
                continue
            if slot in visited:
                continue
            visited.add(slot)
            stack.append((slot, True))
            for parent in effective_parents(slot):
                if parent not in visited:
                    stack.append((parent, False))

        steps: List[BackwardStep] = []
        grad_params: List[Tuple[int, int]] = []
        present = {self.loss_slot}
        for slot in reversed(topo):
            if slot not in present:
                continue
            info = self.slots[slot]
            if info.kind == KIND_PARAM:
                grad_params.append((slot, info.param_index))
                continue
            if info.kind != KIND_NODE or not info.requires_grad:
                continue
            node_index = producer[slot]
            node = self.nodes[node_index]
            step = BackwardStep(node_index)
            for pos, parent in enumerate(node.parents):
                if not self.slots[parent].requires_grad:
                    continue
                step.edges[pos] = "add" if parent in present else "store"
                present.add(parent)
            steps.append(step)
        return steps, grad_params


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
_STATIC_INDEX_TYPES = (int, slice, type(None), type(Ellipsis))


class TraceRecorder:
    """Observes ``Tensor._from_op`` during one eager step and builds a tape."""

    def __init__(self, externals: Dict[str, np.ndarray]) -> None:
        self.externals = dict(externals)
        self._ext_name_by_id = {id(array): name for name, array in externals.items()}
        self.slots: List[SlotInfo] = []
        self.nodes: List[TraceNode] = []
        self._slot_of: Dict[int, int] = {}
        self._ext_slot: Dict[str, int] = {}
        self._keepalive: List[object] = []
        self.failed: Optional[str] = None

    # -- bookkeeping ---------------------------------------------------
    def fail(self, reason: str) -> None:
        """Poison the recording; the signature will stay on eager execution."""
        if self.failed is None:
            self.failed = reason

    def _new_slot(self, info: SlotInfo) -> int:
        self.slots.append(info)
        return len(self.slots) - 1

    def _slot_for(self, tensor: Tensor) -> Optional[int]:
        key = id(tensor)
        slot = self._slot_of.get(key)
        if slot is not None:
            return slot
        # Keep every observed tensor alive for the duration of the
        # recording: id() keys are only unique among live objects.
        self._keepalive.append(tensor)
        data = tensor.data
        if tensor.requires_grad and tensor._backward is None:
            slot = self._new_slot(
                SlotInfo(
                    KIND_PARAM, data.shape, data.dtype, requires_grad=True, tensor=tensor
                )
            )
        elif id(data) in self._ext_name_by_id:
            name = self._ext_name_by_id[id(data)]
            slot = self._new_slot(SlotInfo(KIND_INPUT, data.shape, data.dtype, name=name))
        elif tensor.requires_grad:
            self.fail("tensor with gradient history created outside the recorded step")
            return None
        else:
            slot = self._new_slot(
                SlotInfo(KIND_CONST, data.shape, data.dtype, const=data.copy())
            )
        self._slot_of[key] = slot
        return slot

    def _ext_slot_for(self, array: np.ndarray) -> Optional[int]:
        name = self._ext_name_by_id.get(id(array))
        if name is None:
            return None
        slot = self._ext_slot.get(name)
        if slot is None:
            slot = self._new_slot(SlotInfo(KIND_EXT, array.shape, array.dtype, name=name))
            self._ext_slot[name] = slot
        return slot

    def _freeze_value(self, value):
        """Static (picklable, step-invariant) form of a kwarg value."""
        if isinstance(value, np.ndarray):
            slot = self._ext_slot_for(value)
            if slot is None:
                raise _FreezeError(
                    "op kwarg references an array that is neither a declared "
                    "step input nor a constant"
                )
            return ExtArg(slot)
        if isinstance(value, _STATIC_INDEX_TYPES) or isinstance(value, (float, bool, str)):
            return value
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, tuple):
            return tuple(self._freeze_value(item) for item in value)
        raise _FreezeError(f"op kwarg of type {type(value).__name__} is not traceable")

    # -- the hook ------------------------------------------------------
    def record_op(
        self,
        out: Tensor,
        parents: Tuple[Tensor, ...],
        op: Optional[Tuple[str, Dict[str, object]]],
    ) -> None:
        if self.failed is not None:
            return
        if op is None:
            self.fail("op without a trace descriptor")
            return
        name, kwargs = op
        if name not in OP_REGISTRY:
            self.fail(f"op '{name}' has no registered trace kernels")
            return
        parent_slots: List[int] = []
        for parent in parents:
            slot = self._slot_for(parent)
            if slot is None:
                return
            parent_slots.append(slot)
        try:
            frozen = {key: self._freeze_value(value) for key, value in kwargs.items()}
        except _FreezeError as exc:
            self.fail(f"op '{name}': {exc}")
            return
        data = out.data
        out_slot = self._new_slot(
            SlotInfo(KIND_NODE, data.shape, data.dtype, requires_grad=out.requires_grad)
        )
        self._slot_of[id(out)] = out_slot
        self._keepalive.append(out)
        self.nodes.append(
            TraceNode(name, tuple(parent_slots), out_slot, frozen, out.requires_grad)
        )

    # -- finalize ------------------------------------------------------
    def finalize(self, loss: Tensor, model) -> Trace:
        """Validate the recording against ``model`` and build the tape."""
        if self.failed is not None:
            raise TraceUnsupported(self.failed)
        loss_slot = self._slot_of.get(id(loss))
        if loss_slot is None or self.slots[loss_slot].kind != KIND_NODE:
            raise TraceUnsupported("loss tensor was not produced by a recorded op")
        if int(np.prod(self.slots[loss_slot].shape)) != 1:
            raise TraceUnsupported("loss must be a scalar")
        params = model.parameters()
        index_of = {id(param): i for i, param in enumerate(params)}
        param_slots: List[Tuple[int, int]] = []
        for slot, info in enumerate(self.slots):
            if info.kind != KIND_PARAM:
                continue
            param_index = index_of.get(id(info.tensor))
            if param_index is None:
                raise TraceUnsupported(
                    "a gradient leaf used in the step is not a model parameter"
                )
            info.param_index = param_index
            info.tensor = None  # the trace must not pin the recorded model
            param_slots.append((slot, param_index))
        input_slots = {
            info.name: slot
            for slot, info in enumerate(self.slots)
            if info.kind == KIND_INPUT
        }
        ext_slots = dict(self._ext_slot)
        return Trace(self.nodes, self.slots, loss_slot, input_slots, ext_slots, param_slots)


class _FreezeError(ValueError):
    pass


# ----------------------------------------------------------------------
# Compilation: contexts, sinks, plans
# ----------------------------------------------------------------------
class Sink:
    """Gradient target for one (node, parent) edge.

    ``out`` is the array the kernel writes its parent gradient into: the
    parent's plan-owned gradient buffer for "store" edges (fused, no
    copy), or an edge scratch buffer for "add" edges.  ``commit()``
    folds a scratch into the parent buffer; ``write(arr)`` is the
    convenience path for kernels that produced the gradient elsewhere.
    """

    __slots__ = ("out", "mode", "_target", "_xp")

    def __init__(self, xp: ArrayBackend, target: np.ndarray, mode: str, scratch) -> None:
        self._xp = xp
        self._target = target
        self.mode = mode
        self.out = target if mode == "store" else scratch

    def commit(self) -> None:
        if self.mode == "add":
            self._xp.add(self._target, self.out, out=self._target)

    def write(self, array) -> None:
        if self.mode == "store":
            self._xp.copyto(self._target, array)
        else:
            self._xp.add(self._target, array, out=self._target)


class OpContext:
    """Compile-time view of one node handed to the registered kernels."""

    def __init__(self, plan: "CompiledPlan", node_index: int, backward: bool) -> None:
        self._plan = plan
        self.node_index = node_index
        self.node = plan.trace.nodes[node_index]
        self.xp = plan.xp
        self.parents = self.node.parents
        self.out = self.node.out
        self._backward = backward
        self._edges: Dict[int, str] = {}

    # -- shapes --------------------------------------------------------
    def shape(self, slot: int) -> Tuple[int, ...]:
        return self._plan.trace.slots[slot].shape

    def dtype(self, slot: int) -> np.dtype:
        return self._plan.trace.slots[slot].dtype

    @property
    def kwargs(self) -> Dict[str, object]:
        return self.node.kwargs

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return self.shape(self.out)

    @property
    def out_dtype(self) -> np.dtype:
        return self.dtype(self.out)

    # -- storage -------------------------------------------------------
    def alloc_out(self) -> np.ndarray:
        """Stable plan-owned output buffer for this node's value."""
        return self._plan._buffer(self.out)

    def scratch(self, name: str, shape, dtype) -> np.ndarray:
        """Per-node saved/scratch buffer (shared between forward and VJP)."""
        return self._plan._scratch(self.node_index, name, shape, dtype)

    def saved(self, name: str) -> np.ndarray:
        """A buffer the forward kernel of this node registered."""
        return self._plan.saved[(self.node_index, name)]

    def saved_output(self) -> np.ndarray:
        """The stable output buffer this node's forward kernel allocated."""
        return self._plan.buffers[self.out]

    def alias_saved(self, name: str, array: np.ndarray) -> np.ndarray:
        """Explicitly alias ``name`` to an existing plan buffer.

        Aliasing is never implicit: a kernel that wants to reuse another
        buffer's storage (the conv ``grad_cols``-over-``cols`` trick) must
        declare it here, with its own liveness argument, so the plan's
        saved map stays a complete record of who owns what.
        """
        self._plan.saved[(self.node_index, name)] = array
        return array

    # -- gradients (backward compile only) -----------------------------
    def grad_in(self) -> np.ndarray:
        """The (already accumulated) gradient buffer of this node's output."""
        return self._plan._grad_buffer(self.out)

    def sink(self, pos: int) -> Optional[Sink]:
        """Gradient sink for parent ``pos``; None when no gradient flows."""
        mode = self._edges.get(pos)
        if mode is None:
            return None
        parent = self.parents[pos]
        target = self._plan._grad_buffer(parent)
        scratch = None
        if mode == "add":
            scratch = self._plan._scratch(
                self.node_index,
                f"edge{pos}",
                self._plan.trace.slots[parent].shape,
                self._plan.trace.slots[parent].dtype,
            )
        return Sink(self.xp, target, mode, scratch)


class CompiledPlan:
    """A trace bound to preallocated buffers and compiled step programs."""

    def __init__(self, trace: Trace, xp: Optional[ArrayBackend] = None) -> None:
        self.trace = trace
        self.xp = xp or default_backend()
        self.buffers: Dict[int, np.ndarray] = {}
        self.saved: Dict[Tuple[int, str], np.ndarray] = {}
        self.grads: Dict[int, np.ndarray] = {}
        self._vals: List[Optional[np.ndarray]] = [None] * len(trace.slots)
        for slot, info in enumerate(trace.slots):
            if info.kind == KIND_CONST:
                self._vals[slot] = info.const
        # The root gradient: eager seeds backward() with ones.
        loss_info = trace.slots[trace.loss_slot]
        root = self.xp.empty(loss_info.shape, loss_info.dtype)
        self.xp.copyto(root, 1.0)
        self.grads[trace.loss_slot] = root
        self._forward_program: List[Callable] = []
        self._backward_program: List[Callable] = []
        self.steps_replayed = 0
        self._compile()
        self._loss_buf = self._vals_buffer_for_loss()

    # -- storage helpers ----------------------------------------------
    def _buffer(self, slot: int) -> np.ndarray:
        buf = self.buffers.get(slot)
        if buf is None:
            info = self.trace.slots[slot]
            buf = self.xp.empty(info.shape, info.dtype)
            self.buffers[slot] = buf
        return buf

    def _scratch(self, node_index: int, name: str, shape, dtype) -> np.ndarray:
        key = (node_index, name)
        buf = self.saved.get(key)
        if buf is None:
            buf = self.xp.empty(shape, dtype)
            self.saved[key] = buf
        return buf

    def _grad_buffer(self, slot: int) -> np.ndarray:
        buf = self.grads.get(slot)
        if buf is None:
            info = self.trace.slots[slot]
            buf = self.xp.empty(info.shape, info.dtype)
            self.grads[slot] = buf
        return buf

    def _vals_buffer_for_loss(self) -> np.ndarray:
        buf = self.buffers.get(self.trace.loss_slot)
        if buf is None:
            raise TraceUnsupported("loss op did not allocate a stable output buffer")
        return buf

    # -- compilation ---------------------------------------------------
    def _compile(self) -> None:
        for node_index in self.trace.forward_indices:
            node = self.trace.nodes[node_index]
            spec = OP_REGISTRY.get(node.op)
            if spec is None:
                raise TraceUnsupported(f"op '{node.op}' has no registered trace kernels")
            ctx = OpContext(self, node_index, backward=False)
            self._forward_program.append(spec.forward(self.xp, ctx))
        for step in self.trace.backward_steps:
            node = self.trace.nodes[step.node_index]
            spec = OP_REGISTRY[node.op]
            ctx = OpContext(self, step.node_index, backward=True)
            ctx._edges = step.edges
            self._backward_program.append(spec.vjp(self.xp, ctx))

    # -- execution -----------------------------------------------------
    def run(self, arrays: Dict[str, np.ndarray], params: Sequence) -> float:
        """Replay one training step; leaves gradients on ``params``."""
        vals = self._vals
        trace = self.trace
        for name, slot in trace.input_slots.items():
            vals[slot] = arrays[name]
        for name, slot in trace.ext_slots.items():
            vals[slot] = arrays[name]
        for slot, param_index in trace.param_slots:
            vals[slot] = params[param_index].data
        for fn in self._forward_program:
            fn(vals)
        for fn in self._backward_program:
            fn(vals)
        for slot, param_index in trace.grad_param_slots:
            params[param_index].grad = self.grads[slot]
        self.steps_replayed += 1
        return float(self._loss_buf)


# ----------------------------------------------------------------------
# Session + process-wide cache
# ----------------------------------------------------------------------
#: Shape/dtype signatures cached per model signature before new shapes
#: stop recording and run eagerly (bounds tape memory for pathological
#: loaders).  Normal training needs two — the full batch and the tail
#: batch — but a Dirichlet-partitioned federation sees one tail shape per
#: distinct shard size, so the cap leaves room for a realistic client
#: population before new shapes stop being recorded.
MAX_SIGNATURES_PER_MODEL = 24

_CACHE_LOCK = threading.Lock()
_TRACES: Dict[tuple, Union[Trace, str]] = {}
_SIGNATURE_COUNTS: Dict[object, int] = {}
_COUNTERS = {"records": 0, "replays": 0, "fallbacks": 0}
_THREAD_PLANS = threading.local()


def trace_counters() -> Dict[str, int]:
    """Snapshot of record/replay/fallback counts (tests and benchmarks)."""
    with _CACHE_LOCK:
        return dict(_COUNTERS)


def reset_trace_cache() -> None:
    """Drop every cached tape, plan and counter (test isolation hook)."""
    with _CACHE_LOCK:
        _TRACES.clear()
        _SIGNATURE_COUNTS.clear()
        for key in _COUNTERS:
            _COUNTERS[key] = 0
    _THREAD_PLANS.__dict__.clear()


def _bump(counter: str) -> None:
    with _CACHE_LOCK:
        _COUNTERS[counter] += 1


def session_for(model) -> Optional["TraceSession"]:
    """A trace session for ``model``, or None when it declares no signature.

    Models opt in by exposing a hashable ``trace_signature`` attribute
    (the factories in :mod:`repro.models` declare one); everything else —
    generators, filter nets, ad-hoc test modules — stays eager.
    """
    signature = getattr(model, "trace_signature", None)
    if signature is None:
        return None
    return TraceSession(model, signature)


class TraceSession:
    """Per-model-instance handle onto the process-wide trace cache.

    Tapes are cached by ``(model signature, input/target shape+dtype)``
    and shared across model instances and threads; compiled plans (which
    own mutable buffers) are per-thread.  Binding a cached tape to this
    session's model only requires the parameter list to match in shape
    and dtype — parameter *values* are read live from ``param.data`` on
    every step, so ``set_flat_params`` swaps between rounds just work.
    """

    def __init__(self, model, signature) -> None:
        self.model = model
        self.signature = signature
        self._params = model.parameters()
        self._validated: set = set()

    # -- keys ----------------------------------------------------------
    def _key(self, x: np.ndarray, y: np.ndarray) -> tuple:
        return (self.signature, x.shape, x.dtype.str, y.shape, y.dtype.str)

    # -- the public step ----------------------------------------------
    def step(self, x: np.ndarray, y: np.ndarray) -> Optional[float]:
        """Run one forward/backward for ``(x, y)``; None means "go eager".

        Returns the loss as a float when the step was handled (either by
        replaying a cached tape or by the recording step itself, which
        runs eagerly).  Gradients are left on the model parameters exactly
        as ``loss.backward()`` would leave them.
        """
        key = self._key(x, y)
        with _CACHE_LOCK:
            entry = _TRACES.get(key)
        if entry is None:
            return self._record(key, x, y)
        if isinstance(entry, str):
            return None
        plan = self._plan(key, entry)
        if plan is None:
            return None
        _bump("replays")
        return plan.run({"x": x, "y": y}, self._params)

    # -- record --------------------------------------------------------
    def _record(self, key: tuple, x: np.ndarray, y: np.ndarray) -> Optional[float]:
        with _CACHE_LOCK:
            count = _SIGNATURE_COUNTS.get(self.signature, 0)
            if count >= MAX_SIGNATURES_PER_MODEL:
                _TRACES[key] = "signature cap reached"
                _COUNTERS["fallbacks"] += 1
                return None
        from . import functional as F

        recorder = TraceRecorder({"x": x, "y": y})
        tensor_module._TRACE_STATE.recorder = recorder
        try:
            logits = self.model(Tensor(x))
            loss = F.cross_entropy(logits, y)
        finally:
            tensor_module._TRACE_STATE.recorder = None
        loss.backward()
        loss_value = float(loss.item())
        try:
            trace = recorder.finalize(loss, self.model)
            # Compile once eagerly so unsupported compile-time cases
            # (batched matmul broadcasts, odd dtypes) also fall back.
            plan = CompiledPlan(trace)
        except TraceUnsupported as exc:
            with _CACHE_LOCK:
                _TRACES[key] = str(exc)
                _COUNTERS["fallbacks"] += 1
            return loss_value
        with _CACHE_LOCK:
            _TRACES[key] = trace
            _SIGNATURE_COUNTS[self.signature] = count + 1
            _COUNTERS["records"] += 1
        self._thread_plans()[key] = plan
        self._validated.add(key)
        return loss_value

    # -- plans ---------------------------------------------------------
    def _thread_plans(self) -> Dict[tuple, CompiledPlan]:
        plans = getattr(_THREAD_PLANS, "plans", None)
        if plans is None:
            plans = {}
            _THREAD_PLANS.plans = plans
        return plans

    def _plan(self, key: tuple, trace: Trace) -> Optional[CompiledPlan]:
        if key not in self._validated:
            if not self._binds(trace):
                return None
            self._validated.add(key)
        plans = self._thread_plans()
        plan = plans.get(key)
        if plan is None:
            try:
                plan = CompiledPlan(trace)
            except TraceUnsupported:
                return None
            plans[key] = plan
        return plan

    def _binds(self, trace: Trace) -> bool:
        for slot, param_index in trace.param_slots:
            if param_index >= len(self._params):
                return False
            info = trace.slots[slot]
            param = self._params[param_index]
            if param.data.shape != info.shape or param.data.dtype != info.dtype:
                return False
        return True

    # -- introspection (tests, benchmarks) -----------------------------
    def plan_for(self, x: np.ndarray, y: np.ndarray) -> Optional[CompiledPlan]:
        """The thread-local compiled plan for this input signature, if any."""
        key = self._key(x, y)
        with _CACHE_LOCK:
            entry = _TRACES.get(key)
        if entry is None or isinstance(entry, str):
            return None
        return self._plan(key, entry)

    def fallback_reason(self, x: np.ndarray, y: np.ndarray) -> Optional[str]:
        """Why this signature is pinned to eager execution, if it is."""
        with _CACHE_LOCK:
            entry = _TRACES.get(self._key(x, y))
        return entry if isinstance(entry, str) else None


# Kernel registrations live in trace_ops; importing it populates
# OP_REGISTRY.  The import sits at the bottom because trace_ops imports
# register_trace_op from this module.
from . import trace_ops as _trace_ops  # noqa: E402,F401  (registration side effect)
