"""Neural-network primitives built on top of :class:`repro.nn.tensor.Tensor`.

This module implements the convolution, pooling and loss operations needed
by the classifiers, the DFA-R filter layer and the DFA-G generator.  All
functions are autograd-aware: they return tensors that participate in the
computation graph and provide analytic backward passes.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear",
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "pad2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "soft_cross_entropy",
    "nll_loss",
    "mse_loss",
    "one_hot",
    "conv_output_size",
    "conv_transpose_output_size",
]


# ----------------------------------------------------------------------
# im2col / col2im helpers
# ----------------------------------------------------------------------
def _window_view(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Zero-copy ``(N, C, out_h, out_w, kh, kw)`` view of all kernel windows.

    Built on :func:`numpy.lib.stride_tricks.sliding_window_view`, so no patch
    data is copied; only padding (when requested) materialises a new array.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input {x.shape}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    return windows, out_h, out_w


def _im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` spatial kernel size.

    Returns
    -------
    cols, out_h, out_w:
        ``cols`` has shape ``(N, C*kh*kw, out_h*out_w)``.

    The window extraction itself is a zero-copy stride trick; the only copy
    is the single reshape into the contiguous column matrix that the GEMM
    consumers need.
    """
    n, c = x.shape[0], x.shape[1]
    kh, kw = kernel
    windows, out_h, out_w = _window_view(x, kernel, stride, padding)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`; overlapping patches are accumulated.

    The scatter-add runs over a preallocated padded buffer with one strided
    accumulation per kernel tap (``kh * kw`` bulk adds, no per-pixel Python).
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv_output_size(size: int, kernel: int, stride: int = 1, padding: int = 0) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def conv_transpose_output_size(
    size: int, kernel: int, stride: int = 1, padding: int = 0
) -> int:
    """Spatial output size of a transposed convolution along one dimension."""
    return (size - 1) * stride - 2 * padding + kernel


# ----------------------------------------------------------------------
# Linear / convolution layers
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``.

    ``x`` has shape ``(N, in_features)`` and ``weight`` has shape
    ``(out_features, in_features)``, matching the PyTorch convention used
    by the paper's models.
    """
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over ``(N, C, H, W)`` input.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    """
    x_data, w_data = x.data, weight.data
    out_channels, in_channels, kh, kw = w_data.shape
    if x_data.shape[1] != in_channels:
        raise ValueError(
            f"conv2d expected {in_channels} input channels, got {x_data.shape[1]}"
        )
    cols, out_h, out_w = _im2col(x_data, (kh, kw), stride, padding)
    w_mat = w_data.reshape(out_channels, -1)
    out = np.matmul(w_mat, cols)  # batched GEMM: (O, F) @ (N, F, L) -> (N, O, L)
    out = out.reshape(x_data.shape[0], out_channels, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, out_channels, 1, 1)

    input_shape = x_data.shape
    needs_grad_x = x.requires_grad
    needs_grad_w = weight.requires_grad

    def backward(grad: np.ndarray):
        grad_mat = grad.reshape(grad.shape[0], out_channels, -1)
        grad_w = None
        if needs_grad_w:
            grad_w = np.matmul(grad_mat, cols.transpose(0, 2, 1)).sum(axis=0)
            grad_w = grad_w.reshape(w_data.shape)
        grad_x = None
        if needs_grad_x:
            # grad_cols has the same shape as the forward's column buffer.
            # When the weight is frozen (the DFA synthesis path) nothing ever
            # reads cols, so grad_cols can reuse its storage — but only then:
            # a graph may run backward() more than once, and a consumed cols
            # would silently corrupt the next grad_w.  The reuse also needs a
            # materialised, dtype-matching buffer (1×1 kernels leave cols as
            # a read-only stride-trick view of the input).
            if (
                not needs_grad_w
                and cols.flags.writeable
                and cols.dtype == np.result_type(w_mat, grad_mat)
            ):
                grad_cols = np.matmul(w_mat.T, grad_mat, out=cols)
            else:
                grad_cols = np.matmul(w_mat.T, grad_mat)
            grad_x = _col2im(grad_cols, input_shape, (kh, kw), stride, padding)
        if bias is not None:
            grad_b = grad.sum(axis=(0, 2, 3)) if bias.requires_grad else None
            return (grad_x, grad_w, grad_b)
        return (grad_x, grad_w)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._from_op(
        out, parents, backward, op=("conv2d", {"stride": stride, "padding": padding})
    )


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D transposed convolution (the generator building block of DFA-G).

    ``x`` has shape ``(N, in_channels, H, W)`` and ``weight`` has shape
    ``(in_channels, out_channels, kh, kw)``, matching the PyTorch
    ``nn.ConvTranspose2d`` convention.
    """
    x_data, w_data = x.data, weight.data
    in_channels, out_channels, kh, kw = w_data.shape
    if x_data.shape[1] != in_channels:
        raise ValueError(
            f"conv_transpose2d expected {in_channels} input channels, "
            f"got {x_data.shape[1]}"
        )
    n, _, h, w = x_data.shape
    out_h = conv_transpose_output_size(h, kh, stride, padding)
    out_w = conv_transpose_output_size(w, kw, stride, padding)
    if out_h <= 0 or out_w <= 0:
        raise ValueError("transposed convolution output would be empty")

    w_mat = w_data.reshape(in_channels, out_channels * kh * kw)
    x_mat = x_data.reshape(n, in_channels, h * w)
    cols = np.matmul(w_mat.T, x_mat)  # (F, I) @ (N, I, L) -> (N, F, L)
    out = _col2im(cols, (n, out_channels, out_h, out_w), (kh, kw), stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, out_channels, 1, 1)

    needs_grad_x = x.requires_grad
    needs_grad_w = weight.requires_grad

    def backward(grad: np.ndarray):
        grad_cols, _, _ = _im2col(grad, (kh, kw), stride, padding)
        grad_x = None
        if needs_grad_x:
            grad_x = np.matmul(w_mat, grad_cols)
            grad_x = grad_x.reshape(x_data.shape)
        grad_w = None
        if needs_grad_w:
            grad_w = np.matmul(x_mat, grad_cols.transpose(0, 2, 1)).sum(axis=0)
            grad_w = grad_w.reshape(w_data.shape)
        if bias is not None:
            grad_b = grad.sum(axis=(0, 2, 3)) if bias.requires_grad else None
            return (grad_x, grad_w, grad_b)
        return (grad_x, grad_w)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._from_op(out, parents, backward)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    x_data = x.data
    n, c, h, w = x_data.shape
    cols, out_h, out_w = _im2col(x_data, (kernel, kernel), stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray):
        grad_flat = grad.reshape(n, c, 1, out_h * out_w)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], grad_flat, axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel * kernel, out_h * out_w)
        grad_x = _col2im(grad_cols, x_data.shape, (kernel, kernel), stride, 0)
        return (grad_x,)

    return Tensor._from_op(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over windows."""
    stride = stride or kernel
    x_data = x.data
    n, c, h, w = x_data.shape
    cols, out_h, out_w = _im2col(x_data, (kernel, kernel), stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray):
        grad_flat = grad.reshape(n, c, 1, out_h * out_w) / (kernel * kernel)
        grad_cols = np.broadcast_to(grad_flat, (n, c, kernel * kernel, out_h * out_w))
        grad_cols = grad_cols.reshape(n, c * kernel * kernel, out_h * out_w)
        grad_x = _col2im(np.ascontiguousarray(grad_cols), x_data.shape, (kernel, kernel), stride, 0)
        return (grad_x,)

    return Tensor._from_op(out, (x,), backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial dimensions."""
    x_data = x.data
    out = np.pad(x_data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    def backward(grad: np.ndarray):
        if padding == 0:
            return (grad,)
        return (grad[:, :, padding:-padding, padding:-padding],)

    return Tensor._from_op(out, (x,), backward)


# ----------------------------------------------------------------------
# Softmax and losses
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x_data = x.data
    shifted = x_data - x_data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * probs).sum(axis=axis, keepdims=True)
        return (probs * (grad - dot),)

    return Tensor._from_op(probs, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x_data = x.data
    shifted = x_data - x_data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    probs = np.exp(out)

    def backward(grad: np.ndarray):
        return (grad - probs * grad.sum(axis=axis, keepdims=True),)

    return Tensor._from_op(out, (x,), backward)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a one-hot ``(N, num_classes)`` float matrix for integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``targets`` given log-probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Cross-entropy between ``logits`` and integer class ``targets``.

    This is the training loss of benign clients, of the adversarial
    classifier and (negated) of the DFA-G generator objective.
    """
    # The trace descriptor must reference the *caller's* targets array:
    # the recorder matches kwarg arrays by identity against the step's
    # declared externals, and the replay kernel re-applies the int64
    # coercion below per step.
    targets_arg = targets
    targets = np.asarray(targets, dtype=np.int64)
    logits_data = logits.data
    n, num_classes = logits_data.shape
    if targets.shape[0] != n:
        raise ValueError("number of targets must match the batch size")
    if targets.min() < 0 or targets.max() >= num_classes:
        raise ValueError("target labels out of range")
    shifted = logits_data - logits_data.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss = -log_probs[np.arange(n), targets].mean()
    probs = np.exp(log_probs)

    def backward(grad: np.ndarray):
        grad_logits = probs.copy()
        grad_logits[np.arange(n), targets] -= 1.0
        grad_logits *= float(grad) / n
        return (grad_logits,)

    return Tensor._from_op(
        np.asarray(loss, dtype=logits_data.dtype),
        (logits,),
        backward,
        op=("cross_entropy", {"targets": targets_arg}),
    )


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Cross-entropy between ``logits`` and a *soft* target distribution.

    DFA-R uses this with the uniform distribution ``[1/L, ..., 1/L]`` as the
    target to push the global model towards maximally ambiguous predictions.
    """
    target_probs = np.asarray(target_probs, dtype=logits.data.dtype)
    logits_data = logits.data
    n = logits_data.shape[0]
    if target_probs.ndim == 1:
        target_probs = np.broadcast_to(target_probs, logits_data.shape)
    shifted = logits_data - logits_data.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss = -(target_probs * log_probs).sum(axis=1).mean()
    probs = np.exp(log_probs)

    def backward(grad: np.ndarray):
        grad_logits = (probs - target_probs) * (float(grad) / n)
        return (grad_logits,)

    return Tensor._from_op(np.asarray(loss, dtype=logits_data.dtype), (logits,), backward)


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error between ``prediction`` and ``target``."""
    target = Tensor.as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()
