"""Registered trace kernels: compile-time forward/VJP builders per op.

Every kernel replicates the exact numpy expressions of the eager
closures in :mod:`repro.nn.tensor` / :mod:`repro.nn.functional` — same
ufuncs, same operand order, same accumulation order — so replaying a
tape is bit-identical to the eager step it recorded.  The only
difference is storage: outputs, saved activations and gradients live in
plan-owned buffers that persist across steps instead of per-step
allocations.

Contract (enforced by the ``TR001``/``TR002`` lint rules):

- kernels never call ``np.*`` directly; all array math goes through the
  ``xp`` :class:`~repro.nn.backend.ArrayBackend` argument (array
  *methods* like ``.reshape``/``.transpose`` are backend-neutral and
  allowed);
- registrations happen at module level with module-level named
  functions, so worker processes rebuild the same registry on import.

Bit-identity notes baked into individual kernels:

- ``tanh``'s VJP uses ``xp.power(data, 2)`` (= ``data ** 2``), never a
  ``square`` shortcut: numpy does not promise ``np.square`` matches
  ``**`` bitwise.
- scalar-array ops keep the eager operand order where it matters and
  rely on IEEE commutativity (``a*b == b*a`` bitwise) where it does not.
- "store" edges write gradients straight into the parent's plan buffer
  (fused ``out=``), "add" edges go through an edge scratch then a single
  ``xp.add`` — exactly the ``grads[key] = grads[key] + pgrad`` order of
  the eager accumulation.
"""

from __future__ import annotations

from .tensor import _unbroadcast
from .trace import TraceUnsupported, register_trace_op


# ----------------------------------------------------------------------
# Element-wise arithmetic
# ----------------------------------------------------------------------
def _forward_add(xp, ctx):
    a, b = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.add(vals[a], vals[b], out=out)
        vals[o] = out

    return run


def _vjp_add(xp, ctx):
    g = ctx.grad_in()
    out_shape = ctx.out_shape
    sinks = []
    for pos in (0, 1):
        sink = ctx.sink(pos)
        if sink is not None:
            sinks.append((sink, ctx.shape(ctx.parents[pos])))

    def run(vals):
        for sink, shape in sinks:
            sink.write(g if shape == out_shape else _unbroadcast(g, shape))

    return run


def _forward_sub(xp, ctx):
    a, b = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.subtract(vals[a], vals[b], out=out)
        vals[o] = out

    return run


def _vjp_sub(xp, ctx):
    g = ctx.grad_in()
    out_shape = ctx.out_shape
    sink0 = ctx.sink(0)
    sink1 = ctx.sink(1)
    shape0 = ctx.shape(ctx.parents[0])
    shape1 = ctx.shape(ctx.parents[1])

    def run(vals):
        if sink0 is not None:
            sink0.write(g if shape0 == out_shape else _unbroadcast(g, shape0))
        if sink1 is not None:
            if shape1 == out_shape:
                xp.negative(g, out=sink1.out)
                sink1.commit()
            else:
                sink1.write(_unbroadcast(xp.negative(g), shape1))

    return run


def _forward_mul(xp, ctx):
    a, b = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.multiply(vals[a], vals[b], out=out)
        vals[o] = out

    return run


def _vjp_mul(xp, ctx):
    g = ctx.grad_in()
    out_shape = ctx.out_shape
    a, b = ctx.parents
    sink0 = ctx.sink(0)
    sink1 = ctx.sink(1)
    shape0 = ctx.shape(a)
    shape1 = ctx.shape(b)

    def run(vals):
        if sink0 is not None:
            if shape0 == out_shape:
                xp.multiply(g, vals[b], out=sink0.out)
                sink0.commit()
            else:
                sink0.write(_unbroadcast(xp.multiply(g, vals[b]), shape0))
        if sink1 is not None:
            if shape1 == out_shape:
                xp.multiply(g, vals[a], out=sink1.out)
                sink1.commit()
            else:
                sink1.write(_unbroadcast(xp.multiply(g, vals[a]), shape1))

    return run


def _forward_neg(xp, ctx):
    (a,) = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.negative(vals[a], out=out)
        vals[o] = out

    return run


def _vjp_neg(xp, ctx):
    g = ctx.grad_in()
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            xp.negative(g, out=sink.out)
            sink.commit()

    return run


def _forward_matmul(xp, ctx):
    a, b = ctx.parents
    if len(ctx.shape(a)) != 2 or len(ctx.shape(b)) != 2:
        raise TraceUnsupported("only 2-D matmul is replayable")
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.matmul(vals[a], vals[b], out=out)
        vals[o] = out

    return run


def _vjp_matmul(xp, ctx):
    g = ctx.grad_in()
    a, b = ctx.parents
    sink0 = ctx.sink(0)
    sink1 = ctx.sink(1)

    def run(vals):
        if sink0 is not None:
            xp.matmul(g, vals[b].T, out=sink0.out)
            sink0.commit()
        if sink1 is not None:
            xp.matmul(vals[a].T, g, out=sink1.out)
            sink1.commit()

    return run


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def _forward_sum(xp, ctx):
    (a,) = ctx.parents
    axis = ctx.kwargs["axis"]
    keepdims = ctx.kwargs["keepdims"]
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.sum(vals[a], axis=axis, keepdims=keepdims, out=out)
        vals[o] = out

    return run


def _vjp_sum(xp, ctx):
    g = ctx.grad_in()
    axis = ctx.kwargs["axis"]
    keepdims = ctx.kwargs["keepdims"]
    input_shape = ctx.shape(ctx.parents[0])
    sink = ctx.sink(0)
    # g is a stable plan buffer, so the expand/broadcast views can be
    # taken once at compile time.
    expanded = g
    if axis is not None and not keepdims:
        expanded = xp.expand_dims(g, axis)
    broadcast = xp.broadcast_to(expanded, input_shape)

    def run(vals):
        if sink is not None:
            sink.write(broadcast)

    return run


def _forward_mean(xp, ctx):
    (a,) = ctx.parents
    axis = ctx.kwargs["axis"]
    keepdims = ctx.kwargs["keepdims"]
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.mean(vals[a], axis=axis, keepdims=keepdims, out=out)
        vals[o] = out

    return run


def _vjp_mean(xp, ctx):
    g = ctx.grad_in()
    axis = ctx.kwargs["axis"]
    keepdims = ctx.kwargs["keepdims"]
    input_shape = ctx.shape(ctx.parents[0])
    sink = ctx.sink(0)
    if axis is None:
        count = 1
        for dim in input_shape:
            count *= dim
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= input_shape[ax]
    expanded = g
    if axis is not None and not keepdims:
        expanded = xp.expand_dims(g, axis)
    broadcast = xp.broadcast_to(expanded, input_shape)

    def run(vals):
        if sink is not None:
            xp.divide(broadcast, count, out=sink.out)
            sink.commit()

    return run


# ----------------------------------------------------------------------
# Shape manipulation (outputs are per-step views; gradients still land
# in this node's own plan buffer, never aliasing the parent's)
# ----------------------------------------------------------------------
def _forward_reshape(xp, ctx):
    (a,) = ctx.parents
    shape = ctx.kwargs["shape"]
    o = ctx.out

    def run(vals):
        vals[o] = vals[a].reshape(shape)

    return run


def _vjp_reshape(xp, ctx):
    g = ctx.grad_in()
    input_shape = ctx.shape(ctx.parents[0])
    sink = ctx.sink(0)
    g_view = g.reshape(input_shape)

    def run(vals):
        if sink is not None:
            sink.write(g_view)

    return run


def _forward_transpose(xp, ctx):
    (a,) = ctx.parents
    axes = ctx.kwargs["axes"]
    o = ctx.out

    def run(vals):
        vals[o] = vals[a].transpose(axes)

    return run


def _vjp_transpose(xp, ctx):
    g = ctx.grad_in()
    axes = ctx.kwargs["axes"]
    sink = ctx.sink(0)
    if axes is None:
        g_view = g.transpose()
    else:
        inverse = tuple(sorted(range(len(axes)), key=axes.__getitem__))
        g_view = g.transpose(inverse)

    def run(vals):
        if sink is not None:
            sink.write(g_view)

    return run


def _forward_getitem(xp, ctx):
    (a,) = ctx.parents
    index = ctx.kwargs["index"]
    o = ctx.out

    def run(vals):
        vals[o] = vals[a][index]

    return run


def _vjp_getitem(xp, ctx):
    g = ctx.grad_in()
    index = ctx.kwargs["index"]
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            xp.copyto(sink.out, 0.0)
            xp.add_at(sink.out, index, g)
            sink.commit()

    return run


# ----------------------------------------------------------------------
# Element-wise non-linearities
# ----------------------------------------------------------------------
def _forward_relu(xp, ctx):
    (a,) = ctx.parents
    out = ctx.alloc_out()
    mask = ctx.scratch("mask", ctx.out_shape, "bool")
    o = ctx.out

    def run(vals):
        xp.greater(vals[a], 0, out=mask)
        xp.multiply(vals[a], mask, out=out)
        vals[o] = out

    return run


def _vjp_relu(xp, ctx):
    g = ctx.grad_in()
    mask = ctx.saved("mask")
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            xp.multiply(g, mask, out=sink.out)
            sink.commit()

    return run


def _forward_leaky_relu(xp, ctx):
    (a,) = ctx.parents
    slope = ctx.kwargs["negative_slope"]
    mask = ctx.scratch("mask", ctx.out_shape, "bool")
    o = ctx.out

    def run(vals):
        xp.greater(vals[a], 0, out=mask)
        vals[o] = xp.where(mask, vals[a], xp.multiply(vals[a], slope))

    return run


def _vjp_leaky_relu(xp, ctx):
    g = ctx.grad_in()
    slope = ctx.kwargs["negative_slope"]
    mask = ctx.saved("mask")
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            sink.write(xp.where(mask, g, xp.multiply(g, slope)))

    return run


def _forward_tanh(xp, ctx):
    (a,) = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.tanh(vals[a], out=out)
        vals[o] = out

    return run


def _vjp_tanh(xp, ctx):
    g = ctx.grad_in()
    out = ctx.saved_output()
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            squared = xp.power(out, 2)
            xp.subtract(1.0, squared, out=squared)
            xp.multiply(g, squared, out=sink.out)
            sink.commit()

    return run


def _forward_sigmoid(xp, ctx):
    (a,) = ctx.parents
    out = ctx.alloc_out()
    tmp = ctx.scratch("tmp", ctx.out_shape, ctx.out_dtype)
    o = ctx.out

    def run(vals):
        xp.negative(vals[a], out=tmp)
        xp.exp(tmp, out=tmp)
        xp.add(1.0, tmp, out=tmp)
        xp.divide(1.0, tmp, out=out)
        vals[o] = out

    return run


def _vjp_sigmoid(xp, ctx):
    g = ctx.grad_in()
    out = ctx.saved_output()
    tmp = ctx.saved("tmp")
    one_minus = ctx.scratch("one_minus", ctx.out_shape, ctx.out_dtype)
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            xp.multiply(g, out, out=tmp)
            xp.subtract(1.0, out, out=one_minus)
            xp.multiply(tmp, one_minus, out=sink.out)
            sink.commit()

    return run


def _forward_exp(xp, ctx):
    (a,) = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.exp(vals[a], out=out)
        vals[o] = out

    return run


def _vjp_exp(xp, ctx):
    g = ctx.grad_in()
    out = ctx.saved_output()
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            xp.multiply(g, out, out=sink.out)
            sink.commit()

    return run


def _forward_log(xp, ctx):
    (a,) = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.log(vals[a], out=out)
        vals[o] = out

    return run


def _vjp_log(xp, ctx):
    g = ctx.grad_in()
    (a,) = ctx.parents
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            xp.divide(g, vals[a], out=sink.out)
            sink.commit()

    return run


# ----------------------------------------------------------------------
# Convolution (batched-GEMM im2col, mirroring functional.conv2d)
# ----------------------------------------------------------------------
def _forward_conv2d(xp, ctx):
    stride = ctx.kwargs["stride"]
    padding = ctx.kwargs["padding"]
    x_slot, w_slot = ctx.parents[0], ctx.parents[1]
    b_slot = ctx.parents[2] if len(ctx.parents) > 2 else None
    n, c, h, w = ctx.shape(x_slot)
    out_channels, _, kh, kw = ctx.shape(w_slot)
    _, _, out_h, out_w = ctx.out_shape
    length = out_h * out_w
    features = c * kh * kw
    dtype = ctx.out_dtype
    out = ctx.alloc_out()
    out3 = out.reshape(n, out_channels, length)
    # The column buffer is plan-owned storage, visible to the backward
    # kernel through saved() — never a closure cell (the eager engine's
    # cols capture is exactly what the buffer plan replaces).
    cols = ctx.scratch("cols", (n, features, length), dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    o = ctx.out

    if padding:
        padded = ctx.scratch(
            "padded", (n, c, h + 2 * padding, w + 2 * padding), ctx.dtype(x_slot)
        )
        # Borders are written once here and never touched again; only the
        # interior is refreshed per step, matching np.pad's zero borders.
        xp.copyto(padded, 0.0)
        interior = padded[:, :, padding:-padding, padding:-padding]
        windows = xp.sliding_window_view(padded, (kh, kw), axis=(2, 3))
        if stride > 1:
            windows = windows[:, :, ::stride, ::stride]
        windows_t = windows.transpose(0, 1, 4, 5, 2, 3)

        def run(vals):
            xp.copyto(interior, vals[x_slot])
            xp.copyto(cols6, windows_t)
            w_mat = vals[w_slot].reshape(out_channels, features)
            xp.matmul(w_mat, cols, out=out3)
            if b_slot is not None:
                xp.add(out, vals[b_slot].reshape(1, out_channels, 1, 1), out=out)
            vals[o] = out

    else:

        def run(vals):
            windows = xp.sliding_window_view(vals[x_slot], (kh, kw), axis=(2, 3))
            if stride > 1:
                windows = windows[:, :, ::stride, ::stride]
            xp.copyto(cols6, windows.transpose(0, 1, 4, 5, 2, 3))
            w_mat = vals[w_slot].reshape(out_channels, features)
            xp.matmul(w_mat, cols, out=out3)
            if b_slot is not None:
                xp.add(out, vals[b_slot].reshape(1, out_channels, 1, 1), out=out)
            vals[o] = out

    return run


def _vjp_conv2d(xp, ctx):
    stride = ctx.kwargs["stride"]
    padding = ctx.kwargs["padding"]
    x_slot, w_slot = ctx.parents[0], ctx.parents[1]
    b_slot = ctx.parents[2] if len(ctx.parents) > 2 else None
    n, c, h, w = ctx.shape(x_slot)
    out_channels, _, kh, kw = ctx.shape(w_slot)
    _, _, out_h, out_w = ctx.out_shape
    length = out_h * out_w
    features = c * kh * kw
    dtype = ctx.out_dtype
    g = ctx.grad_in()
    g3 = g.reshape(n, out_channels, length)
    cols = ctx.saved("cols")
    x_sink = ctx.sink(0)
    w_sink = ctx.sink(1)
    b_sink = ctx.sink(2) if b_slot is not None else None

    gw_stack = None
    if w_sink is not None:
        gw_stack = ctx.scratch("gw_stack", (n, out_channels, features), dtype)

    grad_cols = None
    pad_buf = None
    interior = None
    if x_sink is not None:
        if w_sink is None:
            # Same liveness rule as the eager closure: nothing reads cols
            # after this node's backward when the weight is frozen, so
            # grad_cols may reuse its storage.  The alias is declared in
            # the plan's saved map, not hidden in a closure cell.
            grad_cols = ctx.alias_saved("grad_cols", cols)
        else:
            grad_cols = ctx.scratch("grad_cols", (n, features, length), dtype)
        pad_buf = ctx.scratch(
            "gx_padded", (n, c, h + 2 * padding, w + 2 * padding), ctx.dtype(x_slot)
        )
        interior = (
            pad_buf[:, :, padding:-padding, padding:-padding] if padding else pad_buf
        )
    gc6 = grad_cols.reshape(n, c, kh, kw, out_h, out_w) if grad_cols is not None else None

    def run(vals):
        if w_sink is not None:
            xp.matmul(g3, cols.transpose(0, 2, 1), out=gw_stack)
            xp.sum(gw_stack, axis=0, out=w_sink.out.reshape(out_channels, features))
            w_sink.commit()
        if x_sink is not None:
            w_mat = vals[w_slot].reshape(out_channels, features)
            xp.matmul(w_mat.T, g3, out=grad_cols)
            xp.copyto(pad_buf, 0.0)
            for i in range(kh):
                i_end = i + stride * out_h
                for j in range(kw):
                    j_end = j + stride * out_w
                    tap = pad_buf[:, :, i:i_end:stride, j:j_end:stride]
                    xp.add(tap, gc6[:, :, i, j, :, :], out=tap)
            x_sink.write(interior)
        if b_sink is not None:
            xp.sum(g, axis=(0, 2, 3), out=b_sink.out)
            b_sink.commit()

    return run


# ----------------------------------------------------------------------
# Cross-entropy loss (the training-loop root)
# ----------------------------------------------------------------------
def _forward_cross_entropy(xp, ctx):
    (logits_slot,) = ctx.parents
    targets_slot = ctx.kwargs["targets"].slot
    n, num_classes = ctx.shape(logits_slot)
    dtype = ctx.dtype(logits_slot)
    out = ctx.alloc_out()
    max_buf = ctx.scratch("max", (n, 1), dtype)
    shifted = ctx.scratch("shifted", (n, num_classes), dtype)
    exp_buf = ctx.scratch("exp", (n, num_classes), dtype)
    sum_buf = ctx.scratch("sum", (n, 1), dtype)
    log_probs = ctx.scratch("log_probs", (n, num_classes), dtype)
    probs = ctx.scratch("probs", (n, num_classes), dtype)
    rows = xp.arange(n)
    o = ctx.out

    def run(vals):
        logits = vals[logits_slot]
        targets = xp.asarray(vals[targets_slot], dtype="int64")
        xp.max(logits, axis=1, keepdims=True, out=max_buf)
        xp.subtract(logits, max_buf, out=shifted)
        xp.exp(shifted, out=exp_buf)
        xp.sum(exp_buf, axis=1, keepdims=True, out=sum_buf)
        xp.log(sum_buf, out=sum_buf)
        xp.subtract(shifted, sum_buf, out=log_probs)
        picked = log_probs[rows, targets]
        out[...] = -picked.mean()
        xp.exp(log_probs, out=probs)
        vals[o] = out

    return run


def _vjp_cross_entropy(xp, ctx):
    (logits_slot,) = ctx.parents
    targets_slot = ctx.kwargs["targets"].slot
    n, _ = ctx.shape(logits_slot)
    g = ctx.grad_in()
    probs = ctx.saved("probs")
    rows = xp.arange(n)
    sink = ctx.sink(0)

    def run(vals):
        if sink is not None:
            targets = xp.asarray(vals[targets_slot], dtype="int64")
            xp.copyto(sink.out, probs)
            sink.out[rows, targets] -= 1.0
            xp.multiply(sink.out, float(g) / n, out=sink.out)
            sink.commit()

    return run


# ----------------------------------------------------------------------
# Time-axis concatenation (GRU output assembly)
# ----------------------------------------------------------------------
def _forward_concat_time(xp, ctx):
    a, b = ctx.parents
    out = ctx.alloc_out()
    o = ctx.out

    def run(vals):
        xp.concatenate([vals[a], vals[b]], axis=1, out=out)
        vals[o] = out

    return run


def _vjp_concat_time(xp, ctx):
    g = ctx.grad_in()
    left_t = ctx.shape(ctx.parents[0])[1]
    right_t = ctx.shape(ctx.parents[1])[1]
    sink0 = ctx.sink(0)
    sink1 = ctx.sink(1)
    left_view = g[:, :left_t, :]
    right_view = g[:, left_t : left_t + right_t, :]

    def run(vals):
        if sink0 is not None:
            sink0.write(left_view)
        if sink1 is not None:
            sink1.write(right_view)

    return run


register_trace_op("add", _forward_add, _vjp_add)
register_trace_op("sub", _forward_sub, _vjp_sub)
register_trace_op("mul", _forward_mul, _vjp_mul)
register_trace_op("neg", _forward_neg, _vjp_neg)
register_trace_op("matmul", _forward_matmul, _vjp_matmul)
register_trace_op("sum", _forward_sum, _vjp_sum)
register_trace_op("mean", _forward_mean, _vjp_mean)
register_trace_op("reshape", _forward_reshape, _vjp_reshape)
register_trace_op("transpose", _forward_transpose, _vjp_transpose)
register_trace_op("getitem", _forward_getitem, _vjp_getitem)
register_trace_op("relu", _forward_relu, _vjp_relu)
register_trace_op("leaky_relu", _forward_leaky_relu, _vjp_leaky_relu)
register_trace_op("tanh", _forward_tanh, _vjp_tanh)
register_trace_op("sigmoid", _forward_sigmoid, _vjp_sigmoid)
register_trace_op("exp", _forward_exp, _vjp_exp)
register_trace_op("log", _forward_log, _vjp_log)
register_trace_op("conv2d", _forward_conv2d, _vjp_conv2d)
register_trace_op("cross_entropy", _forward_cross_entropy, _vjp_cross_entropy)
register_trace_op("concat_time", _forward_concat_time, _vjp_concat_time)
