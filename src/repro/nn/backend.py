"""Pluggable array backends for the trace-replay engine.

The recorded VJP traces of :mod:`repro.nn.trace` never call ``np.*``
directly: every kernel receives an :class:`ArrayBackend` (conventionally
named ``xp``) and goes through it for array math.  The default backend is
a thin veneer over numpy — method-for-method identical to the eager
engine, so replaying a tape through :class:`NumpyBackend` is bit-identical
to eager execution by construction.  An optional torch adapter is detected
at import time and exposed when the dependency happens to be installed;
it is never required (the container pins no torch), and requesting it
without torch raises a clear error instead of importing lazily mid-round.

The indirection is the contract the ``TR001`` lint rule enforces: trace
kernels that reach around ``xp`` straight into ``np.*`` would silently pin
the tape to numpy and break the backend seam.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "get_backend",
    "default_backend",
    "TORCH_AVAILABLE",
]

try:  # pragma: no cover - exercised only when torch is installed
    import torch as _torch  # type: ignore[import-not-found]

    TORCH_AVAILABLE = True
except ImportError:  # pragma: no cover - the reference container has no torch
    _torch = None
    TORCH_AVAILABLE = False


class ArrayBackend:
    """Abstract array-math seam used by trace kernels.

    Subclasses provide the ufunc-style operations the kernels need, with
    numpy calling conventions (``out=`` support where numpy has it).  The
    surface is intentionally small: it covers exactly the operations the
    registered trace ops perform, so a new backend has a short, explicit
    porting checklist instead of an open-ended ``np``-compatibility goal.
    """

    name: str = "abstract"

    def asarray(self, value, dtype=None):
        raise NotImplementedError

    def empty(self, shape, dtype):
        raise NotImplementedError

    def zeros(self, shape, dtype):
        raise NotImplementedError

    def arange(self, n):
        raise NotImplementedError

    def copyto(self, dst, src):
        raise NotImplementedError

    # -- elementwise ---------------------------------------------------
    def add(self, a, b, out=None):
        raise NotImplementedError

    def subtract(self, a, b, out=None):
        raise NotImplementedError

    def multiply(self, a, b, out=None):
        raise NotImplementedError

    def divide(self, a, b, out=None):
        raise NotImplementedError

    def negative(self, a, out=None):
        raise NotImplementedError

    def power(self, a, exponent):
        raise NotImplementedError

    def exp(self, a, out=None):
        raise NotImplementedError

    def log(self, a, out=None):
        raise NotImplementedError

    def tanh(self, a, out=None):
        raise NotImplementedError

    def greater(self, a, b, out=None):
        raise NotImplementedError

    def where(self, condition, a, b):
        raise NotImplementedError

    # -- linear algebra / reductions -----------------------------------
    def matmul(self, a, b, out=None):
        raise NotImplementedError

    def sum(self, a, axis=None, keepdims=False, out=None):
        raise NotImplementedError

    def mean(self, a, axis=None, keepdims=False, out=None):
        raise NotImplementedError

    def max(self, a, axis=None, keepdims=False, out=None):
        raise NotImplementedError

    def broadcast_to(self, a, shape):
        raise NotImplementedError

    def expand_dims(self, a, axis):
        raise NotImplementedError

    # -- structural ----------------------------------------------------
    def add_at(self, a, index, values):
        raise NotImplementedError

    def sliding_window_view(self, a, window, axis):
        raise NotImplementedError

    def concatenate(self, arrays, axis, out=None):
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The reference backend: every method is the numpy function itself.

    Because eager mode *is* numpy, routing replay through this backend
    keeps the bit-identity contract trivially: the same ufuncs run on the
    same values in the same order, only the storage (plan-owned buffers
    instead of fresh allocations) differs.
    """

    name = "numpy"

    def asarray(self, value, dtype=None):
        return np.asarray(value, dtype=dtype)

    def empty(self, shape, dtype):
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def arange(self, n):
        return np.arange(n)

    def copyto(self, dst, src):
        np.copyto(dst, src)

    def add(self, a, b, out=None):
        return np.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return np.subtract(a, b, out=out)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def divide(self, a, b, out=None):
        return np.divide(a, b, out=out)

    def negative(self, a, out=None):
        return np.negative(a, out=out)

    def power(self, a, exponent):
        return a ** exponent

    def exp(self, a, out=None):
        return np.exp(a, out=out)

    def log(self, a, out=None):
        return np.log(a, out=out)

    def tanh(self, a, out=None):
        return np.tanh(a, out=out)

    def greater(self, a, b, out=None):
        return np.greater(a, b, out=out)

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    def sum(self, a, axis=None, keepdims=False, out=None):
        return np.sum(a, axis=axis, keepdims=keepdims, out=out)

    def mean(self, a, axis=None, keepdims=False, out=None):
        return np.mean(a, axis=axis, keepdims=keepdims, out=out)

    def max(self, a, axis=None, keepdims=False, out=None):
        return np.max(a, axis=axis, keepdims=keepdims, out=out)

    def broadcast_to(self, a, shape):
        return np.broadcast_to(a, shape)

    def expand_dims(self, a, axis):
        return np.expand_dims(a, axis)

    def add_at(self, a, index, values):
        np.add.at(a, index, values)

    def sliding_window_view(self, a, window, axis):
        return np.lib.stride_tricks.sliding_window_view(a, window, axis=axis)

    def concatenate(self, arrays, axis, out=None):
        return np.concatenate(arrays, axis=axis, out=out)


class TorchBackend(ArrayBackend):  # pragma: no cover - requires torch
    """Torch adapter (CPU tensors), available only when torch is importable.

    Buffers live as ``torch.Tensor`` objects; ``asarray`` bridges from
    numpy.  This adapter exists to prove the seam (and to let a
    torch-equipped machine replay tapes on torch storage) — it makes no
    bit-identity promise against the numpy path, since torch's kernels
    round differently.
    """

    name = "torch"

    def __init__(self) -> None:
        if _torch is None:
            raise RuntimeError(
                "the torch backend requires torch, which is not installed; "
                "use get_backend('numpy')"
            )

    def asarray(self, value, dtype=None):
        tensor = _torch.as_tensor(np.asarray(value, dtype=dtype))
        return tensor

    def empty(self, shape, dtype):
        return _torch.empty(shape, dtype=_torch.from_numpy(np.empty(0, dtype=dtype)).dtype)

    def zeros(self, shape, dtype):
        return _torch.zeros(shape, dtype=_torch.from_numpy(np.empty(0, dtype=dtype)).dtype)

    def arange(self, n):
        return _torch.arange(n)

    def copyto(self, dst, src):
        dst.copy_(src if _torch.is_tensor(src) else _torch.as_tensor(src))

    def add(self, a, b, out=None):
        return _torch.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return _torch.sub(a, b, out=out)

    def multiply(self, a, b, out=None):
        return _torch.mul(a, b, out=out)

    def divide(self, a, b, out=None):
        return _torch.div(a, b, out=out)

    def negative(self, a, out=None):
        return _torch.neg(a, out=out)

    def power(self, a, exponent):
        return a ** exponent

    def exp(self, a, out=None):
        return _torch.exp(a, out=out)

    def log(self, a, out=None):
        return _torch.log(a, out=out)

    def tanh(self, a, out=None):
        return _torch.tanh(a, out=out)

    def greater(self, a, b, out=None):
        return _torch.gt(a, b, out=out)

    def where(self, condition, a, b):
        return _torch.where(condition, a, b)

    def matmul(self, a, b, out=None):
        return _torch.matmul(a, b, out=out)

    def sum(self, a, axis=None, keepdims=False, out=None):
        if axis is None:
            return _torch.sum(a) if out is None else _torch.sum(a, out=out)
        return _torch.sum(a, dim=axis, keepdim=keepdims, out=out)

    def mean(self, a, axis=None, keepdims=False, out=None):
        if axis is None:
            return _torch.mean(a) if out is None else _torch.mean(a, out=out)
        return _torch.mean(a, dim=axis, keepdim=keepdims, out=out)

    def max(self, a, axis=None, keepdims=False, out=None):
        if axis is None:
            return _torch.max(a)
        return _torch.amax(a, dim=axis, keepdim=keepdims, out=out)

    def broadcast_to(self, a, shape):
        return _torch.broadcast_to(a, shape)

    def expand_dims(self, a, axis):
        return _torch.unsqueeze(a, axis)

    def add_at(self, a, index, values):
        a[index] += values

    def sliding_window_view(self, a, window, axis):
        raise NotImplementedError(
            "the torch adapter has no sliding_window_view; conv tapes "
            "currently replay on the numpy backend only"
        )

    def concatenate(self, arrays, axis, out=None):
        return _torch.cat(arrays, dim=axis, out=out)


_NUMPY_BACKEND = NumpyBackend()


def available_backends() -> List[str]:
    """Names of backends importable in this environment."""
    names = ["numpy"]
    if TORCH_AVAILABLE:
        names.append("torch")
    return names


def get_backend(name: str = "numpy") -> ArrayBackend:
    """Return the backend registered under ``name``.

    ``"numpy"`` always works; ``"torch"`` works only when torch is
    installed and otherwise raises ``RuntimeError`` with the remedy.
    """
    key = name.lower()
    if key == "numpy":
        return _NUMPY_BACKEND
    if key == "torch":
        return TorchBackend()
    raise KeyError(f"unknown array backend '{name}'; available: {available_backends()}")


def default_backend() -> ArrayBackend:
    """The backend traces replay on unless a caller overrides it."""
    return _NUMPY_BACKEND
