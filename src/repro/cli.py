"""Command-line interface for running reproduction experiments.

Examples
--------
Run one attack/defense experiment at benchmark scale and print the metrics::

    python -m repro run --dataset cifar-10 --attack dfa-g --defense bulyan

Run a whole scenario (one table/figure) and save a CSV/JSON summary::

    python -m repro scenario table2 --output results/table2

List the available attacks, defenses, datasets and scenarios::

    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .attacks import available_attacks
from .data.synthetic import DATASET_FACTORIES
from .defenses import available_defenses
from .experiments import ExperimentRunner, benchmark_scale, paper_scale, scenarios, smoke_scale
from .experiments.io import save_results, write_summary_csv
from .utils import format_table

__all__ = ["main", "build_parser"]

_SCALES: Dict[str, Callable] = {
    "smoke": smoke_scale,
    "benchmark": benchmark_scale,
    "paper": paper_scale,
}

_SCENARIOS: Dict[str, Callable] = {
    "random-weights": scenarios.random_weights_motivation,
    "table2": scenarios.table2_scenarios,
    "fig4": scenarios.fig4_scenarios,
    "fig5": scenarios.fig5_scenarios,
    "fig6": scenarios.fig6_scenarios,
    "fig7": scenarios.fig7_scenarios,
    "table3": scenarios.table3_scenarios,
    "table4": scenarios.table4_scenarios,
    "fig8": scenarios.fig8_scenarios,
    "fig9": scenarios.fig9_scenarios,
    "fig10": scenarios.fig10_scenarios,
    "set-size": scenarios.synthetic_set_size_scenarios,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fabricated Flips: Poisoning Federated Learning without Data'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run a single attack-vs-defense experiment")
    run.add_argument("--dataset", default="fashion-mnist", choices=sorted(DATASET_FACTORIES))
    run.add_argument("--attack", default=None, help="attack name (omit for a clean run)")
    run.add_argument("--defense", default="fedavg", help="defense name")
    run.add_argument("--scale", default="benchmark", choices=sorted(_SCALES))
    run.add_argument("--beta", type=float, default=None, help="Dirichlet beta (omit for preset default)")
    run.add_argument("--iid", action="store_true", help="use an i.i.d. split instead of Dirichlet")
    run.add_argument("--rounds", type=int, default=None, help="override the number of rounds")
    run.add_argument("--malicious-fraction", type=float, default=None)
    run.add_argument("--seed", type=int, default=0)

    scenario = subparsers.add_parser("scenario", help="run every experiment of one table/figure")
    scenario.add_argument("name", choices=sorted(_SCENARIOS))
    scenario.add_argument("--scale", default="benchmark", choices=sorted(_SCALES))
    scenario.add_argument("--output", default=None, help="basename for .json/.csv result files")

    subparsers.add_parser("list", help="list datasets, attacks, defenses and scenarios")
    return parser


def _run_single(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    overrides = {"attack": args.attack, "defense": args.defense, "seed": args.seed}
    if args.iid:
        overrides["beta"] = None
    elif args.beta is not None:
        overrides["beta"] = args.beta
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.malicious_fraction is not None:
        overrides["malicious_fraction"] = args.malicious_fraction
    config = scale(args.dataset, **overrides)

    runner = ExperimentRunner()
    result = runner.run(config)
    rows = [
        ["clean accuracy acc (%)", 100.0 * (result.baseline_accuracy or 0.0)],
        ["max accuracy under attack acc_m (%)", 100.0 * result.max_accuracy],
        ["final accuracy (%)", 100.0 * result.final_accuracy],
        ["attack success rate ASR (%)", result.asr],
        ["defense pass rate DPR (%)", result.dpr],
    ]
    print(f"dataset={args.dataset} attack={args.attack} defense={args.defense} scale={args.scale}")
    print(format_table(["metric", "value"], rows))
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    scenario_list = _SCENARIOS[args.name](scale)
    runner = ExperimentRunner()
    results = []
    for label, config in scenario_list:
        result = runner.run(config)
        results.append((label, result))
        print(
            f"{label:45s} acc_m={100.0 * result.max_accuracy:5.1f}%  "
            f"ASR={result.asr:6.1f}%  DPR={'N/A' if result.dpr is None else f'{result.dpr:.1f}%'}"
        )
    if args.output:
        json_path = save_results(results, f"{args.output}.json")
        csv_path = write_summary_csv(results, f"{args.output}.csv")
        print(f"\nsaved {json_path} and {csv_path}")
    return 0


def _run_list(_: argparse.Namespace) -> int:
    print("datasets:  " + ", ".join(sorted(DATASET_FACTORIES)))
    print("attacks:   " + ", ".join(available_attacks()))
    print("defenses:  " + ", ".join(available_defenses()))
    print("scenarios: " + ", ".join(sorted(_SCENARIOS)))
    print("scales:    " + ", ".join(sorted(_SCALES)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _run_single(args)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "list":
        return _run_list(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
