"""Command-line interface for running reproduction experiments.

Examples
--------
Run one attack/defense experiment at benchmark scale and print the metrics::

    python -m repro run --dataset cifar-10 --attack dfa-g --defense bulyan

Run a whole scenario (one table/figure) and save a CSV/JSON summary::

    python -m repro scenario table2 --output results/table2

Sweep an attack × defense × beta × attacker-fraction grid across four
worker processes, caching each finished cell on disk::

    python -m repro grid --attacks dfa-r,dfa-g --defenses mkrum,bulyan \
        --betas 0.1,0.5 --workers 4 --cache-dir .repro-cache

Split the same grid across several hosts sharing one cache directory
(cooperative claim leases; see ``repro.experiments.dispatch``), or
statically with ``--shard i/n``::

    python -m repro grid --attacks dfa-r,dfa-g --defenses mkrum,bulyan \
        --betas 0.1,0.5 --workers 4 --cache-dir /shared/cache --claim-ttl 900

List the available attacks, defenses, datasets and scenarios::

    python -m repro list
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from .attacks import available_attacks
from .data.synthetic import DATASET_FACTORIES
from .defenses import available_defenses
from .experiments import ExperimentRunner, benchmark_scale, paper_scale, scenarios, smoke_scale
from .experiments import dispatch
from .experiments.grid import GridExecutionError, GridRunner, expand_grid
from .experiments.io import save_results, write_summary_csv
from .fl.dispatch_policy import DispatchPolicy
from .fl.faults import FaultPlan, ResilienceConfig
from .utils import format_table

__all__ = ["main", "build_parser"]

_SCALES: Dict[str, Callable] = {
    "smoke": smoke_scale,
    "benchmark": benchmark_scale,
    "paper": paper_scale,
}

_SCENARIOS: Dict[str, Callable] = {
    "random-weights": scenarios.random_weights_motivation,
    "table2": scenarios.table2_scenarios,
    "fig4": scenarios.fig4_scenarios,
    "fig5": scenarios.fig5_scenarios,
    "fig6": scenarios.fig6_scenarios,
    "fig7": scenarios.fig7_scenarios,
    "table3": scenarios.table3_scenarios,
    "table4": scenarios.table4_scenarios,
    "fig8": scenarios.fig8_scenarios,
    "fig9": scenarios.fig9_scenarios,
    "fig10": scenarios.fig10_scenarios,
    "set-size": scenarios.synthetic_set_size_scenarios,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fabricated Flips: Poisoning Federated Learning without Data'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run a single attack-vs-defense experiment")
    run.add_argument("--dataset", default="fashion-mnist", choices=sorted(DATASET_FACTORIES))
    run.add_argument("--attack", default=None, help="attack name (omit for a clean run)")
    run.add_argument("--defense", default="fedavg", help="defense name")
    run.add_argument("--scale", default="benchmark", choices=sorted(_SCALES))
    run.add_argument("--beta", type=float, default=None, help="Dirichlet beta (omit for preset default)")
    run.add_argument("--iid", action="store_true", help="use an i.i.d. split instead of Dirichlet")
    run.add_argument("--rounds", type=int, default=None, help="override the number of rounds")
    run.add_argument("--malicious-fraction", type=float, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="client-level fan-out processes for local training (1 = serial)",
    )
    run.add_argument(
        "--dispatch",
        default=None,
        metavar="SPEC",
        help="dispatch-policy spec, e.g. 'adaptive', 'process:2' or "
        "'adaptive,distance=serial' (overrides --workers)",
    )
    run.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the dispatch decision trace and executor counters as JSON",
    )
    _add_resilience_args(run)
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="write a round-granular checkpoint here; combine with --resume "
        "to continue an interrupted run bit-identically",
    )

    scenario = subparsers.add_parser("scenario", help="run every experiment of one table/figure")
    scenario.add_argument("name", choices=sorted(_SCENARIOS))
    scenario.add_argument("--scale", default="benchmark", choices=sorted(_SCALES))
    scenario.add_argument("--output", default=None, help="basename for .json/.csv result files")
    scenario.add_argument(
        "--workers", type=int, default=1, help="scenario-level worker processes (1 = serial)"
    )
    scenario.add_argument(
        "--dispatch",
        default=None,
        metavar="SPEC",
        help="dispatch-policy spec governing the scenario batch (overrides --workers)",
    )
    scenario.add_argument(
        "--cache-dir", default=None, help="per-scenario result cache directory"
    )

    grid = subparsers.add_parser(
        "grid", help="sweep an attack x defense x beta x fraction scenario grid"
    )
    grid.add_argument("--datasets", default="fashion-mnist", help="comma-separated dataset names")
    grid.add_argument("--attacks", default="dfa-r,dfa-g", help="comma-separated attack names")
    grid.add_argument("--defenses", default="mkrum,bulyan", help="comma-separated defense names")
    grid.add_argument(
        "--betas",
        default="0.5",
        help="comma-separated Dirichlet betas; 'iid' for an i.i.d. split",
    )
    grid.add_argument(
        "--fractions", default="0.2", help="comma-separated attacker fractions (e.g. 0.1,0.2,0.3)"
    )
    grid.add_argument("--seeds", default="0", help="comma-separated RNG seeds")
    grid.add_argument("--scale", default="benchmark", choices=sorted(_SCALES))
    grid.add_argument("--rounds", type=int, default=None, help="override the number of rounds")
    grid.add_argument(
        "--workers", type=int, default=1, help="scenario-level worker processes (1 = serial)"
    )
    grid.add_argument(
        "--dispatch",
        default=None,
        metavar="SPEC",
        help="dispatch-policy spec governing the sweep (overrides --workers)",
    )
    grid.add_argument(
        "--cache-dir",
        default=None,
        help="directory of per-scenario JSON artifacts; re-runs skip cached cells",
    )
    grid.add_argument(
        "--claim-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cooperative multi-runner dispatch: claim cells via <hash>.claim "
        "lease files in the shared --cache-dir, skipping cells a live peer "
        "holds and stealing leases staler than this TTL",
    )
    grid.add_argument(
        "--runner-id",
        default=None,
        help="identity written into claim leases (default: host-pid-nonce)",
    )
    grid.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="static partition fallback: only run cells whose config hash "
        "maps to shard I of N (0-based), e.g. --shard 0/4",
    )
    grid.add_argument(
        "--no-wait",
        action="store_true",
        help="with --claim-ttl: exit once every unclaimed cell is done "
        "instead of waiting for peers' in-flight cells to land in the cache",
    )
    grid.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write this run's GridStats as JSON (claim/steal/skip counters "
        "included) for scripting and CI assertions",
    )
    grid.add_argument("--output", default=None, help="basename for .json/.csv result files")
    grid.add_argument(
        "--cell-dispatch",
        default=None,
        metavar="SPEC",
        help="dispatch-policy spec for client fan-out INSIDE each cell "
        "(grid cells default to serial inner dispatch); e.g. 'process:2'",
    )
    _add_resilience_args(grid)

    subparsers.add_parser("list", help="list datasets, attacks, defenses and scenarios")

    lint = subparsers.add_parser(
        "lint",
        help="statically check the determinism/dtype/fan-out contracts",
        description="AST-lint python sources against the reproduction's "
        "standing contracts (seeded-Generator RNG, float64 defense "
        "geometry, picklable fan-out, shm lifecycle, deterministic "
        "ordering); exits nonzero on any non-suppressed finding.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of grandfathered findings to suppress",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write current findings as a baseline file and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule ID and the contract it encodes, then exit",
    )
    lint.add_argument(
        "--whole-program",
        action="store_true",
        help="additionally run the interprocedural rule families "
        "(RNG101, DT101, MUT001-003) over the project call graph; "
        "supersedes DT001's function-local tracker",
    )
    lint.add_argument(
        "--callgraph-json",
        default=None,
        metavar="FILE",
        help="with --whole-program: also write the project call graph "
        "(functions + resolved edges) as JSON",
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only files reported changed by git (staged, unstaged "
        "and untracked), intersected with the requested paths — the "
        "pre-commit shape documented in the README",
    )
    return parser


def _add_resilience_args(sub: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by ``run`` and ``grid``."""
    sub.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="per-client retry budget for failed round tasks (default 2 "
        "once any resilience flag is given; omit all of them to disable "
        "the recovery plane entirely)",
    )
    sub.add_argument(
        "--round-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt straggler deadline; clients still running when it "
        "expires are cut from the round (recorded in the round record)",
    )
    sub.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="JSON fault-injection plan (chaos testing); see repro.fl.faults",
    )
    sub.add_argument(
        "--resume",
        action="store_true",
        help="resume from round checkpoints left by an interrupted run",
    )


def _policy_from_args(args: argparse.Namespace) -> DispatchPolicy:
    """Resolve ``--dispatch`` / ``--workers`` into one dispatch policy.

    ``--dispatch SPEC`` wins; otherwise ``--workers N > 1`` maps to a fixed
    process policy (the pre-policy CLI behaviour) and everything else runs
    serial.
    """
    workers = getattr(args, "workers", 1) or 1
    spec = getattr(args, "dispatch", None)
    if spec:
        policy = DispatchPolicy.parse(spec)
        if policy.workers is None and workers > 1:
            policy.workers = workers
        return policy
    if workers > 1:
        return DispatchPolicy.fixed("process", workers=workers)
    return DispatchPolicy.serial()


def _resilience_from_args(args: argparse.Namespace) -> Optional[ResilienceConfig]:
    """Resolve the fault-tolerance flags into one config, or ``None``.

    ``None`` (no flag given) keeps the recovery plane entirely out of the
    round loop — the fault-free hot path stays hook-free.
    """
    plan_spec = getattr(args, "fault_plan", None)
    max_retries = getattr(args, "max_retries", None)
    deadline = getattr(args, "round_deadline", None)
    if plan_spec is None and max_retries is None and deadline is None:
        return None
    plan = FaultPlan.from_file(plan_spec) if plan_spec else None
    return ResilienceConfig(
        max_retries=2 if max_retries is None else max_retries,
        round_deadline=deadline,
        fault_plan=plan,
    )


def _chaos_summary(counters: Dict[str, int]) -> Optional[str]:
    """One-line chaos/recovery report, or ``None`` when nothing fired."""
    if not counters:
        return None
    parts = [f"{name}={value}" for name, value in sorted(counters.items()) if value]
    return "chaos: " + " ".join(parts) if parts else None


def _write_policy_stats(
    policy: DispatchPolicy,
    path_spec: Optional[str],
    extra: Optional[Dict] = None,
) -> None:
    """Dump the policy's decision trace + counters as JSON when requested."""
    if not path_spec:
        return
    path = Path(path_spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "dispatch_decisions": policy.trace_dicts(),
        "counters": policy.counter_snapshot(),
    }
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2))
    print(f"stats written to {path}")


def _run_single(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    overrides = {"attack": args.attack, "defense": args.defense, "seed": args.seed}
    if args.iid:
        overrides["beta"] = None
    elif args.beta is not None:
        overrides["beta"] = args.beta
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.malicious_fraction is not None:
        overrides["malicious_fraction"] = args.malicious_fraction
    config = scale(args.dataset, **overrides)

    policy = _policy_from_args(args)
    runner = ExperimentRunner(
        policy=policy,
        resilience=_resilience_from_args(args),
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    result = runner.run(config)
    rows = [
        ["clean accuracy acc (%)", 100.0 * (result.baseline_accuracy or 0.0)],
        ["max accuracy under attack acc_m (%)", 100.0 * result.max_accuracy],
        ["final accuracy (%)", 100.0 * result.final_accuracy],
        ["attack success rate ASR (%)", result.asr],
        ["defense pass rate DPR (%)", result.dpr],
    ]
    print(f"dataset={args.dataset} attack={args.attack} defense={args.defense} scale={args.scale}")
    print(format_table(["metric", "value"], rows))
    chaos = _chaos_summary(result.fault_stats)
    if chaos:
        print(chaos)
    _write_policy_stats(
        policy, args.stats_json, extra={"fault_stats": dict(result.fault_stats)}
    )
    return 0


def _print_result_line(label: str, result) -> None:
    asr = "   N/A" if result.asr is None else f"{result.asr:6.1f}%"
    dpr = "N/A" if result.dpr is None else f"{result.dpr:.1f}%"
    print(f"{label:45s} acc_m={100.0 * result.max_accuracy:5.1f}%  ASR={asr}  DPR={dpr}")


def _save_if_requested(results, output: Optional[str]) -> None:
    if output:
        json_path = save_results(results, f"{output}.json")
        csv_path = write_summary_csv(results, f"{output}.csv")
        print(f"\nsaved {json_path} and {csv_path}")


def _run_scenario(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    scenario_list = _SCENARIOS[args.name](scale)
    policy = _policy_from_args(args)
    batch = policy.decide("grid", items=len(scenario_list), work=float(len(scenario_list)))
    if batch.backend == "process" or args.cache_dir:
        runner = GridRunner(policy=policy, cache_dir=args.cache_dir, progress=print)
        results = runner.run(scenario_list)
        for label, result in results:
            _print_result_line(label, result)
    else:
        runner = ExperimentRunner(policy=policy)
        results = []
        for label, config in scenario_list:
            result = runner.run(config)
            results.append((label, result))
            _print_result_line(label, result)
    _save_if_requested(results, args.output)
    return 0


def _split_csv(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _grid_axes_or_exit(parser: argparse.ArgumentParser, args: argparse.Namespace) -> Dict:
    """Parse and validate the grid axes, exiting with a usage error on bad input."""
    datasets = _split_csv(args.datasets)
    for dataset in datasets:
        if dataset not in DATASET_FACTORIES:
            parser.error(f"unknown dataset '{dataset}'; choose from {sorted(DATASET_FACTORIES)}")
    attacks = [
        None if part.lower() in {"none", "clean"} else part for part in _split_csv(args.attacks)
    ]
    for attack in attacks:
        if attack is not None and attack not in available_attacks():
            parser.error(f"unknown attack '{attack}'; choose from {available_attacks()}")
    defenses = _split_csv(args.defenses)
    for defense in defenses:
        if defense not in available_defenses():
            parser.error(f"unknown defense '{defense}'; choose from {available_defenses()}")
    try:
        betas = [
            None if part.lower() == "iid" else float(part) for part in _split_csv(args.betas)
        ]
        fractions = [float(part) for part in _split_csv(args.fractions)]
        seeds = [int(part) for part in _split_csv(args.seeds)]
    except ValueError as error:
        parser.error(f"bad numeric axis value: {error}")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if not (datasets and attacks and defenses and betas and fractions and seeds):
        parser.error("every grid axis needs at least one value")
    return dict(
        datasets=datasets,
        attacks=attacks,
        defenses=defenses,
        betas=betas,
        malicious_fractions=fractions,
        seeds=seeds,
    )


def _run_grid(args: argparse.Namespace) -> int:
    parser = build_parser()
    axes = _grid_axes_or_exit(parser, args)
    scale = _SCALES[args.scale]
    overrides = {}
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.cell_dispatch is not None:
        overrides["dispatch"] = args.cell_dispatch
    if args.claim_ttl is not None and args.cache_dir is None:
        parser.error("--claim-ttl needs --cache-dir (leases live next to the artifacts)")
    if args.claim_ttl is not None and args.claim_ttl <= 0:
        parser.error("--claim-ttl must be positive")
    shard = None
    if args.shard is not None:
        try:
            shard = dispatch.parse_shard(args.shard)
        except ValueError as error:
            parser.error(str(error))
    scenario_list = expand_grid(scale=scale, **axes, **overrides)
    policy = _policy_from_args(args)
    print(f"grid: {len(scenario_list)} scenarios, workers={args.workers}, "
          f"cache={args.cache_dir or 'disabled'}")
    runner = GridRunner(
        policy=policy,
        cache_dir=args.cache_dir,
        progress=print,
        runner_id=args.runner_id,
        claim_ttl=args.claim_ttl,
        shard=shard,
        wait_for_peers=not args.no_wait,
        resilience=_resilience_from_args(args),
        resume=args.resume,
    )
    exit_code = 0
    try:
        results = runner.run(scenario_list)
    except GridExecutionError as error:
        # GridBaselineError is a subclass: baseline-starved cells appear in
        # the failure list and completed siblings are still salvaged.
        results = error.results
        print(f"\nFAILED cells ({len(error.failures)}):")
        for label, message in sorted(error.failures.items()):
            print(f"  {label}: {message}")
        exit_code = 1
    stats = runner.last_stats
    print()
    for label, result in results:
        _print_result_line(label, result)
    summary = (
        f"\n{stats.total} scenarios: {stats.cache_hits} cached, {stats.executed} executed "
        f"(+{stats.baselines_executed} baselines) in {stats.wall_seconds:.1f}s"
    )
    if stats.failed:
        summary += f"; {stats.failed} failed"
    if args.claim_ttl is not None:
        summary += (
            f"\nclaims: {stats.claims_acquired} acquired, {stats.claims_stolen} stolen, "
            f"{stats.claims_expired} expired, {stats.cells_skipped_claimed} peer-claimed, "
            f"{stats.baselines_awaited} baselines awaited"
        )
    if args.shard is not None:
        summary += f"\nshard {args.shard}: {stats.cells_skipped_shard} cells left to other shards"
    if stats.dataset_publications:
        summary += f"\ndatasets published once per sweep: {stats.dataset_publications}"
    chaos = _chaos_summary(stats.fault_stats)
    if chaos:
        summary += "\n" + chaos
    print(summary)
    if args.stats_json:
        path = Path(args.stats_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(dataclasses.asdict(stats), indent=2))
        print(f"stats written to {path}")
    _save_if_requested(results, args.output)
    return exit_code


def _run_list(_: argparse.Namespace) -> int:
    print("datasets:  " + ", ".join(sorted(DATASET_FACTORIES)))
    print("attacks:   " + ", ".join(available_attacks()))
    print("defenses:  " + ", ".join(available_defenses()))
    print("scenarios: " + ", ".join(sorted(_SCENARIOS)))
    print("scales:    " + ", ".join(sorted(_SCALES)))
    return 0


def _git_changed_files() -> Optional[List[Path]]:
    """Paths git reports as changed (staged, unstaged, untracked).

    ``None`` when git is unavailable or the working directory is not a
    repository — the caller degrades to a no-op rather than failing a
    pre-commit hook in an exported tree.
    """
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    changed: List[Path] = []
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        entry = line[3:]
        if " -> " in entry:  # rename: lint the new path
            entry = entry.split(" -> ", 1)[1]
        if entry.startswith('"') and entry.endswith('"'):
            entry = entry[1:-1]
        path = Path(entry)
        if path.suffix == ".py" and path.exists():
            changed.append(path)
    return changed


def _select_changed(paths: List[str]) -> Optional[List[Path]]:
    """Changed .py files under the requested paths (see ``lint --changed``)."""
    changed = _git_changed_files()
    if changed is None:
        return None
    roots = [Path(p).resolve() for p in paths]
    selected: List[Path] = []
    for path in changed:
        resolved = path.resolve()
        for root in roots:
            if resolved == root or root in resolved.parents:
                selected.append(path)
                break
    return selected


def _run_lint(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import Baseline, default_program_rules, default_rules, lint_paths

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.contract}")
        if args.whole_program:
            for prule in default_program_rules():
                print(f"{prule.rule_id}  {prule.contract}")
        return 0
    if args.callgraph_json and not args.whole_program:
        print("--callgraph-json requires --whole-program", file=sys.stderr)
        return 2
    paths = args.paths or ["src", "tests"]
    lint_targets: Sequence[Union[str, Path]] = paths
    if args.changed:
        selected = _select_changed(paths)
        if selected is None:
            print(
                "lint --changed: not a git checkout (or git unavailable); "
                "nothing to lint",
                file=sys.stderr,
            )
            return 0
        lint_targets = selected
    baseline = Baseline.load(args.baseline) if args.baseline else None
    program_out: List[object] = []
    report = lint_paths(
        lint_targets,
        rules=rules,
        baseline=baseline,
        whole_program=args.whole_program,
        program_out=program_out,  # type: ignore[arg-type]
    )
    if args.callgraph_json and program_out:
        graph = program_out[0].graph  # type: ignore[attr-defined]
        target = Path(args.callgraph_json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(_json.dumps(graph.to_dict(), indent=2) + "\n")
        print(f"call graph written to {target}")
    if args.write_baseline:
        Baseline.from_diagnostics(report.diagnostics).save(args.write_baseline)
        print(
            f"wrote baseline with {len(report.diagnostics)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.format == "json":
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _run_single(args)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "grid":
        return _run_grid(args)
    if args.command == "list":
        return _run_list(args)
    if args.command == "lint":
        return _run_lint(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
