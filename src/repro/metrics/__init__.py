"""Evaluation metrics of the paper: accuracy, ASR (Eq. 4) and DPR (Eq. 5)."""

from .rates import (
    attack_success_rate,
    defense_pass_rate,
    max_accuracy,
    prediction_balance,
    prediction_confidence,
)

__all__ = [
    "attack_success_rate",
    "defense_pass_rate",
    "max_accuracy",
    "prediction_balance",
    "prediction_confidence",
]
