"""Metric computations used throughout the evaluation harness."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..fl.types import RoundRecord

__all__ = [
    "attack_success_rate",
    "defense_pass_rate",
    "max_accuracy",
    "prediction_balance",
    "prediction_confidence",
]


def attack_success_rate(clean_accuracy: float, attacked_max_accuracy: float) -> float:
    """Attack success rate (Eq. 4), in percent.

    ``clean_accuracy`` is the accuracy without attacks and defenses
    (``acc``); ``attacked_max_accuracy`` is the maximum accuracy reached
    during the attacked run (``acc_m``).  Higher means a stronger attack.
    """
    if not 0.0 < clean_accuracy <= 1.0 + 1e-9:
        raise ValueError("clean_accuracy must be a fraction in (0, 1]")
    if attacked_max_accuracy < 0.0:
        raise ValueError("attacked_max_accuracy must be non-negative")
    return (clean_accuracy - attacked_max_accuracy) / clean_accuracy * 100.0


def defense_pass_rate(records: Sequence[RoundRecord]) -> Optional[float]:
    """Defense pass rate (Eq. 5), in percent.

    The fraction of selected attacker clients whose updates were accepted by
    the defense, aggregated over all rounds.  Returns ``None`` when the
    defense does not select whole updates (Median, Trimmed mean) or no
    attacker was ever selected.
    """
    passed = 0
    selected = 0
    defined = False
    for record in records:
        if record.num_malicious_passed is None:
            continue
        defined = True
        passed += record.num_malicious_passed
        selected += record.num_malicious_selected
    if not defined or selected == 0:
        return None
    return passed / selected * 100.0


def max_accuracy(records: Sequence[RoundRecord]) -> float:
    """Maximum global-model accuracy over the run (``acc_m``)."""
    if not records:
        return 0.0
    return max(record.accuracy for record in records)


def prediction_balance(predicted_labels: Iterable[int], num_classes: int) -> float:
    """Inverse standard deviation of the predicted-label histogram.

    Convenience wrapper matching REFD's balance value (Eq. 6), exposed here
    for analysis scripts that want the statistic without running a defense.
    It delegates to :func:`repro.defenses.refd.balance_value`, so the metric
    and the defense cannot disagree: in particular a zero-std (perfectly
    balanced) histogram scores ``sqrt(C / 2)`` — the supremum of the finite
    inverse-std values — not the old ``1.0`` sentinel, which ranked perfect
    balance *below* mildly biased histograms in analysis output long after
    the defense itself was fixed.
    """
    # Imported lazily: metrics is a leaf package and must not pull the
    # defense stack (and its executor machinery) in at import time.
    from ..defenses.refd import balance_value

    counts = np.bincount(np.asarray(list(predicted_labels)), minlength=num_classes)
    return balance_value(counts)


def prediction_confidence(probabilities: np.ndarray) -> float:
    """Mean maximum class probability (Eq. 7)."""
    probabilities = np.asarray(probabilities)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be (num_samples, num_classes)")
    return float(probabilities.max(axis=1).mean())
