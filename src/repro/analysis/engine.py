"""AST-walking lint engine enforcing the reproduction's standing contracts.

The determinism, dtype and fan-out guarantees this repository rests on
(bit-identical serial/thread/process execution, float64 defense geometry
over float32 payloads, seeded-``Generator``-only randomness, picklable
module-level fan-out functions) are invariants of the *source*, not of any
single test run — a stray ``np.random.shuffle`` or a float32 accumulation
in ``defenses/`` breaks them silently and surfaces rounds later as a flaky
cross-backend mismatch.  This engine checks those contracts statically:

* :class:`Rule` subclasses (one module per rule family, see
  ``repro.analysis.rules_*``) inspect one parsed file at a time through a
  :class:`FileContext` that pre-indexes AST nodes by type, links parents,
  and resolves import aliases to canonical dotted names;
* :class:`ProgramRule` subclasses (``repro.analysis.rules_wholeprogram``)
  see every file at once through a :class:`ProgramContext` — the project
  symbol table, call graph (:mod:`repro.analysis.callgraph`) and
  fixpoint-propagated per-function summaries
  (:mod:`repro.analysis.summaries`) — enabled by
  ``lint_paths(..., whole_program=True)`` / ``repro lint --whole-program``;
* diagnostics render as ``file:line:col RULE-ID message``;
* ``# repro: allow[RULE-ID] <justification>`` pragmas suppress a finding on
  the same line (or from a comment-only line immediately above, reaching
  through any decorator list onto the decorated ``def``);
* a JSON :class:`Baseline` grandfathers known findings so the linter can be
  adopted on a tree that is not yet clean without losing its gate on *new*
  violations.

The engine is deliberately dependency-free (stdlib ``ast`` only) so
``repro lint`` runs in any environment that can import the package.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .callgraph import CallGraph, ProjectIndex
    from .summaries import FunctionSummary

__all__ = [
    "Baseline",
    "Diagnostic",
    "FileContext",
    "LintReport",
    "ProgramContext",
    "ProgramRule",
    "Rule",
    "SCIENCE_PACKAGES",
    "default_program_rules",
    "default_rules",
    "iter_python_files",
    "lint_paths",
    "module_name_for",
]

PathLike = Union[str, Path]

#: Packages whose values are science (they feed accuracies, ASR, selection
#: decisions, cache keys).  Rules that police nondeterminism *sources*
#: (wall clock, OS entropy) restrict themselves to these.
SCIENCE_PACKAGES = (
    "repro.fl",
    "repro.defenses",
    "repro.attacks",
    "repro.nn",
    "repro.data",
    "repro.models",
)

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*\s,-]+)\]")

#: Rules whose findings a pragma naming the superseded per-file rule also
#: suppresses: DT101 re-checks DT001's sites interprocedurally, so an
#: existing ``# repro: allow[DT001]`` justification keeps covering the same
#: accumulation in whole-program mode without rewriting every pragma.
_SUPPRESSION_ALIASES: Dict[str, Tuple[str, ...]] = {"DT101": ("DT001",)}

#: Per-file rules replaced by an interprocedural family in whole-program
#: mode (DT101's tracer sees through helper calls, so it strictly refines
#: DT001; running both would double-report every finding).
SUPERSEDED_IN_WHOLE_PROGRAM = frozenset({"DT001"})


def _bracket_delta(text: str) -> int:
    """Net open-bracket count of a source line (comment tail stripped)."""
    code = text.split("#", 1)[0]
    return sum(code.count(ch) for ch in "([{") - sum(code.count(ch) for ch in ")]}")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: location, rule and message.

    ``line`` and ``col`` are 1-based (editor convention); the rendered form
    is the contract the CI job and the fixture tests assert on.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"

    @property
    def fingerprint(self) -> str:
        """Baseline identity: location-free so line drift does not churn it."""
        return f"{self.path}::{self.rule_id}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of ``path``, when one can be derived.

    Files under a ``src`` directory map to their import path from there
    (``src/repro/fl/types.py`` -> ``repro.fl.types``); files under a
    top-level ``tests`` directory map to ``tests.<name>`` (the convention
    the fan-out registry's ``module:label`` names use).  Anything else gets
    ``None`` and module-scoped checks are skipped for it.
    """
    parts = path.parts
    for anchor in ("src", "tests"):
        if anchor in parts:
            index = parts.index(anchor)
            tail = parts[index:] if anchor == "tests" else parts[index + 1 :]
            if not tail or not tail[-1].endswith(".py"):
                return None
            pieces = list(tail[:-1])
            stem = tail[-1][: -len(".py")]
            if stem != "__init__":
                pieces.append(stem)
            return ".".join(pieces) if pieces else None
    return None


class FileContext:
    """Everything the rules need to know about one parsed file.

    The tree is walked exactly once: nodes are indexed by type for
    per-rule dispatch (:meth:`nodes`), every node is linked to its parent
    (:meth:`parent`), and module-level import aliases are resolved so rules
    match canonical dotted names (``np.random.seed`` and
    ``from numpy.random import seed`` both resolve to
    ``numpy.random.seed``, see :meth:`qualname`).
    """

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.module = module_name_for(path)
        self.is_package = path.name == "__init__.py"
        self.tree = ast.parse(source, filename=str(path))
        self._index: Dict[Type[ast.AST], List[ast.AST]] = {}
        self._parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            self._index.setdefault(type(node), []).append(node)
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self.aliases = self._collect_aliases()
        self._allow = self._collect_pragmas()

    # -- structure -----------------------------------------------------
    def nodes(self, *types: Type[ast.AST]) -> List[ast.AST]:
        """All nodes of the given types, in tree (source) order."""
        found: List[ast.AST] = []
        for node_type in types:
            found.extend(self._index.get(node_type, []))
        if len(types) > 1:
            found.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
        return found

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def in_science_package(self) -> bool:
        module = self.module or ""
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in SCIENCE_PACKAGES
        )

    # -- names ---------------------------------------------------------
    def _collect_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in self.nodes(ast.Import):
            for alias in node.names:  # type: ignore[attr-defined]
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        for node in self.nodes(ast.ImportFrom):
            base = self._resolve_import_base(node)
            if base is None:
                continue
            for alias in node.names:  # type: ignore[attr-defined]
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
        # Canonicalize the numpy alias so rules can match "numpy.*".
        for short, full in list(aliases.items()):
            if full == "np":
                aliases[short] = "numpy"
        return aliases

    def _resolve_import_base(self, node: ast.AST) -> Optional[str]:
        module = getattr(node, "module", None)
        level = getattr(node, "level", 0)
        if not level:
            return module if module is None else str(module)
        if self.module is None:
            # Relative import in an unmapped file: best effort.
            return module if module is None else str(module)
        parts = self.module.split(".")
        # In a package ``__init__`` the module name *is* the package, so a
        # level-1 import resolves against the module itself; in a plain
        # module it resolves against the containing package.
        keep = len(parts) - level + (1 if self.is_package else 0)
        base_parts = parts[: max(keep, 0)]
        if module:
            base_parts.append(str(module))
        return ".".join(base_parts) if base_parts else (None if module is None else str(module))

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a ``Name``/``Attribute`` chain, import-resolved.

        ``np.random.seed`` -> ``numpy.random.seed`` when ``np`` was imported
        as numpy; non-name expressions (calls, subscripts) return ``None``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))

    # -- pragmas -------------------------------------------------------
    def _collect_pragmas(self) -> Dict[int, Set[str]]:
        allow: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            allow.setdefault(number, set()).update(ids)
            # A comment-only pragma line covers the comment block it starts
            # and the first code line below it; when that code line opens a
            # decorator list, coverage extends through every decorator
            # (including multi-line decorator calls) onto the decorated
            # ``def`` line itself, which is where def-anchored findings and
            # default-argument expressions live.
            if text.lstrip().startswith("#"):
                follower = number + 1
                while (
                    follower <= len(self.lines)
                    and self.lines[follower - 1].lstrip().startswith("#")
                ):
                    allow.setdefault(follower, set()).update(ids)
                    follower += 1
                depth = 0
                while follower <= len(self.lines):
                    line = self.lines[follower - 1]
                    if depth <= 0 and not line.lstrip().startswith("@"):
                        break
                    allow.setdefault(follower, set()).update(ids)
                    depth += _bracket_delta(line)
                    follower += 1
                allow.setdefault(follower, set()).update(ids)
        return allow

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        ids = self._allow.get(diagnostic.line)
        if not ids:
            return False
        accepted = {diagnostic.rule_id, "*"}
        accepted.update(_SUPPRESSION_ALIASES.get(diagnostic.rule_id, ()))
        return bool(ids & accepted)

    # -- construction helpers ------------------------------------------
    def diagnostic(self, node: ast.AST, rule_id: str, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class of one lint rule.

    Subclasses set :attr:`rule_id` (stable, referenced by pragmas and the
    baseline), :attr:`contract` (the one-line invariant the rule encodes,
    surfaced by ``repro lint --list-rules`` and the README) and implement
    :meth:`check`.
    """

    rule_id: str = ""
    contract: str = ""

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError


class ProgramRule:
    """Base class of one whole-program (interprocedural) lint rule.

    Unlike :class:`Rule`, a program rule sees every linted file at once
    through a :class:`ProgramContext` and may anchor findings in any of
    them; ``# repro: allow[ID]`` pragmas in the owning file still apply
    (the whole-program runner routes each diagnostic back through its
    :class:`FileContext` for suppression).
    """

    rule_id: str = ""
    contract: str = ""

    def check_program(self, program: "ProgramContext") -> Iterable[Diagnostic]:
        raise NotImplementedError


class ProgramContext:
    """Everything the whole-program rules need: all files, graph, summaries.

    Built once per ``lint_paths(..., whole_program=True)`` run from the
    already-parsed :class:`FileContext` objects: the project symbol table
    and call graph come from :mod:`repro.analysis.callgraph`, the
    fixpoint-propagated per-function facts from
    :mod:`repro.analysis.summaries`.
    """

    def __init__(
        self,
        contexts: Sequence[FileContext],
        index: "ProjectIndex",
        graph: "CallGraph",
        summaries: Dict[str, "FunctionSummary"],
    ) -> None:
        self.contexts: List[FileContext] = list(contexts)
        self.index = index
        self.graph = graph
        self.summaries = summaries
        self._by_display: Dict[str, FileContext] = {
            ctx.display_path: ctx for ctx in self.contexts
        }

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProgramContext":
        from .callgraph import CallGraph, ProjectIndex
        from .summaries import summarize_program

        index = ProjectIndex(contexts)
        graph = CallGraph(index)
        summaries = summarize_program(index, graph)
        return cls(contexts, index, graph, summaries)

    def context_for(self, display_path: str) -> Optional[FileContext]:
        return self._by_display.get(display_path)


class Baseline:
    """Grandfathered findings, stored as fingerprint -> count.

    Filtering consumes up to ``count`` findings per fingerprint (earliest
    lines first), so fixing one of N identical grandfathered violations in a
    file keeps the other N-1 suppressed while any *new* copy fails the
    lint.  An empty/missing baseline suppresses nothing.
    """

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text())
        except FileNotFoundError:
            return cls()
        findings = payload.get("findings", {}) if isinstance(payload, dict) else {}
        return cls({str(key): int(value) for key, value in findings.items()})

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        counts: Dict[str, int] = {}
        for diagnostic in diagnostics:
            counts[diagnostic.fingerprint] = counts.get(diagnostic.fingerprint, 0) + 1
        return cls(counts)

    def save(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": 1,
            "findings": {key: self.counts[key] for key in sorted(self.counts)},
        }
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target

    def filter(
        self, diagnostics: Sequence[Diagnostic]
    ) -> Tuple[List[Diagnostic], int]:
        """Split into (new findings, number of baselined findings)."""
        remaining = dict(self.counts)
        fresh: List[Diagnostic] = []
        suppressed = 0
        for diagnostic in diagnostics:
            if remaining.get(diagnostic.fingerprint, 0) > 0:
                remaining[diagnostic.fingerprint] -= 1
                suppressed += 1
            else:
                fresh.append(diagnostic)
        return fresh, suppressed


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: List[Diagnostic]
    files_checked: int
    suppressed_pragma: int = 0
    suppressed_baseline: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def render_text(self) -> str:
        lines = [diagnostic.render() for diagnostic in self.diagnostics]
        summary = (
            f"{len(self.diagnostics)} finding(s) in {self.files_checked} file(s)"
            f" ({self.suppressed_pragma} pragma-suppressed,"
            f" {self.suppressed_baseline} baselined)"
        )
        return "\n".join(lines + [summary])

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "files_checked": self.files_checked,
            "suppressed_pragma": self.suppressed_pragma,
            "suppressed_baseline": self.suppressed_baseline,
            "ok": self.ok,
        }


def default_rules() -> List[Rule]:
    """Instantiate every shipped rule, in stable rule-id order."""
    from . import (
        rules_dtype,
        rules_fanout,
        rules_ordering,
        rules_rng,
        rules_shm,
        rules_trace,
    )

    rules: List[Rule] = []
    for module in (
        rules_rng,
        rules_dtype,
        rules_fanout,
        rules_shm,
        rules_ordering,
        rules_trace,
    ):
        rules.extend(rule_cls() for rule_cls in module.RULES)
    rules.sort(key=lambda rule: rule.rule_id)
    return rules


def default_program_rules() -> List[ProgramRule]:
    """Instantiate every shipped whole-program rule, in stable id order."""
    from . import rules_wholeprogram

    rules: List[ProgramRule] = [
        rule_cls() for rule_cls in rules_wholeprogram.PROGRAM_RULES
    ]
    rules.sort(key=lambda rule: rule.rule_id)
    return rules


def iter_python_files(paths: Sequence[PathLike]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" not in child.parts:
                    yield child
        elif path.suffix == ".py":
            yield path


def load_context(
    path: Path, display_path: Optional[str] = None
) -> Tuple[Optional[FileContext], Optional[Diagnostic]]:
    """Parse one file into a :class:`FileContext`, or an ENG00x diagnostic."""
    display = display_path if display_path is not None else path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, Diagnostic(display, 1, 1, "ENG001", f"unreadable file: {error}")
    try:
        return FileContext(path, display, source), None
    except SyntaxError as error:
        return None, Diagnostic(
            display,
            error.lineno or 1,
            error.offset or 1,
            "ENG002",
            f"syntax error: {error.msg}",
        )


def _check_context(
    ctx: FileContext, rules: Sequence[Rule]
) -> Tuple[List[Diagnostic], int]:
    findings: List[Diagnostic] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda d: (d.line, d.col, d.rule_id))
    kept = [d for d in findings if not ctx.is_suppressed(d)]
    return kept, len(findings) - len(kept)


def lint_file(
    path: Path, rules: Sequence[Rule], display_path: Optional[str] = None
) -> Tuple[List[Diagnostic], int]:
    """Lint one file; returns (unsuppressed diagnostics, pragma count)."""
    ctx, error = load_context(path, display_path)
    if ctx is None:
        return [error] if error is not None else [], 0
    return _check_context(ctx, rules)


def lint_paths(
    paths: Sequence[PathLike],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    whole_program: bool = False,
    program_rules: Optional[Sequence[ProgramRule]] = None,
    program_out: Optional[List[ProgramContext]] = None,
) -> LintReport:
    """Lint every python file under ``paths`` and aggregate the findings.

    With ``whole_program=True`` the parsed contexts are additionally fed
    through the project call graph + summaries and the interprocedural
    rule families (``default_program_rules``); per-file rules superseded by
    an interprocedural refinement (``SUPERSEDED_IN_WHOLE_PROGRAM``) are
    dropped so the same site is not reported twice.  ``program_out``, when
    given, receives the built :class:`ProgramContext` (the CLI uses this
    for ``--callgraph-json``).
    """
    active = list(rules) if rules is not None else default_rules()
    if whole_program:
        active = [r for r in active if r.rule_id not in SUPERSEDED_IN_WHOLE_PROGRAM]
    diagnostics: List[Diagnostic] = []
    contexts: List[FileContext] = []
    suppressed_pragma = 0
    files = 0
    for path in iter_python_files(paths):
        files += 1
        ctx, error = load_context(path)
        if ctx is None:
            if error is not None:
                diagnostics.append(error)
            continue
        found, pragma_count = _check_context(ctx, active)
        diagnostics.extend(found)
        suppressed_pragma += pragma_count
        contexts.append(ctx)
    if whole_program:
        program = ProgramContext.build(contexts)
        if program_out is not None:
            program_out.append(program)
        prules = (
            list(program_rules)
            if program_rules is not None
            else default_program_rules()
        )
        for prule in prules:
            for diagnostic in prule.check_program(program):
                owner = program.context_for(diagnostic.path)
                if owner is not None and owner.is_suppressed(diagnostic):
                    suppressed_pragma += 1
                else:
                    diagnostics.append(diagnostic)
        diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule_id))
    suppressed_baseline = 0
    if baseline is not None:
        diagnostics, suppressed_baseline = baseline.filter(diagnostics)
    return LintReport(
        diagnostics=diagnostics,
        files_checked=files,
        suppressed_pragma=suppressed_pragma,
        suppressed_baseline=suppressed_baseline,
    )
