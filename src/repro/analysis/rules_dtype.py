"""Dtype-contract rules: float64 defense geometry, float32 payloads.

PR 4's standing contract: *defense geometry accumulates in float64;
payloads/aggregation stay float32*.  The float32 Gram-trick cancellation it
fixed (~650x relative error on near-duplicate converged updates) is exactly
the kind of regression a single careless reduction reintroduces, so:

* ``DT001`` polices geometry code in ``repro.defenses``: products
  (``einsum``/``dot``/``matmul``/``@``) — and in the distance-plane modules
  also ``sum``/``mean`` reductions — must either pass ``dtype=np.float64``
  or operate on operands the rule can trace to a float64 construction
  (``np.asarray(x, dtype=np.float64)``, ``x.astype(np.float64)``,
  float64-allocated outputs, and arithmetic/slices thereof).
* ``DT002`` polices the other direction: the ``repro.nn`` payload hot path
  is float32 end to end, so any literal float64 promotion there must carry
  a pragma naming why it is an explicit opt-in seam.

The float64 tracing is an intentionally simple, function-local
over-approximation; code that is correct for reasons the tracer cannot see
(e.g. a payload contract established by the caller) states that reason in a
``# repro: allow[DT001]`` pragma, which is the point — the invariant
becomes visible at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .engine import Diagnostic, FileContext, Rule

__all__ = ["DtypeGeometryRule", "DtypeNnPromotionRule", "RULES"]

#: Reduction products checked in every ``repro.defenses`` module.
_PRODUCT_FNS = frozenset(
    {"numpy.einsum", "numpy.dot", "numpy.matmul", "numpy.inner", "numpy.tensordot"}
)

#: Additional dtype-less reductions checked in distance-plane modules.
_REDUCTION_FNS = frozenset({"numpy.sum", "numpy.nansum", "numpy.mean"})
_REDUCTION_METHODS = frozenset({"sum", "mean"})

#: numpy constructors whose ``dtype=`` kwarg fixes the result dtype.
_CREATOR_FNS = frozenset(
    {
        "numpy.array",
        "numpy.asarray",
        "numpy.ascontiguousarray",
        "numpy.asfortranarray",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.full",
        "numpy.zeros_like",
        "numpy.ones_like",
        "numpy.empty_like",
        "numpy.full_like",
        "numpy.arange",
        "numpy.linspace",
    }
)

#: Elementwise/structural numpy functions that preserve a float64 input.
_PRESERVING_FNS = frozenset(
    {
        "numpy.sqrt",
        "numpy.abs",
        "numpy.square",
        "numpy.exp",
        "numpy.log",
        "numpy.maximum",
        "numpy.minimum",
        "numpy.clip",
        "numpy.concatenate",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.transpose",
        "numpy.reshape",
        "numpy.ravel",
        "numpy.ascontiguousarray",
        "numpy.sort",
        "numpy.take_along_axis",
        "numpy.where",
    }
)


def _is_float64_dtype_expr(ctx: FileContext, node: ast.AST) -> bool:
    """Whether an expression used as a ``dtype`` denotes float64."""
    qualname = ctx.qualname(node)
    if qualname in {"numpy.float64", "numpy.double", "float"}:
        return True
    if isinstance(node, ast.Constant) and node.value in {"float64", "f8", "<f8", "d"}:
        return True
    return False


def _float64_dtype_kwarg(ctx: FileContext, call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "dtype" and _is_float64_dtype_expr(ctx, keyword.value):
            return True
    return False


class _Float64Tracer:
    """Function-local set of names traceable to a float64 construction.

    Statements are processed in source order (nested bodies inline, no
    branch merging): an assignment from a float64-producing expression adds
    the target name, any other assignment to that name removes it.  This is
    an over-approximation in both directions, which is fine — the rule's
    job is to make untraceable accumulations *visible*, not to prove types.
    """

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.names: Set[str] = set()

    def process(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_is_f64 = self.is_float64(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if value_is_f64:
                        self.names.add(target.id)
                    else:
                        self.names.discard(target.id)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                if self.is_float64(stmt.value):
                    self.names.add(stmt.target.id)
                else:
                    self.names.discard(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are traced separately
        for child_body in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, child_body, None)
            if isinstance(nested, list) and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.process(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            self.process(handler.body)

    def is_float64(self, node: ast.AST) -> bool:
        ctx = self.ctx
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            return self.is_float64(node.value)
        if isinstance(node, ast.Attribute) and node.attr == "T":
            return self.is_float64(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.is_float64(node.operand)
        if isinstance(node, ast.BinOp):
            left = self.is_float64(node.left)
            right = self.is_float64(node.right)
            if left and right:
                return True
            other = node.right if left else node.left
            return (left or right) and isinstance(other, ast.Constant)
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_float64_dtype_expr(ctx, node.args[0])
            ):
                return True
            qualname = ctx.qualname(node.func)
            if qualname in _CREATOR_FNS:
                return _float64_dtype_kwarg(ctx, node)
            if qualname in _PRESERVING_FNS:
                return any(self.is_float64(arg) for arg in node.args)
            if qualname in _PRODUCT_FNS or qualname in _REDUCTION_FNS:
                if _float64_dtype_kwarg(ctx, node):
                    return True
                operands = [a for a in node.args if not isinstance(a, ast.Constant)]
                return bool(operands) and all(self.is_float64(a) for a in operands)
        return False


def _function_scopes(ctx: FileContext) -> Iterable[ast.AST]:
    yield ctx.tree
    yield from ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef)


def _own_statements(ctx: FileContext, scope: ast.AST, node: ast.AST) -> bool:
    """Whether ``node``'s nearest enclosing function scope is ``scope``."""
    enclosing = ctx.enclosing_function(node)
    if isinstance(scope, ast.Module):
        return enclosing is None
    return enclosing is scope


class DtypeGeometryRule(Rule):
    rule_id = "DT001"
    contract = (
        "Defense geometry accumulates in float64 (PR 4): in repro.defenses, "
        "einsum/dot/matmul/@ products — plus sum/mean in the distance-plane "
        "modules — need dtype=np.float64 or operands traceable to float64."
    )

    def _applies(self, ctx: FileContext) -> bool:
        module = ctx.module or ""
        return module.startswith("repro.defenses")

    def _check_sums(self, ctx: FileContext) -> bool:
        module = ctx.module or ""
        return module.rsplit(".", 1)[-1] == "distances"

    def _make_tracer(self, ctx: FileContext) -> _Float64Tracer:
        """Tracer factory — DT101 swaps in an interprocedural tracer."""
        return _Float64Tracer(ctx)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not self._applies(ctx):
            return []
        findings: List[Diagnostic] = []
        check_sums = self._check_sums(ctx)
        for scope in _function_scopes(ctx):
            tracer = self._make_tracer(ctx)
            body = scope.body if hasattr(scope, "body") else []
            tracer.process([s for s in body if isinstance(s, ast.stmt)])
            for node in ctx.nodes(ast.Call):
                if not _own_statements(ctx, scope, node):
                    continue
                finding = self._check_call(ctx, tracer, node, check_sums)
                if finding is not None:
                    findings.append(finding)
            for node in ctx.nodes(ast.BinOp):
                if not isinstance(node.op, ast.MatMult):
                    continue
                if not _own_statements(ctx, scope, node):
                    continue
                if not (tracer.is_float64(node.left) and tracer.is_float64(node.right)):
                    findings.append(
                        ctx.diagnostic(
                            node,
                            self.rule_id,
                            "'@' product with operands not traceable to float64 "
                            "— defense geometry must accumulate in float64 "
                            "(cast operands or justify with a pragma)",
                        )
                    )
        return findings

    def _check_call(
        self,
        ctx: FileContext,
        tracer: _Float64Tracer,
        node: ast.Call,
        check_sums: bool,
    ) -> Optional[Diagnostic]:
        qualname = ctx.qualname(node.func)
        label: Optional[str] = None
        operands: List[ast.expr] = []
        if qualname in _PRODUCT_FNS or (check_sums and qualname in _REDUCTION_FNS):
            label = qualname
            operands = [a for a in node.args if not isinstance(a, ast.Constant)]
        elif (
            check_sums
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REDUCTION_METHODS
            and ctx.qualname(node.func) is None  # a real method, not np.sum
        ):
            label = f".{node.func.attr}()"
            operands = [node.func.value]
        elif (
            check_sums
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REDUCTION_METHODS
            and (ctx.qualname(node.func) or "").split(".")[0] not in ("numpy",)
        ):
            label = f".{node.func.attr}()"
            operands = [node.func.value]
        if label is None:
            return None
        if _float64_dtype_kwarg(ctx, node):
            return None
        if operands and all(tracer.is_float64(op) for op in operands):
            return None
        return ctx.diagnostic(
            node,
            self.rule_id,
            f"dtype-less '{label}' reduction with operands not traceable to "
            "float64 — defense geometry must accumulate in float64 "
            "(dtype=np.float64, cast the operands, or justify with a pragma)",
        )


class DtypeNnPromotionRule(Rule):
    rule_id = "DT002"
    contract = (
        "The nn payload hot path is float32 end to end (PR 2): any float64 "
        "promotion in repro.nn must be an explicit, pragma-justified opt-in "
        "seam (like the dtype= parameters in nn/serialization.py)."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        module = ctx.module or ""
        if not module.startswith("repro.nn"):
            return []
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Attribute):
            if ctx.qualname(node) in {"numpy.float64", "numpy.double"}:
                findings.append(self._finding(ctx, node))
        for node in ctx.nodes(ast.Constant):
            if node.value in {"float64", "f8", "<f8"} and self._is_dtype_use(ctx, node):
                findings.append(self._finding(ctx, node))
        return findings

    @staticmethod
    def _is_dtype_use(ctx: FileContext, node: ast.AST) -> bool:
        parent = ctx.parent(node)
        if isinstance(parent, ast.keyword) and parent.arg == "dtype":
            return True
        if isinstance(parent, ast.Call):
            func = parent.func
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                return True
            if ctx.qualname(func) == "numpy.dtype":
                return True
        return False

    def _finding(self, ctx: FileContext, node: ast.AST) -> Diagnostic:
        return ctx.diagnostic(
            node,
            self.rule_id,
            "float64 promotion in the float32 nn payload hot path — the "
            "payload contract (PR 2/PR 4) keeps model parameters float32; "
            "make the promotion an explicit opt-in seam and justify it with "
            "a pragma",
        )


RULES = (DtypeGeometryRule, DtypeNnPromotionRule)
