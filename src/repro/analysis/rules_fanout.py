"""Fan-out purity rules: registered work functions must survive pickling.

PR 3's fan-out registry (:func:`repro.fl.executor.register_fanout_fn`)
ships work to process-pool workers as ``FanoutCall(name, payload)``
envelopes; the worker resolves ``name`` by importing ``pkg.mod`` from the
``"pkg.mod:label"`` string and looking the function up in the registry the
import rebuilt.  That protocol only works when

* the registered object is a **module-level named function** (``FO001``) —
  lambdas, closures, bound methods and ``partial`` objects either fail to
  pickle or silently rebind state per worker;
* registration happens at **module import time** (``FO002``) — a function
  registered inside another function is invisible to a worker that merely
  imports the module;
* the name string's module part **matches the defining module**
  (``FO003``) — otherwise the worker imports the wrong module and the
  lookup misses.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .engine import Diagnostic, FileContext, Rule

__all__ = ["FanoutTargetRule", "FanoutModuleScopeRule", "FanoutNameRule", "RULES"]


def _is_register_call(ctx: FileContext, node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "register_fanout_fn":
        return True
    if isinstance(func, ast.Attribute) and func.attr == "register_fanout_fn":
        return True
    qualname = ctx.qualname(func)
    return bool(qualname) and qualname.endswith(".register_fanout_fn")


def _register_args(node: ast.Call) -> tuple:
    """(name expression, fn expression) of a register_fanout_fn call."""
    name_expr = node.args[0] if node.args else None
    fn_expr = node.args[1] if len(node.args) > 1 else None
    for keyword in node.keywords:
        if keyword.arg == "name":
            name_expr = keyword.value
        elif keyword.arg == "fn":
            fn_expr = keyword.value
    return name_expr, fn_expr


def _module_level_functions(ctx: FileContext) -> Set[str]:
    names: Set[str] = set()
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
    return names


def _resolve_name_string(ctx: FileContext, expr: Optional[ast.AST]) -> Optional[str]:
    """Static value of the name argument: literal, or module-level constant."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == expr.id:
                        if isinstance(stmt.value, ast.Constant) and isinstance(
                            stmt.value.value, str
                        ):
                            return stmt.value.value
    return None


class FanoutTargetRule(Rule):
    rule_id = "FO001"
    contract = (
        "register_fanout_fn targets must be module-level named functions: "
        "lambdas, closures, bound methods and partials break (or silently "
        "rebind state across) process-pool pickling (PR 3)."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        module_fns = _module_level_functions(ctx)
        local_defs = {
            node.name: node
            for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef)
        }
        for node in ctx.nodes(ast.Call):
            if not _is_register_call(ctx, node):
                continue
            _, fn_expr = _register_args(node)
            if fn_expr is None:
                continue
            problem = self._target_problem(ctx, fn_expr, module_fns, local_defs)
            if problem is not None:
                findings.append(
                    ctx.diagnostic(
                        fn_expr,
                        self.rule_id,
                        f"fan-out target is {problem}; register a module-level "
                        "named function so worker processes can re-import it",
                    )
                )
        return findings

    @staticmethod
    def _target_problem(ctx, fn_expr, module_fns, local_defs) -> Optional[str]:
        if isinstance(fn_expr, ast.Lambda):
            return "a lambda (unpicklable)"
        if isinstance(fn_expr, ast.Attribute):
            return f"an attribute lookup '{ast.unparse(fn_expr)}' (likely a bound method)"
        if isinstance(fn_expr, ast.Call):
            return f"a call result '{ast.unparse(fn_expr)}' (e.g. a partial/closure)"
        if isinstance(fn_expr, ast.Name):
            if fn_expr.id in module_fns:
                return None
            nested = local_defs.get(fn_expr.id)
            if nested is not None and ctx.enclosing_function(nested) is not None:
                return f"the nested function '{fn_expr.id}' (a closure)"
            return None  # imported name: assume the defining module registered it
        return f"a non-function expression '{ast.unparse(fn_expr)}'"


class FanoutModuleScopeRule(Rule):
    rule_id = "FO002"
    contract = (
        "register_fanout_fn must run at module import time: a registration "
        "buried inside a function is invisible to a worker process that "
        "resolves the name by importing the module (PR 3)."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Call):
            if not _is_register_call(ctx, node):
                continue
            if ctx.enclosing_function(node) is None:
                continue
            findings.append(
                ctx.diagnostic(
                    node,
                    self.rule_id,
                    "register_fanout_fn called inside a function; move the "
                    "registration to module scope so importing the module "
                    "(as pool workers do) performs it",
                )
            )
        return findings


class FanoutNameRule(Rule):
    rule_id = "FO003"
    contract = (
        'Fan-out names are "pkg.mod:label" strings whose module part names '
        "the defining module — that import path is how a fresh worker "
        "process resolves the function (PR 3)."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Call):
            if not _is_register_call(ctx, node):
                continue
            name_expr, _ = _register_args(node)
            if name_expr is None:
                continue
            value = _resolve_name_string(ctx, name_expr)
            if value is None:
                findings.append(
                    ctx.diagnostic(
                        name_expr,
                        self.rule_id,
                        "fan-out name is not a static string (literal or "
                        "module-level constant); workers resolve names by "
                        "import, so the name must be statically auditable",
                    )
                )
                continue
            if ":" not in value:
                findings.append(
                    ctx.diagnostic(
                        name_expr,
                        self.rule_id,
                        f'fan-out name "{value}" lacks the "pkg.mod:label" '
                        "colon form; without a module part a fresh worker "
                        "process cannot import-resolve it",
                    )
                )
                continue
            module_part = value.split(":", 1)[0]
            if ctx.module is not None and module_part != ctx.module:
                findings.append(
                    ctx.diagnostic(
                        name_expr,
                        self.rule_id,
                        f'fan-out name "{value}" names module '
                        f"'{module_part}' but is registered in "
                        f"'{ctx.module}'; workers importing the name's "
                        "module would not execute this registration",
                    )
                )
        return findings


RULES = (FanoutTargetRule, FanoutModuleScopeRule, FanoutNameRule)
