"""Project-wide symbol table and call graph for whole-program lint rules.

Built from the per-file :class:`~repro.analysis.engine.FileContext`
indexes the per-file rules already pay for — no second AST walk of the
tree is needed:

* :class:`ProjectIndex` registers every module-level function and every
  method of a module-level class under its dotted qualname
  (``repro.fl.executor.run_client_task``,
  ``repro.fl.executor.SharedArrayStore.close``) and records re-export
  aliases (``from .engine import lint_paths`` in a package ``__init__``)
  so imported names chase through to their defining module;
* :class:`CallGraph` resolves every call expression in every linted file
  against that index — import-resolved dotted names, bare local names,
  ``self.method()`` / ``cls.method()`` within a class — into caller ->
  callee edges plus a per-call-node callee map the interprocedural rules
  and summaries consume.

Resolution is deliberately partial: method calls on arbitrary objects
(``task.resolve_arrays()``) and dynamic dispatch stay unresolved, and the
rules built on top treat an unresolved callee as "no information", never
as an error.  ``repro lint --callgraph-json`` serialises the graph via
:meth:`CallGraph.to_dict`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .engine import FileContext

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "ProjectIndex"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True, eq=False)
class FunctionInfo:
    """One indexed function: where it lives and what it is called."""

    qualname: str
    module: str
    ctx: FileContext
    node: FunctionNode
    params: Tuple[str, ...]
    is_method: bool


class ProjectIndex:
    """Dotted-qualname symbol table over every parsed file.

    ``functions`` maps qualnames to :class:`FunctionInfo`; ``exports``
    maps re-exported names (``pkg.name`` bound by ``from .mod import
    name``) to their targets, chased transitively by :meth:`resolve`.
    """

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: List[FileContext] = list(contexts)
        self.functions: Dict[str, FunctionInfo] = {}
        self.exports: Dict[str, str] = {}
        for ctx in self.contexts:
            self._register(ctx)

    def _register(self, ctx: FileContext) -> None:
        module = ctx.module
        if module is None:
            return
        for alias, target in ctx.aliases.items():
            if target != alias and "." in target:
                self.exports.setdefault(f"{module}.{alias}", target)
        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # pragma: no cover - nodes() returns what we asked
            if ctx.enclosing_function(node) is not None:
                continue  # nested function: not addressable by name
            cls = ctx.enclosing_class(node)
            if cls is not None and ctx.enclosing_class(cls) is not None:
                continue  # method of a nested class: skip
            name = f"{cls.name}.{node.name}" if cls is not None else node.name
            args = node.args
            params = tuple(
                arg.arg for arg in (*args.posonlyargs, *args.args)
            )
            self.functions.setdefault(
                f"{module}.{name}",
                FunctionInfo(
                    qualname=f"{module}.{name}",
                    module=module,
                    ctx=ctx,
                    node=node,
                    params=params,
                    is_method=cls is not None,
                ),
            )

    def resolve(self, qualname: str) -> Optional[FunctionInfo]:
        """The function a dotted name denotes, chasing re-export aliases."""
        seen: Set[str] = set()
        current = qualname
        while current not in self.functions:
            if current in seen:
                return None
            seen.add(current)
            target = self.exports.get(current)
            if target is None:
                return None
            current = target
        return self.functions[current]


@dataclass(frozen=True, eq=False)
class CallSite:
    """One resolved call: caller qualname (``None`` at module level), callee."""

    caller: Optional[str]
    callee: str
    call: ast.Call
    ctx: FileContext


class CallGraph:
    """Caller -> callee edges plus a per-call-node resolution map."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.sites: List[CallSite] = []
        self._callees: Dict[ast.Call, FunctionInfo] = {}
        edge_sets: Dict[str, Set[str]] = {}
        for ctx in index.contexts:
            for node in ctx.nodes(ast.Call):
                if not isinstance(node, ast.Call):
                    continue  # pragma: no cover - nodes() returns Call only
                info = self._resolve_call(ctx, node)
                if info is None:
                    continue
                caller = self._enclosing_qualname(ctx, node)
                self._callees[node] = info
                self.sites.append(CallSite(caller, info.qualname, node, ctx))
                if caller is not None:
                    edge_sets.setdefault(caller, set()).add(info.qualname)
        self.edges: Dict[str, Tuple[str, ...]] = {
            caller: tuple(sorted(callees))
            for caller, callees in sorted(edge_sets.items())
        }

    # -- resolution ----------------------------------------------------
    def callee(self, call: ast.Call) -> Optional[FunctionInfo]:
        """The indexed function this call resolves to, if any."""
        return self._callees.get(call)

    def _resolve_call(self, ctx: FileContext, call: ast.Call) -> Optional[FunctionInfo]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and ctx.module is not None
        ):
            cls = ctx.enclosing_class(call)
            if cls is not None:
                info = self.index.resolve(f"{ctx.module}.{cls.name}.{func.attr}")
                if info is not None:
                    return info
        qualname = ctx.qualname(func)
        if qualname is None:
            return None
        info = self.index.resolve(qualname)
        if info is None and ctx.module is not None:
            # Bare local names and ClassName.method references resolve
            # against the calling module.
            info = self.index.resolve(f"{ctx.module}.{qualname}")
        return info

    def _enclosing_qualname(self, ctx: FileContext, node: ast.AST) -> Optional[str]:
        """Qualname of the nearest *indexed* function enclosing ``node``."""
        current: Optional[ast.AST] = ctx.enclosing_function(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = self._qualname_of_def(ctx, current)
                if qualname is not None and qualname in self.index.functions:
                    return qualname
            current = ctx.enclosing_function(current)
        return None

    def _qualname_of_def(self, ctx: FileContext, node: FunctionNode) -> Optional[str]:
        if ctx.module is None:
            return None
        cls = ctx.enclosing_class(node)
        if cls is not None:
            return f"{ctx.module}.{cls.name}.{node.name}"
        return f"{ctx.module}.{node.name}"

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: every indexed function and its resolved edges."""
        functions: Dict[str, Dict[str, object]] = {}
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            functions[qualname] = {
                "module": info.module,
                "file": info.ctx.display_path,
                "line": info.node.lineno,
                "params": list(info.params),
                "is_method": info.is_method,
            }
        return {
            "version": 1,
            "functions": functions,
            "edges": {caller: list(callees) for caller, callees in self.edges.items()},
        }
