"""Static analysis of the reproduction's standing contracts (``repro lint``).

The engine (:mod:`repro.analysis.engine`) walks each file's AST once and
dispatches :class:`Rule` families over it:

==========  ==============================================================
Rule ID     Contract
==========  ==============================================================
RNG001-004  seeded-``np.random.Generator``-only randomness (PRs 1, 7)
DT001-002   float64 defense geometry over float32 payloads (PRs 2, 4)
FO001-003   module-level picklable fan-out registrations (PR 3)
SHM001      shared-memory creations own a release path (PRs 3, 5)
ORD001-002  no filesystem- or hash-ordered iteration (PRs 1, 5, 7)
ENG001-002  files must be readable, parseable python (engine-emitted)
==========  ==============================================================

Suppress a justified finding inline with
``# repro: allow[RULE-ID] <why>`` (same line or the comment line above);
grandfather a legacy tree with ``repro lint --write-baseline FILE``.
"""

from .engine import (
    Baseline,
    Diagnostic,
    FileContext,
    LintReport,
    Rule,
    SCIENCE_PACKAGES,
    default_rules,
    iter_python_files,
    lint_paths,
    module_name_for,
)

__all__ = [
    "Baseline",
    "Diagnostic",
    "FileContext",
    "LintReport",
    "Rule",
    "SCIENCE_PACKAGES",
    "default_rules",
    "iter_python_files",
    "lint_paths",
    "module_name_for",
]
