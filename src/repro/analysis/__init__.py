"""Static analysis of the reproduction's standing contracts (``repro lint``).

The engine (:mod:`repro.analysis.engine`) walks each file's AST once and
dispatches :class:`Rule` families over it:

==========  ==============================================================
Rule ID     Contract
==========  ==============================================================
RNG001-004  seeded-``np.random.Generator``-only randomness (PRs 1, 7)
DT001-002   float64 defense geometry over float32 payloads (PRs 2, 4)
FO001-003   module-level picklable fan-out registrations (PR 3)
SHM001      shared-memory creations own a release path (PRs 3, 5)
ORD001-002  no filesystem- or hash-ordered iteration (PRs 1, 5, 7)
TR001-002   backend-clean, import-time-registered trace kernels (PR 9)
ENG001-002  files must be readable, parseable python (engine-emitted)
==========  ==============================================================

``repro lint --whole-program`` additionally builds a project symbol
table, call graph (:mod:`repro.analysis.callgraph`) and fixpoint
per-function summaries (:mod:`repro.analysis.summaries`) and runs the
interprocedural :class:`ProgramRule` families over them:

==========  ==============================================================
Rule ID     Contract
==========  ==============================================================
RNG101      no unseeded ``default_rng()`` stream reaches a science
            package through any call chain
DT101       float64 defense geometry traced *through* helper calls
            (supersedes DT001 in whole-program runs)
MUT001-003  no in-place writes to shared-memory views: directly
            (MUT001), via a mutating callee (MUT002), or inside a
            registered fan-out/trace kernel (MUT003)
==========  ==============================================================

Suppress a justified finding inline with
``# repro: allow[RULE-ID] <why>`` (same line, or a comment line above —
reaching through decorator lists onto the decorated ``def``);
grandfather a legacy tree with ``repro lint --write-baseline FILE``.
The static mutation rules are cross-validated at runtime by the
sealed-array sanitizer (:mod:`repro.utils.sanitize`, ``REPRO_SANITIZE=1``).
"""

from .engine import (
    Baseline,
    Diagnostic,
    FileContext,
    LintReport,
    ProgramContext,
    ProgramRule,
    Rule,
    SCIENCE_PACKAGES,
    default_program_rules,
    default_rules,
    iter_python_files,
    lint_paths,
    module_name_for,
)
from .callgraph import CallGraph, FunctionInfo, ProjectIndex
from .summaries import FunctionSummary, summarize_program

__all__ = [
    "Baseline",
    "CallGraph",
    "Diagnostic",
    "FileContext",
    "FunctionInfo",
    "FunctionSummary",
    "LintReport",
    "ProgramContext",
    "ProgramRule",
    "ProjectIndex",
    "Rule",
    "SCIENCE_PACKAGES",
    "default_program_rules",
    "default_rules",
    "iter_python_files",
    "lint_paths",
    "module_name_for",
    "summarize_program",
]
