"""Per-function summaries and fixpoint interprocedural propagation.

Each indexed function (see :mod:`repro.analysis.callgraph`) gets one
:class:`FunctionSummary` capturing the facts the whole-program rules
need:

* ``rng_source`` / ``rng_tainted`` — does the function create (or reach,
  through any resolved call chain) an *unseeded*
  ``np.random.default_rng()`` stream?  The two sanctioned idioms are
  exempt: the state-restore pair (``rng = np.random.default_rng()``
  immediately re-seeded via ``rng.bit_generator.state = ...``) and the
  caller-decides fallback (``rng = rng or np.random.default_rng()``).
* ``returns_dtype`` — ``"float64"`` when every return value traces to a
  float64 construction (the DT001 tracer, extended through resolved
  calls), ``"float32"`` for the symmetric float32 case, else ``None``.
* ``mutated_params`` / ``mutates_params`` — parameter indices written in
  place (subscript/attribute stores, in-place methods, ``np.copyto``-
  style first-argument mutators), directly or transitively by passing a
  parameter to a callee that mutates it.
* ``returns_view`` — does the function return an array view resolved
  from the shared-memory data plane (``resolve_shared_array`` /
  ``attach_array_store`` / broker ``resolve*`` calls, or a callee that
  does)?

``summarize_program`` runs the local extraction once, then iterates a
worklist-free whole-program sweep until no summary changes (the lattice
is finite and monotone, so the loop terminates; a generous iteration
guard bounds pathological inputs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .callgraph import CallGraph, FunctionInfo, ProjectIndex
from .engine import FileContext
from .rules_dtype import (
    _CREATOR_FNS,
    _PRESERVING_FNS,
    _Float64Tracer,
)

__all__ = [
    "FunctionSummary",
    "InterprocFloat64Tracer",
    "MutationSite",
    "VIEW_PRODUCER_FUNCTIONS",
    "VIEW_PRODUCER_METHODS",
    "function_scopes",
    "mutated_argument_exprs",
    "own_statement",
    "scope_mutations",
    "shared_view_names",
    "summarize_program",
    "unseeded_rng_calls",
]

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]

#: Free functions whose results are read-only shared-memory views.
VIEW_PRODUCER_FUNCTIONS = frozenset(
    {"resolve_shared_array", "attach_array_store", "resolve_task"}
)

#: Method names whose results are read-only shared-memory views
#: (``ShardRef.resolve``, ``ClientTask.resolve_arrays`` /
#: ``resolve_global_params``).
VIEW_PRODUCER_METHODS = frozenset(
    {"resolve", "resolve_arrays", "resolve_global_params"}
)

#: ndarray methods that write through the receiver.
_MUTATING_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "itemset", "resize", "byteswap"}
)

#: numpy functions that write through their first argument.
_MUTATOR_FIRST_ARG = frozenset(
    {"numpy.copyto", "numpy.put", "numpy.place", "numpy.putmask", "numpy.fill_diagonal"}
)

#: Kind tag of ``name += ...`` on a bare name: in-place for arrays, a
#: rebind for scalars.  Parameter-mutation summaries include it (a kernel
#: doing ``block -= block.mean()`` writes through the shm view), relying
#: on the rules' view/kernel scoping to keep scalar accumulators quiet.
BARE_NAME_AUGASSIGN = "augmented assignment"


# ----------------------------------------------------------------------
# Shared structural helpers
# ----------------------------------------------------------------------
def function_scopes(ctx: FileContext) -> Iterator[ast.AST]:
    """The module scope plus every function scope of a file."""
    yield ctx.tree
    yield from ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef)


def own_statement(ctx: FileContext, scope: ast.AST, node: ast.AST) -> bool:
    """Whether ``node``'s nearest enclosing function scope is ``scope``."""
    enclosing = ctx.enclosing_function(node)
    if isinstance(scope, ast.Module):
        return enclosing is None
    return enclosing is scope


def _attr_chain_root(node: ast.AST) -> Tuple[Optional[str], Tuple[str, ...]]:
    """Root ``Name`` id of a Subscript/Attribute chain plus the attrs seen."""
    attrs: List[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            break
    if isinstance(current, ast.Name):
        return current.id, tuple(attrs)
    return None, tuple(attrs)


# ----------------------------------------------------------------------
# In-place mutation detection
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class MutationSite:
    """One in-place write: the root name written through and its anchor."""

    name: str
    node: ast.AST
    kind: str


def _target_mutations(
    target: ast.AST, anchor: ast.AST, kind: str
) -> Iterator[MutationSite]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_mutations(elt, anchor, kind)
        return
    if isinstance(target, ast.Subscript):
        name, attrs = _attr_chain_root(target)
        if name is not None and "flags" not in attrs:
            yield MutationSite(name, anchor, f"{kind} subscript write".strip())
    elif isinstance(target, ast.Attribute):
        name, attrs = _attr_chain_root(target)
        # ``.flags.writeable = False`` is sealing, not a data write, and
        # ``self.x = ...`` is object state, not an array mutation.
        if name is not None and "flags" not in attrs and name not in ("self", "cls"):
            yield MutationSite(name, anchor, f"{kind} attribute write".strip())


def _call_mutations(ctx: FileContext, call: ast.Call) -> Iterator[MutationSite]:
    func = call.func
    if isinstance(func, ast.Attribute):
        qualname = ctx.qualname(func) or ""
        if func.attr in _MUTATING_METHODS and not qualname.startswith("numpy."):
            name, attrs = _attr_chain_root(func.value)
            if name is not None and "flags" not in attrs:
                yield MutationSite(name, call, f".{func.attr}() in-place method call")
        elif func.attr == "setflags" and any(
            kw.arg == "write"
            and isinstance(kw.value, ast.Constant)
            and bool(kw.value.value)
            for kw in call.keywords
        ):
            name, _ = _attr_chain_root(func.value)
            if name is not None:
                yield MutationSite(name, call, "setflags(write=True) unseal")
    qualname = ctx.qualname(func)
    if qualname in _MUTATOR_FIRST_ARG and call.args:
        name, attrs = _attr_chain_root(call.args[0])
        if name is not None and "flags" not in attrs:
            yield MutationSite(name, call, f"'{qualname}' first-argument write")
    if qualname is not None and qualname.startswith("numpy."):
        for kw in call.keywords:
            if kw.arg == "out":
                name, attrs = _attr_chain_root(kw.value)
                if name is not None:
                    yield MutationSite(name, call, "out= argument write")


def scope_mutations(ctx: FileContext, scope: ast.AST) -> List[MutationSite]:
    """Every in-place write whose statements belong directly to ``scope``."""
    sites: List[MutationSite] = []
    for node in ctx.nodes(ast.Assign):
        if isinstance(node, ast.Assign) and own_statement(ctx, scope, node):
            for target in node.targets:
                sites.extend(_target_mutations(target, node, ""))
    for node in ctx.nodes(ast.AugAssign):
        if isinstance(node, ast.AugAssign) and own_statement(ctx, scope, node):
            if isinstance(node.target, ast.Name):
                sites.append(
                    MutationSite(node.target.id, node, BARE_NAME_AUGASSIGN)
                )
            else:
                sites.extend(
                    _target_mutations(node.target, node, "augmented")
                )
    for node in ctx.nodes(ast.Call):
        if isinstance(node, ast.Call) and own_statement(ctx, scope, node):
            sites.extend(_call_mutations(ctx, node))
    sites.sort(
        key=lambda site: (
            getattr(site.node, "lineno", 0),
            getattr(site.node, "col_offset", 0),
        )
    )
    return sites


# ----------------------------------------------------------------------
# Shared-view name tracking
# ----------------------------------------------------------------------
SummaryLookup = Callable[[ast.Call], Optional["FunctionSummary"]]


def _is_view_call(
    ctx: FileContext, call: ast.Call, lookup: Optional[SummaryLookup]
) -> bool:
    func = call.func
    name: Optional[str] = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in VIEW_PRODUCER_FUNCTIONS or name in VIEW_PRODUCER_METHODS:
        return True
    if lookup is not None:
        summary = lookup(call)
        if summary is not None and summary.returns_view:
            return True
    return False


class _ViewTracker:
    """Names bound to shared-memory views, statement order (cf. DT001's
    ``_Float64Tracer``: nested bodies inline, no branch merging — an
    intentionally simple over-approximation)."""

    def __init__(
        self,
        ctx: FileContext,
        lookup: Optional[SummaryLookup] = None,
        seed: Iterable[str] = (),
    ) -> None:
        self.ctx = ctx
        self.lookup = lookup
        self.names: Set[str] = set(seed)

    def process(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            is_view = self.is_view(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, is_view)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, stmt.value, self.is_view(stmt.value))
        elif isinstance(stmt, ast.For):
            # Iterating a view container (``for arr in arrays.values():``)
            # yields views; any other loop rebinds its targets.
            self._bind(stmt.target, stmt.iter, self._iterates_views(stmt.iter))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are tracked separately
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list) and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.process(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            self.process(handler.body)

    def _bind(self, target: ast.AST, value: ast.AST, is_view: bool) -> None:
        if isinstance(target, ast.Name):
            if is_view:
                self.names.add(target.id)
            else:
                self.names.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._bind(sub_target, sub_value, self.is_view(sub_value))
            else:
                for sub_target in target.elts:
                    self._bind(sub_target, value, is_view)

    def _iterates_views(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("values", "items"):
                name, _ = _attr_chain_root(node.func.value)
                return name is not None and name in self.names
        return False

    def is_view(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            return self.is_view(node.value)  # slices alias the same buffer
        if isinstance(node, ast.Attribute):
            # ``images = task.train.images`` stays a view of the segment.
            return self.is_view(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.is_view(elt) for elt in node.elts)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "seal" and node.args:
                # ``repro.utils.sanitize.seal`` returns its argument —
                # sealing a view does not stop it aliasing the segment.
                return self.is_view(node.args[0])
            return _is_view_call(self.ctx, node, self.lookup)
        return False


def shared_view_names(
    ctx: FileContext,
    scope: ast.AST,
    lookup: Optional[SummaryLookup] = None,
    seed: Iterable[str] = (),
) -> Set[str]:
    """Names bound to shared-memory views within ``scope``'s own body."""
    tracker = _ViewTracker(ctx, lookup, seed)
    body = getattr(scope, "body", None)
    if isinstance(body, list):
        tracker.process([stmt for stmt in body if isinstance(stmt, ast.stmt)])
    return tracker.names


# ----------------------------------------------------------------------
# Unseeded-RNG source detection
# ----------------------------------------------------------------------
def unseeded_rng_calls(ctx: FileContext, scope: ast.AST) -> List[ast.Call]:
    """Non-exempt unseeded ``np.random.default_rng()`` calls in ``scope``."""
    found: List[ast.Call] = []
    for node in ctx.nodes(ast.Call):
        if not isinstance(node, ast.Call):
            continue
        if not own_statement(ctx, scope, node):
            continue
        if ctx.qualname(node.func) != "numpy.random.default_rng":
            continue
        if node.args or node.keywords:
            continue  # seeded
        parent = ctx.parent(node)
        if isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.Or):
            continue  # ``rng or default_rng()``: the caller decides seeding
        if _state_restored(ctx, scope, node):
            continue
        found.append(node)
    return found


def _state_restored(ctx: FileContext, scope: ast.AST, call: ast.Call) -> bool:
    """Whether the call's target is re-seeded via ``.bit_generator.state =``."""
    parent = ctx.parent(call)
    if not isinstance(parent, ast.Assign) or len(parent.targets) != 1:
        return False
    target_src = ast.unparse(parent.targets[0])
    for node in ctx.nodes(ast.Assign):
        if not isinstance(node, ast.Assign):
            continue
        if not own_statement(ctx, scope, node):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "state"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "bit_generator"
                and ast.unparse(target.value.value) == target_src
            ):
                return True
    return False


# ----------------------------------------------------------------------
# Dtype tracing through calls
# ----------------------------------------------------------------------
class InterprocFloat64Tracer(_Float64Tracer):
    """DT001's float64 tracer, extended through resolved call results."""

    def __init__(self, ctx: FileContext, lookup: Optional[SummaryLookup]) -> None:
        super().__init__(ctx)
        self._lookup = lookup

    def is_float64(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call) and self._lookup is not None:
            summary = self._lookup(node)
            if summary is not None and summary.returns_float64:
                return True
        return super().is_float64(node)


_F32_CONSTS = frozenset({"float32", "f4", "<f4"})


def _is_float32_dtype_expr(ctx: FileContext, node: ast.AST) -> bool:
    if ctx.qualname(node) in {"numpy.float32", "numpy.single"}:
        return True
    return isinstance(node, ast.Constant) and node.value in _F32_CONSTS


def _float32_dtype_kwarg(ctx: FileContext, call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "dtype" and _is_float32_dtype_expr(ctx, keyword.value):
            return True
    return False


class _Float32Tracer:
    """Minimal float32 mirror of the DT001 tracer (same traversal shape)."""

    def __init__(self, ctx: FileContext, lookup: Optional[SummaryLookup]) -> None:
        self.ctx = ctx
        self._lookup = lookup
        self.names: Set[str] = set()

    def process(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_is_f32 = self.is_float32(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if value_is_f32:
                        self.names.add(target.id)
                    else:
                        self.names.discard(target.id)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                if self.is_float32(stmt.value):
                    self.names.add(stmt.target.id)
                else:
                    self.names.discard(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list) and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.process(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            self.process(handler.body)

    def is_float32(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            return self.is_float32(node.value)
        if isinstance(node, ast.Attribute) and node.attr == "T":
            return self.is_float32(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.is_float32(node.operand)
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_float32_dtype_expr(self.ctx, node.args[0])
            ):
                return True
            qualname = self.ctx.qualname(node.func)
            if qualname in _CREATOR_FNS:
                return _float32_dtype_kwarg(self.ctx, node)
            if qualname in _PRESERVING_FNS:
                return any(self.is_float32(arg) for arg in node.args)
            if self._lookup is not None:
                summary = self._lookup(node)
                if summary is not None and summary.returns_float32:
                    return True
        return False


# ----------------------------------------------------------------------
# Summaries + fixpoint
# ----------------------------------------------------------------------
@dataclass
class FunctionSummary:
    """Whole-program facts about one indexed function."""

    qualname: str
    rng_source: bool = False
    rng_tainted: bool = False
    rng_call: Optional[ast.Call] = None
    rng_via: Optional[str] = None
    returns_dtype: Optional[str] = None
    returns_view: bool = False
    mutated_params: Dict[int, Tuple[MutationSite, ...]] = field(default_factory=dict)
    mutates_params: Set[int] = field(default_factory=set)
    mutates_via: Dict[int, str] = field(default_factory=dict)

    @property
    def returns_float64(self) -> bool:
        return self.returns_dtype == "float64"

    @property
    def returns_float32(self) -> bool:
        return self.returns_dtype == "float32"


def mutated_argument_exprs(
    call: ast.Call, callee: FunctionInfo, summary: FunctionSummary
) -> Iterator[Tuple[ast.expr, int]]:
    """Call arguments landing on a parameter index the callee mutates."""
    offset = 0
    func = call.func
    if (
        callee.is_method
        and isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
    ):
        offset = 1  # the receiver occupies the self/cls slot
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if position + offset in summary.mutates_params:
            yield arg, position + offset
    for keyword in call.keywords:
        if keyword.arg is None or keyword.arg not in callee.params:
            continue
        index = callee.params.index(keyword.arg)
        if index in summary.mutates_params:
            yield keyword.value, index


def _bound_names(node: ast.AST) -> Set[str]:
    """Names (re)bound anywhere inside ``node`` by assignment-like syntax."""
    bound: Set[str] = set()

    def collect(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect(elt)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                collect(target)
        elif isinstance(child, ast.AnnAssign):
            collect(child.target)
        elif isinstance(child, ast.For):
            collect(child.target)
        elif isinstance(child, ast.withitem) and child.optional_vars is not None:
            collect(child.optional_vars)
    return bound


def _stable_param_indices(info: FunctionInfo) -> Dict[str, int]:
    """Parameter name -> index, for parameters never rebound in the body."""
    rebound = _bound_names(info.node)
    return {
        name: index
        for index, name in enumerate(info.params)
        if name not in rebound
    }


def _param_mutations(info: FunctionInfo) -> Dict[int, Tuple[MutationSite, ...]]:
    stable = _stable_param_indices(info)
    found: Dict[int, List[MutationSite]] = {}
    for site in scope_mutations(info.ctx, info.node):
        index = stable.get(site.name)
        if index is not None:
            found.setdefault(index, []).append(site)
    return {index: tuple(sites) for index, sites in found.items()}


def _function_returns(info: FunctionInfo) -> List[ast.Return]:
    return [
        node
        for node in ast.walk(info.node)
        if isinstance(node, ast.Return)
        and node.value is not None
        and info.ctx.enclosing_function(node) is info.node
    ]


def _body_statements(info: FunctionInfo) -> List[ast.stmt]:
    return [stmt for stmt in info.node.body if isinstance(stmt, ast.stmt)]


def _return_dtype(
    info: FunctionInfo, lookup: Optional[SummaryLookup]
) -> Optional[str]:
    returns = _function_returns(info)
    if not returns:
        return None
    tracer64 = InterprocFloat64Tracer(info.ctx, lookup)
    tracer64.process(_body_statements(info))
    if all(tracer64.is_float64(node.value) for node in returns if node.value):
        return "float64"
    tracer32 = _Float32Tracer(info.ctx, lookup)
    tracer32.process(_body_statements(info))
    if all(tracer32.is_float32(node.value) for node in returns if node.value):
        return "float32"
    return None


def _returns_view(info: FunctionInfo, lookup: Optional[SummaryLookup]) -> bool:
    returns = _function_returns(info)
    if not returns:
        return False
    tracker = _ViewTracker(info.ctx, lookup)
    tracker.process(_body_statements(info))
    return any(tracker.is_view(node.value) for node in returns if node.value)


def summarize_program(
    index: ProjectIndex, graph: CallGraph
) -> Dict[str, FunctionSummary]:
    """Local extraction followed by a whole-program fixpoint sweep."""
    summaries: Dict[str, FunctionSummary] = {}
    calls_by_fn: Dict[str, List[ast.Call]] = {}
    for site in graph.sites:
        if site.caller is not None:
            calls_by_fn.setdefault(site.caller, []).append(site.call)

    def lookup(call: ast.Call) -> Optional[FunctionSummary]:
        info = graph.callee(call)
        return None if info is None else summaries.get(info.qualname)

    stable_params: Dict[str, Dict[str, int]] = {}
    for qualname, info in index.functions.items():
        summary = FunctionSummary(qualname)
        sources = unseeded_rng_calls(info.ctx, info.node)
        if sources:
            summary.rng_source = True
            summary.rng_tainted = True
            summary.rng_call = sources[0]
        summary.mutated_params = _param_mutations(info)
        summary.mutates_params = set(summary.mutated_params)
        summaries[qualname] = summary
        stable_params[qualname] = _stable_param_indices(info)

    changed = True
    guard = 0
    while changed and guard < 50:
        changed = False
        guard += 1
        for qualname, info in index.functions.items():
            summary = summaries[qualname]
            calls = calls_by_fn.get(qualname, [])
            if not summary.rng_tainted:
                for call in calls:
                    callee = graph.callee(call)
                    if callee is None:
                        continue
                    if summaries[callee.qualname].rng_tainted:
                        summary.rng_tainted = True
                        summary.rng_via = callee.qualname
                        changed = True
                        break
            dtype = _return_dtype(info, lookup)
            if dtype != summary.returns_dtype:
                summary.returns_dtype = dtype
                changed = True
            if not summary.returns_view and _returns_view(info, lookup):
                summary.returns_view = True
                changed = True
            params = stable_params[qualname]
            for call in calls:
                callee = graph.callee(call)
                if callee is None:
                    continue
                callee_summary = summaries[callee.qualname]
                if not callee_summary.mutates_params:
                    continue
                for arg_expr, _ in mutated_argument_exprs(
                    call, callee, callee_summary
                ):
                    if not isinstance(arg_expr, ast.Name):
                        continue
                    index_here = params.get(arg_expr.id)
                    if index_here is not None and index_here not in summary.mutates_params:
                        summary.mutates_params.add(index_here)
                        summary.mutates_via[index_here] = callee.qualname
                        changed = True
    return summaries
