"""Shared-memory lifecycle rule: every segment creation has a closing path.

POSIX shared memory created by :class:`~repro.fl.executor.SharedArrayStore`
/ ``SharedMemory(create=True)`` outlives the process unless something calls
``close``/``unlink`` — a leaked segment survives in ``/dev/shm`` until
reboot and, across a grid sweep, exhausts it.  ``SHM001`` therefore
requires every *creating* construction (attaches by name are exempt) to be
owned by something with a guaranteed release path:

* a ``with`` block (``SharedArrayStore``/``SharedParamsLease`` are context
  managers),
* an instance attribute of a class that defines a teardown method
  (``close``/``release``/``shutdown``/``__exit__``/``__del__``),
* a local that is released in a ``finally``/``except`` block, stored onto
  ``self`` for class-managed teardown, or returned (ownership transferred
  to the caller).

Deliberate straight-line constructions (e.g. tests exercising the teardown
itself) carry a ``# repro: allow[SHM001]`` pragma naming why.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .engine import Diagnostic, FileContext, Rule

__all__ = ["ShmLifecycleRule", "RULES"]

#: Constructors that *create* (not attach) a shared segment or a lease on one.
_OWNING_CONSTRUCTORS = frozenset({"SharedArrayStore", "SharedParamsLease"})

#: Methods whose presence marks a class as managing its segments' teardown.
_TEARDOWN_METHODS = frozenset({"close", "release", "shutdown", "__exit__", "__del__"})

#: Calls on a local that count as releasing it.
_RELEASE_CALLS = frozenset({"close", "release", "unlink", "shutdown"})


def _constructor_name(ctx: FileContext, node: ast.Call) -> Optional[str]:
    """The shm-owning constructor this call invokes, if any."""
    func = node.func
    simple = None
    if isinstance(func, ast.Name):
        simple = func.id
    elif isinstance(func, ast.Attribute):
        simple = func.attr
    if simple in _OWNING_CONSTRUCTORS:
        return simple
    if simple == "SharedMemory":
        for keyword in node.keywords:
            if keyword.arg == "create" and isinstance(keyword.value, ast.Constant):
                if keyword.value.value is True:
                    return "SharedMemory(create=True)"
    return None


def _class_has_teardown(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name in _TEARDOWN_METHODS
        for stmt in cls.body
    )


def _released_names_in_cleanup(scope: ast.AST) -> Set[str]:
    """Locals released via ``finally``/``except`` anywhere in ``scope``."""
    released: Set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try):
            continue
        cleanup: List[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        for stmt in cleanup:
            for call in ast.walk(stmt):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _RELEASE_CALLS
                    and isinstance(call.func.value, ast.Name)
                ):
                    released.add(call.func.value.id)
    return released


def _name_escapes(scope: ast.AST, name: str) -> bool:
    """Ownership leaves the local: returned, stored on self, or re-with'd."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Return):
            value = node.value
            if isinstance(value, ast.Name) and value.id == name:
                return True
        elif isinstance(node, ast.Assign):
            if not (isinstance(node.value, ast.Name) and node.value.id == name):
                continue
            for target in node.targets:
                base = target.value if isinstance(target, ast.Subscript) else target
                if isinstance(base, ast.Attribute):
                    return True  # self.<attr> = name / self.<store>[k] = name
        elif isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if isinstance(expr, ast.Call):
                    for arg in expr.args:
                        if isinstance(arg, ast.Name) and arg.id == name:
                            return True  # with closing(name): ...
    return False


class ShmLifecycleRule(Rule):
    rule_id = "SHM001"
    contract = (
        "Shared-memory creation (SharedArrayStore, SharedParamsLease, "
        "SharedMemory(create=True)) must have a guaranteed release path: "
        "with-block, teardown-owning class attribute, finally/except "
        "release, or ownership transfer — leaked segments outlive the "
        "process in /dev/shm."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Call):
            label = _constructor_name(ctx, node)
            if label is None:
                continue
            if self._is_managed(ctx, node):
                continue
            findings.append(
                ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"'{label}' constructed without a guaranteed release "
                    "path (with-block, teardown-owning class, "
                    "finally/except release, or ownership transfer); a "
                    "leaked segment persists in /dev/shm",
                )
            )
        return findings

    def _is_managed(self, ctx: FileContext, node: ast.Call) -> bool:
        # Inside a `with` item (directly or wrapped, e.g. closing(...)).
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.withitem):
                return True
            if isinstance(ancestor, ast.stmt):
                break
        parent = ctx.parent(node)
        # Directly returned / yielded: ownership transfers to the caller.
        if isinstance(parent, (ast.Return, ast.Yield)):
            return True
        if not isinstance(parent, ast.Assign):
            return False
        scope: ast.AST = ctx.enclosing_function(node) or ctx.tree
        for target in parent.targets:
            if isinstance(target, ast.Attribute) or (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
            ):
                # self.<attr> = ... / self.<store>[k] = ... in a class that
                # owns teardown.
                cls = ctx.enclosing_class(node)
                if cls is not None and _class_has_teardown(cls):
                    return True
            elif isinstance(target, ast.Name):
                if target.id in _released_names_in_cleanup(scope):
                    return True
                if _name_escapes(scope, target.id):
                    return True
        return False


RULES = (ShmLifecycleRule,)
