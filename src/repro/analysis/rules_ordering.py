"""Ordering-determinism rules: no hash- or filesystem-ordered iteration.

Grid cache keys, client schedules and aggregation orders must not depend
on orderings Python does not define: directory listings come back in
filesystem order (differs across hosts sharing one grid cache, PR 5), and
``set`` iteration order is salted per process (``PYTHONHASHSEED``), which
breaks bit-identical serial/thread/process execution (PRs 1, 7) the moment
a set's contents flow into results in iteration order.

* ``ORD001``: ``os.listdir``/``os.scandir``/``glob``/``iterdir``/``rglob``
  results must pass through ``sorted(...)`` before use.
* ``ORD002``: iterating a set (literal, comprehension, ``set()`` call, or
  a local traceable to one) is flagged; iterate ``sorted(the_set)`` or
  justify commutativity with a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .engine import Diagnostic, FileContext, Rule

__all__ = ["OrderingScanRule", "OrderingSetIterRule", "RULES"]

_SCAN_QUALNAMES = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_SCAN_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Set-producing method calls that keep a tracked local set-typed.
_SET_METHODS = frozenset(
    {
        "difference",
        "union",
        "intersection",
        "symmetric_difference",
        "copy",
    }
)


def _scan_label(ctx: FileContext, node: ast.Call) -> Optional[str]:
    qualname = ctx.qualname(node.func)
    if qualname in _SCAN_QUALNAMES:
        return qualname
    if isinstance(node.func, ast.Attribute) and node.func.attr in _SCAN_METHODS:
        # A method on any object (Path instance, local variable, call
        # result); module-level glob.glob was matched by qualname above.
        return f".{node.func.attr}()"
    return None


def _under_sorted(ctx: FileContext, node: ast.AST) -> bool:
    """Whether ``node`` is (transitively) an argument of ``sorted(...)``."""
    current = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.Call):
            func = ancestor.func
            if isinstance(func, ast.Name) and func.id == "sorted":
                return True
            if isinstance(func, ast.Attribute) and func.attr == "sort":
                return True
            current = ancestor
            continue
        if isinstance(ancestor, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            current = ancestor
            continue
        if isinstance(ancestor, ast.comprehension):
            current = ancestor
            continue
        if isinstance(ancestor, ast.Starred):
            current = ancestor
            continue
        break
    return False


class OrderingScanRule(Rule):
    rule_id = "ORD001"
    contract = (
        "Directory scans (os.listdir/scandir, glob, Path.iterdir/glob/"
        "rglob) return filesystem order, which differs across hosts "
        "sharing one grid cache (PR 5); wrap them in sorted(...)."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Call):
            label = _scan_label(ctx, node)
            if label is None:
                continue
            if _under_sorted(ctx, node):
                continue
            findings.append(
                ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"'{label}' yields filesystem order; wrap in "
                    "sorted(...) so results are host-independent",
                )
            )
        return findings


class _SetTracer:
    """Function-local names traceable to a set construction (source order)."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def process(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            produces = self.is_set(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    (self.names.add if produces else self.names.discard)(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                produces = self.is_set(stmt.value)
                (self.names.add if produces else self.names.discard)(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            pass  # x |= other keeps set-ness; x += would have raised — keep as-is
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list):
                self.process(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            self.process(handler.body)

    def is_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set(func.value)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


class OrderingSetIterRule(Rule):
    rule_id = "ORD002"
    contract = (
        "Set iteration order is hash-salted per process (PYTHONHASHSEED), "
        "breaking bit-identical cross-backend runs (PRs 1, 7); iterate "
        "sorted(the_set) or pragma-justify commutativity."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef))
        for scope in scopes:
            tracer = _SetTracer()
            body = getattr(scope, "body", [])
            tracer.process([s for s in body if isinstance(s, ast.stmt)])
            for node in ctx.nodes(ast.For):
                if self._scope_of(ctx, node) is not scope:
                    continue
                self._check_iter(ctx, tracer, node.iter, findings)
            for node in ctx.nodes(
                ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp
            ):
                if self._scope_of(ctx, node) is not scope:
                    continue
                for comp in node.generators:
                    self._check_iter(ctx, tracer, comp.iter, findings)
        return findings

    @staticmethod
    def _scope_of(ctx: FileContext, node: ast.AST) -> ast.AST:
        enclosing = ctx.enclosing_function(node)
        while isinstance(enclosing, ast.Lambda):
            enclosing = ctx.enclosing_function(enclosing)
        return enclosing if enclosing is not None else ctx.tree

    def _check_iter(
        self,
        ctx: FileContext,
        tracer: _SetTracer,
        iter_expr: ast.AST,
        findings: List[Diagnostic],
    ) -> None:
        if not tracer.is_set(iter_expr):
            return
        if _under_sorted(ctx, iter_expr):
            return
        findings.append(
            ctx.diagnostic(
                iter_expr,
                self.rule_id,
                "iteration over a set is hash-salted per process; iterate "
                "sorted(...) or justify commutativity with a pragma",
            )
        )


RULES = (OrderingScanRule, OrderingSetIterRule)
