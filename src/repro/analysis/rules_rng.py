"""RNG-discipline rules: seeded ``numpy.random.Generator`` streams only.

The reproduction's determinism story (PRs 1, 7) requires every stochastic
value to come from an explicitly seeded, explicitly threaded
``np.random.Generator``; science and non-science streams are spawned from
one ``SeedSequence`` seam in :mod:`repro.utils.rng`.  Global-state RNG
(``np.random.seed``/``np.random.shuffle``, the stdlib :mod:`random`
module) and entropy sources (wall clock, ``os.urandom``) silently break
bit-identical serial/thread/process execution and cross-run replays.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .engine import Diagnostic, FileContext, Rule

__all__ = ["RngGlobalStateRule", "RngStdlibRule", "RngEntropyRule", "RngSeedSeamRule", "RULES"]

#: ``numpy.random`` attributes that are NOT process-global state: the
#: sanctioned Generator constructor plus the classes RNG004 polices.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Constructions of RNG seed material, allowed only in the one seam module.
_SEED_CONSTRUCTORS = frozenset(
    {
        "Generator",
        "SeedSequence",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_RNG_SEAM_MODULE = "repro.utils.rng"

#: Wall-clock / OS-entropy callables that must not feed science values.
_ENTROPY_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


def _numpy_random_attr(qualname: str) -> str:
    """The ``X`` of ``numpy.random.X`` (empty string when not that shape)."""
    prefix = "numpy.random."
    if qualname.startswith(prefix):
        tail = qualname[len(prefix) :]
        if "." not in tail:
            return tail
    return ""


class RngGlobalStateRule(Rule):
    rule_id = "RNG001"
    contract = (
        "No process-global numpy RNG: np.random.<fn> calls (seed, shuffle, "
        "rand, ...) are banned everywhere; use a seeded np.random.Generator."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Call):
            qualname = ctx.qualname(node.func)  # type: ignore[attr-defined]
            if qualname is None:
                continue
            attr = _numpy_random_attr(qualname)
            if attr and attr not in _NUMPY_RANDOM_ALLOWED:
                findings.append(
                    ctx.diagnostic(
                        node,
                        self.rule_id,
                        f"global-state numpy RNG call 'np.random.{attr}' breaks "
                        "cross-backend determinism; thread a seeded "
                        "np.random.Generator instead",
                    )
                )
        for node in ctx.nodes(ast.ImportFrom):
            base = ctx._resolve_import_base(node)
            if base != "numpy.random":
                continue
            for alias in node.names:  # type: ignore[attr-defined]
                if alias.name != "*" and alias.name not in _NUMPY_RANDOM_ALLOWED:
                    findings.append(
                        ctx.diagnostic(
                            node,
                            self.rule_id,
                            f"importing global-state 'numpy.random.{alias.name}' "
                            "breaks cross-backend determinism; thread a seeded "
                            "np.random.Generator instead",
                        )
                    )
        return findings


class RngStdlibRule(Rule):
    rule_id = "RNG002"
    contract = (
        "No stdlib random module: its hidden global Mersenne state is "
        "unseedable per-stream; numpy Generators cover every use here."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Import):
            for alias in node.names:  # type: ignore[attr-defined]
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(
                        ctx.diagnostic(
                            node,
                            self.rule_id,
                            "stdlib 'random' is process-global state; use a "
                            "seeded np.random.Generator (repro.utils.rng)",
                        )
                    )
        for node in ctx.nodes(ast.ImportFrom):
            if ctx._resolve_import_base(node) == "random":
                findings.append(
                    ctx.diagnostic(
                        node,
                        self.rule_id,
                        "stdlib 'random' is process-global state; use a "
                        "seeded np.random.Generator (repro.utils.rng)",
                    )
                )
        return findings


class RngEntropyRule(Rule):
    rule_id = "RNG003"
    contract = (
        "Science packages (fl/defenses/attacks/nn/data/models) must not read "
        "wall clock or OS entropy (time.time, os.urandom, uuid4, secrets) "
        "into values; time.monotonic for deadlines is fine."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not ctx.in_science_package():
            return []
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Call):
            qualname = ctx.qualname(node.func)  # type: ignore[attr-defined]
            if qualname is None:
                continue
            if qualname in _ENTROPY_CALLS or qualname.startswith("secrets."):
                findings.append(
                    ctx.diagnostic(
                        node,
                        self.rule_id,
                        f"'{qualname}' is a nondeterminism source inside a "
                        "science package; science values must derive from the "
                        "experiment seed (time.monotonic is fine for deadlines)",
                    )
                )
        return findings


class RngSeedSeamRule(Rule):
    rule_id = "RNG004"
    contract = (
        "RNG seed material (SeedSequence, bit generators, RandomState, raw "
        "Generator) is constructed only in repro/utils/rng.py — the one "
        "audited seam that derives independent streams from the experiment "
        "seed; everywhere else uses np.random.default_rng or spawn_rngs."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.module == _RNG_SEAM_MODULE:
            return []
        findings: List[Diagnostic] = []
        for node in ctx.nodes(ast.Call):
            qualname = ctx.qualname(node.func)  # type: ignore[attr-defined]
            if qualname is None:
                continue
            attr = _numpy_random_attr(qualname)
            if attr in _SEED_CONSTRUCTORS:
                findings.append(
                    ctx.diagnostic(
                        node,
                        self.rule_id,
                        f"'np.random.{attr}' construction outside "
                        "repro/utils/rng.py; derive streams via "
                        "repro.utils.rng.spawn_rngs or np.random.default_rng "
                        "so seed derivation stays auditable in one place",
                    )
                )
        return findings


RULES = (RngGlobalStateRule, RngStdlibRule, RngEntropyRule, RngSeedSeamRule)
