"""Trace-kernel purity rules: replay kernels must stay backend-clean.

The recorded-tape engine (:mod:`repro.nn.trace`) compiles each op's
forward/VJP kernel once per signature and replays it thousands of times.
Every kernel builder receives the plan's
:class:`~repro.nn.backend.ArrayBackend` as ``xp``, and the registry is
rebuilt by import in fresh worker processes.  Two static contracts keep
that sound:

* kernel builders never call ``numpy`` directly (``TR001``) — all array
  math goes through the ``xp`` shim, so swapping the backend (numpy
  today, the optional torch adapter when present) swaps the whole replay
  path at once instead of leaving hidden numpy islands;
* ``register_trace_op`` runs at module import time with module-level
  named builder functions (``TR002``) — mirroring the fan-out registry
  contract (``FO001``–``FO003``), so a process-pool worker that merely
  imports :mod:`repro.nn.trace_ops` reconstructs the exact registry the
  parent recorded against, and compiled plans stay picklable by name.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from .engine import Diagnostic, FileContext, Rule

__all__ = ["TraceKernelBackendRule", "TraceRegistrationScopeRule", "RULES"]


def _is_register_call(ctx: FileContext, node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "register_trace_op":
        return True
    if isinstance(func, ast.Attribute) and func.attr == "register_trace_op":
        return True
    qualname = ctx.qualname(func)
    return bool(qualname) and qualname.endswith(".register_trace_op")


def _register_kernel_exprs(node: ast.Call) -> List[ast.AST]:
    """The forward/vjp builder expressions of a register_trace_op call."""
    exprs: List[Optional[ast.AST]] = [
        node.args[1] if len(node.args) > 1 else None,
        node.args[2] if len(node.args) > 2 else None,
    ]
    for keyword in node.keywords:
        if keyword.arg == "forward":
            exprs[0] = keyword.value
        elif keyword.arg == "vjp":
            exprs[1] = keyword.value
    return [expr for expr in exprs if expr is not None]


def _module_level_functions(ctx: FileContext) -> Dict[str, ast.AST]:
    return {
        stmt.name: stmt
        for stmt in ctx.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class TraceKernelBackendRule(Rule):
    rule_id = "TR001"
    contract = (
        "Registered trace kernels must route array math through the xp "
        "ArrayBackend shim, never numpy directly: a direct np.* call pins "
        "the replayed plan to numpy behind the backend's back (PR 9)."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        module_fns = _module_level_functions(ctx)
        kernel_names: Set[str] = set()
        for node in ctx.nodes(ast.Call):
            if not _is_register_call(ctx, node):
                continue
            for expr in _register_kernel_exprs(node):
                if isinstance(expr, ast.Name):
                    kernel_names.add(expr.id)
        for name in sorted(kernel_names):
            fn = module_fns.get(name)
            if fn is None:
                continue  # imported builder: checked in its defining module
            findings.extend(self._numpy_uses(ctx, fn))
        return findings

    def _numpy_uses(self, ctx: FileContext, fn: ast.AST) -> Iterable[Diagnostic]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
                continue
            qualname = ctx.qualname(node)
            if qualname == "numpy" or (qualname or "").startswith("numpy."):
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"trace kernel '{getattr(fn, 'name', '?')}' uses numpy "
                    f"('{node.id}') directly; go through the xp ArrayBackend "
                    "argument so backend swaps cover the whole replay path",
                )


class TraceRegistrationScopeRule(Rule):
    rule_id = "TR002"
    contract = (
        "register_trace_op must run at module import time with module-level "
        "named builder functions — lambdas, closures and nested "
        "registrations are invisible (or unpicklable) to a worker process "
        "that rebuilds the registry by import (PR 9)."
    )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        module_fns = _module_level_functions(ctx)
        local_defs = {
            node.name: node
            for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef)
        }
        for node in ctx.nodes(ast.Call):
            if not _is_register_call(ctx, node):
                continue
            if ctx.enclosing_function(node) is not None:
                findings.append(
                    ctx.diagnostic(
                        node,
                        self.rule_id,
                        "register_trace_op called inside a function; move the "
                        "registration to module scope so importing the module "
                        "(as pool workers do) performs it",
                    )
                )
            for expr in _register_kernel_exprs(node):
                problem = self._builder_problem(ctx, expr, module_fns, local_defs)
                if problem is not None:
                    findings.append(
                        ctx.diagnostic(
                            expr,
                            self.rule_id,
                            f"trace kernel builder is {problem}; register a "
                            "module-level named function so fresh processes "
                            "rebuild the identical registry",
                        )
                    )
        return findings

    @staticmethod
    def _builder_problem(ctx, expr, module_fns, local_defs) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return "a lambda (unpicklable, and invisible to re-imports)"
        if isinstance(expr, ast.Call):
            return f"a call result '{ast.unparse(expr)}' (e.g. a partial/closure)"
        if isinstance(expr, ast.Name):
            if expr.id in module_fns:
                return None
            nested = local_defs.get(expr.id)
            if nested is not None and ctx.enclosing_function(nested) is not None:
                return f"the nested function '{expr.id}' (a closure)"
            return None  # imported name: assume the defining module is clean
        if isinstance(expr, ast.Attribute):
            return f"an attribute lookup '{ast.unparse(expr)}' (likely a bound method)"
        return f"a non-function expression '{ast.unparse(expr)}'"


RULES = (TraceKernelBackendRule, TraceRegistrationScopeRule)
