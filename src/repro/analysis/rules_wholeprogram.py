"""Whole-program (interprocedural) rule families: RNG101, DT101, MUT001-003.

These rules run only under ``repro lint --whole-program``
(``lint_paths(..., whole_program=True)``): they consume the project call
graph and the fixpoint per-function summaries built by
:mod:`repro.analysis.callgraph` / :mod:`repro.analysis.summaries` and may
anchor findings in any linted file.

* ``RNG101`` — an unseeded ``np.random.default_rng()`` stream reaching a
  science package through *any* resolved call chain.  Per-file RNG rules
  police the legacy ``numpy.random.*`` API; this closes the helper-
  function gap (a utility module minting a fresh OS-entropy stream that a
  defense then consumes).
* ``DT101`` — DT001's float64 defense-geometry check with the tracer
  extended through resolved calls, so a helper that *returns* float64
  satisfies the contract and a helper that returns float32 no longer
  hides a bad accumulation.  Supersedes DT001 in whole-program runs.
* ``MUT001`` — an in-place write through a name bound to a shared-memory
  view (``resolve_shared_array`` / ``attach_array_store`` / broker
  ``resolve*`` results, or any function summarized as returning one).
* ``MUT002`` — passing a shared view to a callee that writes that
  parameter in place (directly or transitively).
* ``MUT003`` — a registered fan-out / trace kernel that mutates its own
  inputs: the static face of the cross-process write race the sealed-
  array sanitizer (``repro.utils.sanitize``) trips at runtime.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .engine import (
    SCIENCE_PACKAGES,
    Diagnostic,
    FileContext,
    ProgramContext,
    ProgramRule,
)
from .rules_dtype import DtypeGeometryRule, _Float64Tracer
from . import rules_fanout, rules_trace
from .callgraph import FunctionInfo
from .summaries import (
    FunctionSummary,
    InterprocFloat64Tracer,
    MutationSite,
    SummaryLookup,
    function_scopes,
    mutated_argument_exprs,
    scope_mutations,
    shared_view_names,
    unseeded_rng_calls,
)

__all__ = [
    "InterprocDtypeGeometryRule",
    "KernelInputMutationRule",
    "RngTaintRule",
    "SharedViewEscapeRule",
    "SharedViewWriteRule",
    "PROGRAM_RULES",
]


def _is_science_module(module: Optional[str]) -> bool:
    if not module:
        return False
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in SCIENCE_PACKAGES
    )


def _summary_lookup(program: ProgramContext) -> SummaryLookup:
    def lookup(call: ast.Call) -> Optional[FunctionSummary]:
        info = program.graph.callee(call)
        if info is None:
            return None
        return program.summaries.get(info.qualname)

    return lookup


# ----------------------------------------------------------------------
# RNG101 — unseeded streams reaching science packages
# ----------------------------------------------------------------------
class RngTaintRule(ProgramRule):
    rule_id = "RNG101"
    contract = (
        "No unseeded np.random.default_rng() stream may reach a science "
        "package through any call chain: science randomness comes from "
        "seeded Generators threaded via utils.rng.spawn_rngs.  Exempt "
        "idioms: 'rng = rng or np.random.default_rng()' (caller decides) "
        "and state-restore ('rng.bit_generator.state = ...')."
    )

    def check_program(self, program: ProgramContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        summaries = program.summaries
        # (a) Direct sources inside science code, including module level.
        for ctx in program.contexts:
            if not ctx.in_science_package():
                continue
            for call in unseeded_rng_calls(ctx, ctx.tree):
                findings.append(self._source_finding(ctx, call))
        for qualname, summary in summaries.items():
            info = program.index.functions.get(qualname)
            if info is None or not summary.rng_source:
                continue
            if _is_science_module(info.module) and summary.rng_call is not None:
                findings.append(self._source_finding(info.ctx, summary.rng_call))
        # (b) Boundary crossings: a science caller invoking a tainted
        # non-science callee.  Reporting only the crossing call keeps one
        # finding per chain instead of one per intermediate frame.
        for site in program.graph.sites:
            if not site.ctx.in_science_package():
                continue
            callee = program.graph.callee(site.call)
            if callee is None or _is_science_module(callee.module):
                continue
            summary = summaries.get(callee.qualname)
            if summary is None or not summary.rng_tainted:
                continue
            chain = self._chain(summaries, callee.qualname)
            findings.append(
                site.ctx.diagnostic(
                    site.call,
                    self.rule_id,
                    "value from an unseeded np.random.default_rng() stream "
                    f"reaches this science module through {' -> '.join(chain)} "
                    "— thread a seeded Generator (utils.rng.spawn_rngs) "
                    "instead",
                )
            )
        return findings

    def _source_finding(self, ctx: FileContext, call: ast.Call) -> Diagnostic:
        return ctx.diagnostic(
            call,
            self.rule_id,
            "unseeded np.random.default_rng() in a science package — the "
            "stream is OS-entropy-seeded and unreproducible; thread a seeded "
            "Generator (utils.rng.spawn_rngs) or restore explicit state",
        )

    @staticmethod
    def _chain(summaries: Dict[str, FunctionSummary], start: str) -> List[str]:
        chain = [start]
        seen = {start}
        current = summaries.get(start)
        while (
            current is not None
            and not current.rng_source
            and current.rng_via is not None
            and current.rng_via not in seen
        ):
            chain.append(current.rng_via)
            seen.add(current.rng_via)
            current = summaries.get(current.rng_via)
        return chain


# ----------------------------------------------------------------------
# DT101 — DT001 with the tracer extended through resolved calls
# ----------------------------------------------------------------------
class InterprocDtypeGeometryRule(DtypeGeometryRule, ProgramRule):
    rule_id = "DT101"
    contract = (
        "Defense geometry accumulates in float64 even through helpers: "
        "DT001's tracer extended with call-return dtypes from the "
        "whole-program summaries (a float64-returning helper satisfies the "
        "contract; a float32-returning one cannot hide behind the call). "
        "Supersedes DT001 under --whole-program; allow[DT001] pragmas "
        "still apply."
    )

    def __init__(self) -> None:
        self._program: Optional[ProgramContext] = None

    def check_program(self, program: ProgramContext) -> Iterable[Diagnostic]:
        self._program = program
        try:
            for ctx in program.contexts:
                yield from self.check(ctx)
        finally:
            self._program = None

    def _make_tracer(self, ctx: FileContext) -> _Float64Tracer:
        if self._program is None:
            return super()._make_tracer(ctx)
        return InterprocFloat64Tracer(ctx, _summary_lookup(self._program))


# ----------------------------------------------------------------------
# MUT001-003 — mutation safety of the shm data plane
# ----------------------------------------------------------------------
class SharedViewWriteRule(ProgramRule):
    rule_id = "MUT001"
    contract = (
        "Arrays resolved from the shared-memory data plane "
        "(resolve_shared_array / attach_array_store / DatasetBroker views) "
        "are read-only: any in-place write through them races every other "
        "process attached to the segment."
    )

    def check_program(self, program: ProgramContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        lookup = _summary_lookup(program)
        for ctx in program.contexts:
            for scope in function_scopes(ctx):
                views = shared_view_names(ctx, scope, lookup)
                if not views:
                    continue
                for site in scope_mutations(ctx, scope):
                    if site.name not in views:
                        continue
                    findings.append(
                        ctx.diagnostic(
                            site.node,
                            self.rule_id,
                            f"in-place write ({site.kind}) through "
                            f"'{site.name}', a shared-memory view — shm "
                            "views are read-only; copy "
                            f"('{site.name}.copy()') before writing",
                        )
                    )
        return findings


class SharedViewEscapeRule(ProgramRule):
    rule_id = "MUT002"
    contract = (
        "A shared-memory view must not be passed to a function that writes "
        "that parameter in place (directly or through its own callees): "
        "the write lands in the published segment."
    )

    def check_program(self, program: ProgramContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        lookup = _summary_lookup(program)
        view_cache: Dict[Tuple[int, int], Set[str]] = {}
        for site in program.graph.sites:
            callee = program.graph.callee(site.call)
            if callee is None:
                continue
            summary = program.summaries.get(callee.qualname)
            if summary is None or not summary.mutates_params:
                continue
            ctx = site.ctx
            scope = ctx.enclosing_function(site.call) or ctx.tree
            key = (id(ctx), id(scope))
            if key not in view_cache:
                view_cache[key] = shared_view_names(ctx, scope, lookup)
            views = view_cache[key]
            if not views:
                continue
            for arg_expr, index in mutated_argument_exprs(site.call, callee, summary):
                if not isinstance(arg_expr, ast.Name) or arg_expr.id not in views:
                    continue
                param = (
                    callee.params[index]
                    if index < len(callee.params)
                    else f"#{index}"
                )
                via = summary.mutates_via.get(index)
                detail = f" (via {via})" if via else ""
                findings.append(
                    ctx.diagnostic(
                        site.call,
                        self.rule_id,
                        f"shared-memory view '{arg_expr.id}' passed to "
                        f"{callee.qualname}, which writes parameter "
                        f"'{param}' in place{detail} — pass a copy or make "
                        "the callee non-mutating",
                    )
                )
        return findings


class KernelInputMutationRule(ProgramRule):
    rule_id = "MUT003"
    contract = (
        "Registered fan-out/trace kernels run against shm-attached inputs "
        "in worker processes: a kernel that writes its own parameters in "
        "place (out/out_* output buffers excepted) mutates the published "
        "segment under every process attached to it."
    )

    def check_program(self, program: ProgramContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        reported: Set[str] = set()
        for info, kind in self._registered_kernels(program):
            if info.qualname in reported:
                continue
            reported.add(info.qualname)
            summary = program.summaries.get(info.qualname)
            if summary is None or not summary.mutates_params:
                continue
            findings.extend(self._kernel_findings(info, summary, kind))
        return findings

    def _registered_kernels(
        self, program: ProgramContext
    ) -> Iterator[Tuple[FunctionInfo, str]]:
        for ctx in program.contexts:
            for node in ctx.nodes(ast.Call):
                if not isinstance(node, ast.Call):
                    continue
                if rules_fanout._is_register_call(ctx, node):
                    _, fn_expr = rules_fanout._register_args(node)
                    info = self._resolve_fn(program, ctx, fn_expr)
                    if info is not None:
                        yield info, "fan-out"
                elif rules_trace._is_register_call(ctx, node):
                    for expr in rules_trace._register_kernel_exprs(node):
                        info = self._resolve_fn(program, ctx, expr)
                        if info is not None:
                            yield info, "trace"

    @staticmethod
    def _resolve_fn(
        program: ProgramContext, ctx: FileContext, expr: Optional[ast.AST]
    ) -> Optional[FunctionInfo]:
        if expr is None:
            return None
        qualname = ctx.qualname(expr)
        if qualname is None:
            return None
        info = program.index.resolve(qualname)
        if info is None and ctx.module is not None:
            info = program.index.resolve(f"{ctx.module}.{qualname}")
        return info

    def _kernel_findings(
        self, info: FunctionInfo, summary: FunctionSummary, kind: str
    ) -> Iterator[Diagnostic]:
        for index in sorted(summary.mutates_params):
            if index >= len(info.params):
                continue
            param = info.params[index]
            if param == "out" or param.startswith("out_"):
                continue  # designated output buffers are the kernel contract
            direct: Tuple[MutationSite, ...] = summary.mutated_params.get(index, ())
            if direct:
                for site in direct:
                    yield info.ctx.diagnostic(
                        site.node,
                        self.rule_id,
                        f"registered {kind} kernel '{info.qualname}' writes "
                        f"its input parameter '{param}' in place "
                        f"({site.kind}) — kernel inputs may be shm views "
                        "shared across worker processes; copy before "
                        "writing",
                    )
            else:
                via = summary.mutates_via.get(index, "a callee")
                yield info.ctx.diagnostic(
                    info.node,
                    self.rule_id,
                    f"registered {kind} kernel '{info.qualname}' mutates "
                    f"its input parameter '{param}' via {via} — kernel "
                    "inputs may be shm views shared across worker "
                    "processes; copy before passing them on",
                )


PROGRAM_RULES = (
    RngTaintRule,
    InterprocDtypeGeometryRule,
    SharedViewWriteRule,
    SharedViewEscapeRule,
    KernelInputMutationRule,
)
