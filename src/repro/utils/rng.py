"""Deterministic random-number-generator management.

All stochastic components of the library accept explicit
:class:`numpy.random.Generator` instances; this module provides helpers to
derive independent generators from a single experiment seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["spawn_rngs"]


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed."""
    if count < 1:
        raise ValueError("count must be at least 1")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
