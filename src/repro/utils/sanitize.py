"""Sealed-array write sanitizer: runtime cross-check of MUT001-003.

The whole-program mutation rules (``repro lint --whole-program``) prove
statically that nothing writes through a shared-memory view.  This module
is the runtime backstop for whatever slips past a static over-
approximation (ctypes pokes, ``np.ndarray`` re-wraps of the raw buffer,
third-party code):

* :func:`seal` marks a view non-writeable — always on, it costs one flag
  write and turns any in-place store through the view into an immediate
  ``ValueError`` at the write site;
* under ``REPRO_SANITIZE=1`` the shared stores additionally record a
  BLAKE2b digest of every published array at creation and re-verify it at
  release (``SharedArrayStore.close`` / lease release), so a write that
  bypassed the sealed flag still trips loudly — as
  :class:`SealedArrayViolation`, naming the mutated array — instead of
  silently skewing science in every attached process.

Tier-1 fixtures and the CI grid/chaos smokes run with ``REPRO_SANITIZE=1``
so the whole suite doubles as a mutation-free certificate of the shm data
plane.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

__all__ = [
    "ENV_VAR",
    "SealedArrayViolation",
    "array_digest",
    "sanitize_enabled",
    "seal",
]

#: Environment switch for digest re-verification (sealing itself is free
#: and unconditional).  Truthy values: anything but ""/"0"/"false"/"off".
ENV_VAR = "REPRO_SANITIZE"


class SealedArrayViolation(RuntimeError):
    """A published shared array was mutated while leased out.

    Raised at release time when a BLAKE2b re-verification under
    ``REPRO_SANITIZE=1`` does not match the digest recorded at publish
    time.  The static face of the same bug is a MUT001-003 finding.
    """


def sanitize_enabled() -> bool:
    """Whether digest re-verification is armed (checked per call, so tests
    can flip the environment without re-importing)."""
    value = os.environ.get(ENV_VAR, "")
    return value.strip().lower() not in ("", "0", "false", "off")


def seal(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only in place and return it."""
    array.flags.writeable = False
    return array


def array_digest(array: np.ndarray) -> str:
    """BLAKE2b content digest of an array (dtype + shape + bytes)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(array.shape).encode("ascii"))
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()
