"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table (benchmarks print these).

    Numeric cells are formatted with two decimals; ``None`` renders as "N/A"
    (used for DPR under defenses where it is undefined).
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if cell is None:
                rendered.append("N/A")
            elif isinstance(cell, float):
                rendered.append(f"{cell:.2f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = [render_line([str(h) for h in headers]), separator]
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
