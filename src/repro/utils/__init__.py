"""Small shared utilities: RNG handling and plain-text result tables."""

from .rng import spawn_rngs
from .tables import format_table

__all__ = ["spawn_rngs", "format_table"]
