"""Small shared utilities: RNG handling, result tables, array sealing."""

from .rng import spawn_rngs
from .sanitize import SealedArrayViolation, array_digest, sanitize_enabled, seal
from .tables import format_table

__all__ = [
    "SealedArrayViolation",
    "array_digest",
    "format_table",
    "sanitize_enabled",
    "seal",
    "spawn_rngs",
]
