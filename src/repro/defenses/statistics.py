"""Coordinate-wise statistical defenses: Median and Trimmed mean (Yin et al., 2018).

These defenses compute per-parameter statistics across all submitted updates
and therefore do not accept or reject whole updates — the paper's defense
pass rate (DPR) is undefined for them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..fl.aggregation import stack_updates
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense

__all__ = ["Median", "TrimmedMean"]


class Median(Defense):
    """Coordinate-wise median of all submitted updates."""

    name = "median"
    selects_updates = False

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        return AggregationResult(new_params=np.median(matrix, axis=0), accepted_client_ids=None)


class TrimmedMean(Defense):
    """Coordinate-wise trimmed mean (TRmean).

    For every parameter, the ``trim_ratio`` largest and smallest values are
    discarded before averaging.  The default trims ``f`` values on each side,
    where ``f`` is the expected number of malicious updates.
    """

    name = "trmean"
    selects_updates = False

    def __init__(self, trim_ratio: float | None = None) -> None:
        if trim_ratio is not None and not 0.0 <= trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5)")
        self.trim_ratio = trim_ratio

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        n = matrix.shape[0]
        if self.trim_ratio is not None:
            trim = int(np.floor(self.trim_ratio * n))
        else:
            trim = int(context.expected_num_malicious)
        trim = int(np.clip(trim, 0, (n - 1) // 2))
        if trim == 0:
            return AggregationResult(new_params=matrix.mean(axis=0), accepted_client_ids=None)
        ordered = np.sort(matrix, axis=0)
        trimmed = ordered[trim : n - trim]
        return AggregationResult(new_params=trimmed.mean(axis=0), accepted_client_ids=None)
