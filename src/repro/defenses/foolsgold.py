"""FoolsGold Sybil defense (Fung et al., RAID 2020).

FoolsGold down-weights groups of clients that submit suspiciously similar
updates (as Sybils controlled by one adversary do), based on the pairwise
cosine similarity of their historical aggregated updates.  It is included
because the paper's related-work section discusses it as the canonical Sybil
defense; the main evaluation uses mKrum, Bulyan, Median and Trimmed mean.

The similarity matrix comes from the shared defense distance plane
(:mod:`repro.defenses.distances`): rows are normalized once in float64 and
the Gram product runs per row block, routed inline or across a pooled
backend by the context's dispatch policy exactly like the Krum-family
distance matrices.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..fl.aggregation import stack_updates
from ..fl.dispatch_policy import dispatch_for
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense
from .distances import pairwise_cosine_similarities

__all__ = ["FoolsGold", "pardoned_similarities"]


def pardoned_similarities(similarity: np.ndarray) -> np.ndarray:
    """Apply FoolsGold's pardoning rescale to a cosine-similarity matrix.

    The original algorithm pardons honest clients that merely *happen* to
    align with a Sybil cluster: whenever client ``j``'s maximum similarity
    exceeds client ``i``'s, the entry ``cs_ij`` is rescaled by
    ``maxcs_i / maxcs_j < 1``, so only clients that are each other's
    *mutual* best matches keep a high similarity.  The diagonal is zeroed
    (the original implementation subtracts the identity), which also floors
    every ``maxcs`` at 0 and keeps the rescale a pure shrink.
    """
    cs = np.array(similarity, dtype=np.float64, copy=True)
    if cs.ndim != 2 or cs.shape[0] != cs.shape[1]:
        raise ValueError("similarity must be a square (n, n) matrix")
    np.fill_diagonal(cs, 0.0)
    maxcs = cs.max(axis=1)
    apply = maxcs[None, :] > maxcs[:, None]  # implies maxcs[j] > 0
    ratio = np.divide(
        np.broadcast_to(maxcs[:, None], cs.shape),
        np.broadcast_to(maxcs[None, :], cs.shape),
        out=np.ones_like(cs),
        where=apply,
    )
    return np.where(apply, cs * ratio, cs)


class FoolsGold(Defense):
    """Cosine-similarity based re-weighting of client contributions.

    The defense keeps a running sum of each client's submitted updates
    (relative to the global model) across rounds and computes the maximum
    pairwise cosine similarity per client; highly similar clients receive
    exponentially reduced aggregation weights, after the pardoning rescale
    protects honest clients that merely align with a Sybil cluster.
    """

    name = "foolsgold"
    selects_updates = False

    def __init__(self, epsilon: float = 1e-5) -> None:
        self.epsilon = epsilon
        self._history: Dict[int, np.ndarray] = {}

    def reset(self) -> None:
        """Clear the accumulated per-client update history."""
        self._history.clear()

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        deltas = matrix - context.global_params[None, :]

        # Update per-client aggregate history.
        for update, delta in zip(updates, deltas):
            previous = self._history.get(update.client_id)
            self._history[update.client_id] = delta if previous is None else previous + delta

        histories = np.stack([self._history[update.client_id] for update in updates], axis=0)
        similarity = pairwise_cosine_similarities(
            histories, epsilon=self.epsilon, dispatch=dispatch_for(context)
        )
        # Pardoning rescale (cs_ij *= maxcs_i / maxcs_j when maxcs_j is the
        # larger), then the per-client maximum drives the re-weighting.
        pardoned = pardoned_similarities(similarity)
        np.fill_diagonal(pardoned, -np.inf)
        max_similarity = pardoned.max(axis=1)

        # Logit re-weighting from the original algorithm.
        weights = 1.0 - np.clip(max_similarity, 0.0, 1.0)
        weights = weights / (weights.max() + self.epsilon)
        weights = np.clip(weights, self.epsilon, 1.0 - self.epsilon)
        weights = np.log(weights / (1.0 - weights)) + 0.5
        weights = np.clip(weights, 0.0, 1.0)
        if weights.sum() <= 0:
            weights = np.ones_like(weights)
        weights = weights / weights.sum()

        aggregated = context.global_params + (weights[:, None] * deltas).sum(axis=0)
        return AggregationResult(
            new_params=aggregated,
            accepted_client_ids=None,
            scores={u.client_id: float(w) for u, w in zip(updates, weights)},
        )
