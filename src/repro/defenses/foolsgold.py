"""FoolsGold Sybil defense (Fung et al., RAID 2020).

FoolsGold down-weights groups of clients that submit suspiciously similar
updates (as Sybils controlled by one adversary do), based on the pairwise
cosine similarity of their historical aggregated updates.  It is included
because the paper's related-work section discusses it as the canonical Sybil
defense; the main evaluation uses mKrum, Bulyan, Median and Trimmed mean.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..fl.aggregation import stack_updates
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense

__all__ = ["FoolsGold"]


class FoolsGold(Defense):
    """Cosine-similarity based re-weighting of client contributions.

    The defense keeps a running sum of each client's submitted updates
    (relative to the global model) across rounds and computes the maximum
    pairwise cosine similarity per client; highly similar clients receive
    exponentially reduced aggregation weights.
    """

    name = "foolsgold"
    selects_updates = False

    def __init__(self, epsilon: float = 1e-5) -> None:
        self.epsilon = epsilon
        self._history: Dict[int, np.ndarray] = {}

    def reset(self) -> None:
        """Clear the accumulated per-client update history."""
        self._history.clear()

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        deltas = matrix - context.global_params[None, :]

        # Update per-client aggregate history.
        for update, delta in zip(updates, deltas):
            previous = self._history.get(update.client_id)
            self._history[update.client_id] = delta if previous is None else previous + delta

        histories = np.stack([self._history[update.client_id] for update in updates], axis=0)
        norms = np.linalg.norm(histories, axis=1, keepdims=True) + self.epsilon
        normalized = histories / norms
        similarity = normalized @ normalized.T
        np.fill_diagonal(similarity, -np.inf)
        max_similarity = similarity.max(axis=1)

        # Pardoning and logit re-weighting from the original algorithm.
        weights = 1.0 - np.clip(max_similarity, 0.0, 1.0)
        weights = weights / (weights.max() + self.epsilon)
        weights = np.clip(weights, self.epsilon, 1.0 - self.epsilon)
        weights = np.log(weights / (1.0 - weights)) + 0.5
        weights = np.clip(weights, 0.0, 1.0)
        if weights.sum() <= 0:
            weights = np.ones_like(weights)
        weights = weights / weights.sum()

        aggregated = context.global_params + (weights[:, None] * deltas).sum(axis=0)
        return AggregationResult(
            new_params=aggregated,
            accepted_client_ids=None,
            scores={u.client_id: float(w) for u, w in zip(updates, weights)},
        )
