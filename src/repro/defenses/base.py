"""Defense interface for robust server-side aggregation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

from ..fl.aggregation import fedavg
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate

__all__ = ["Defense", "NoDefense"]


class Defense(ABC):
    """Base class of all server-side aggregation rules.

    Attributes
    ----------
    name:
        Identifier used by the registry and the result tables.
    selects_updates:
        ``True`` if the rule accepts/rejects whole updates, in which case
        the defense pass rate (DPR, Eq. 5) is well defined.  Statistical
        rules such as Median and Trimmed mean set this to ``False``.

    Defenses with per-update or per-row-block hot paths should not probe
    ``context.executor`` capabilities themselves: they hand the work to
    :meth:`repro.fl.dispatch_policy.DispatchPolicy.fanout` (via
    :func:`repro.fl.dispatch_policy.dispatch_for`), which owns backend
    selection, shared-memory publication and the serial fallback.
    """

    name: str = "defense"
    selects_updates: bool = False
    requires_reference_dataset: bool = False
    """True for defenses that need a server-side reference dataset (REFD)."""

    @abstractmethod
    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        """Combine the submitted updates into new global parameters."""

    def _validate(self, updates: Sequence[ModelUpdate]) -> None:
        if not updates:
            raise ValueError(f"{self.name}: received no updates to aggregate")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NoDefense(Defense):
    """Plain FedAvg (Eq. 2): the undefended baseline of the paper."""

    name = "fedavg"
    selects_updates = False

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        return AggregationResult(new_params=fedavg(updates), accepted_client_ids=None)
