"""Norm-clipping defense (norm bounding).

A widely deployed production defense (discussed by Shejwalkar et al., S&P'22,
which the paper cites in its threat-model discussion): every client's update
delta is rescaled so that its L2 norm does not exceed a bound before FedAvg
aggregation.  Included as an additional comparison point beyond the paper's
four main defenses.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense

__all__ = ["NormClipping"]


class NormClipping(Defense):
    """Clip each update's deviation from the global model to a norm bound.

    Parameters
    ----------
    clip_norm:
        Fixed L2 bound for the per-client delta ``w_i - w(t)``.  If ``None``,
        the bound is set adaptively to the median delta norm of the round,
        which requires no tuning and adapts to the training phase.
    """

    name = "norm-clipping"
    selects_updates = False

    def __init__(self, clip_norm: Optional[float] = None) -> None:
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        self.clip_norm = clip_norm

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        global_params = np.asarray(context.global_params, dtype=np.float64)
        deltas = np.stack([update.parameters - global_params for update in updates])
        norms = np.linalg.norm(deltas, axis=1)
        bound = self.clip_norm if self.clip_norm is not None else float(np.median(norms))
        if bound <= 0:
            bound = 1e-12
        scales = np.minimum(1.0, bound / np.maximum(norms, 1e-12))
        clipped = deltas * scales[:, None]

        weights = np.array([update.num_samples for update in updates], dtype=np.float64)
        weights = weights / weights.sum()
        aggregated_delta = (weights[:, None] * clipped).sum(axis=0)
        return AggregationResult(
            new_params=global_params + aggregated_delta,
            accepted_client_ids=None,
            scores={u.client_id: float(s) for u, s in zip(updates, scales)},
        )
