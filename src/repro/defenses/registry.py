"""Name-based construction of defenses, used by the experiment harness."""

from __future__ import annotations

from typing import Callable, Dict, List

from .adaptive_refd import AdaptiveRefd
from .base import Defense, NoDefense
from .bulyan import Bulyan
from .foolsgold import FoolsGold
from .krum import Krum, MultiKrum
from .norm_clipping import NormClipping
from .refd import Refd
from .statistics import Median, TrimmedMean

__all__ = ["DEFENSE_REGISTRY", "build_defense", "available_defenses"]

DEFENSE_REGISTRY: Dict[str, Callable[..., Defense]] = {
    "fedavg": NoDefense,
    "none": NoDefense,
    "krum": Krum,
    "mkrum": MultiKrum,
    "bulyan": Bulyan,
    "median": Median,
    "trmean": TrimmedMean,
    "foolsgold": FoolsGold,
    "norm-clipping": NormClipping,
    "refd": Refd,
    "adaptive-refd": AdaptiveRefd,
}


def available_defenses() -> List[str]:
    """Sorted list of registered defense names."""
    return sorted(DEFENSE_REGISTRY)


def build_defense(name: str, **kwargs) -> Defense:
    """Instantiate a defense by name, forwarding keyword arguments."""
    key = name.lower()
    if key not in DEFENSE_REGISTRY:
        raise KeyError(f"unknown defense '{name}'; choose from {available_defenses()}")
    return DEFENSE_REGISTRY[key](**kwargs)
