"""Adaptive-α variant of REFD (the paper's suggested future work).

Sec. V-A notes that the D-score weight α "can also be adaptive and learned
over epochs" but leaves this out of scope.  :class:`AdaptiveRefd` implements
a simple realisation of that idea: it tracks the dispersion of the balance
and confidence values across the updates of recent rounds and shifts α
towards whichever statistic currently separates the updates better (larger
relative spread), so that the defense automatically emphasises the balance
value when facing bias-style attacks (DFA-G, LIE) and the confidence value
when facing low-confidence attacks (DFA-R, Fang).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

import numpy as np

from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .refd import Refd, d_scores

__all__ = ["AdaptiveRefd"]


class AdaptiveRefd(Refd):
    """REFD with an α that adapts to the observed score dispersion.

    Parameters
    ----------
    adaptation_rate:
        Exponential-moving-average factor for the α update (0 disables
        adaptation and reduces the defense to plain REFD).
    min_alpha, max_alpha:
        Clamp range for α.
    """

    name = "adaptive-refd"

    def __init__(
        self,
        num_rejected: int = 2,
        adaptation_rate: float = 0.3,
        min_alpha: float = 0.25,
        max_alpha: float = 4.0,
        max_reference_samples: int | None = None,
    ) -> None:
        super().__init__(
            num_rejected=num_rejected, alpha=1.0, max_reference_samples=max_reference_samples
        )
        if not 0.0 <= adaptation_rate <= 1.0:
            raise ValueError("adaptation_rate must be in [0, 1]")
        if not 0.0 < min_alpha <= max_alpha:
            raise ValueError("need 0 < min_alpha <= max_alpha")
        self.adaptation_rate = adaptation_rate
        self.min_alpha = min_alpha
        self.max_alpha = max_alpha
        self.alpha_history: List[float] = []

    @staticmethod
    def _relative_spread(values: np.ndarray) -> float:
        mean = float(np.mean(values))
        if mean == 0.0:
            return 0.0
        return float(np.std(values) / abs(mean))

    def _adapt_alpha(self, balances: np.ndarray, confidences: np.ndarray) -> None:
        balance_spread = self._relative_spread(balances)
        confidence_spread = self._relative_spread(confidences)
        total = balance_spread + confidence_spread
        if total <= 0:
            target = 1.0
        else:
            # α > 1 emphasises the confidence value in Eq. 8 (F-beta analogy),
            # α < 1 emphasises the balance value.  Aim α at the ratio of the
            # spreads so the more discriminative statistic dominates.
            target = (confidence_spread + 1e-12) / (balance_spread + 1e-12)
            target = float(np.sqrt(target))
        target = float(np.clip(target, self.min_alpha, self.max_alpha))
        self.alpha = (1.0 - self.adaptation_rate) * self.alpha + self.adaptation_rate * target
        self.alpha = float(np.clip(self.alpha, self.min_alpha, self.max_alpha))
        self.alpha_history.append(self.alpha)

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        images, _ = self._reference_arrays(context)
        # One batched inference pass observes the statistics — the context's
        # dispatch policy routes it exactly like plain REFD (pooled backends
        # run the registered ``evaluate_update`` envelopes, serial falls
        # back to the fused loop).
        # The balance and confidence values do not depend on α, so after
        # adapting it only the D-scores need recomputing — no second pass
        # over the reference set.
        updates = list(updates)
        reports = self.score_updates(updates, images, context)
        balances = np.array([report.balance for report in reports])
        confidences = np.array([report.confidence for report in reports])
        self._adapt_alpha(balances, confidences)
        scores = d_scores(balances, confidences, self.alpha)
        reports = [
            replace(report, score=float(score))
            for report, score in zip(reports, scores)
        ]
        return self._filter_and_aggregate(updates, reports)
