"""REFD: the reference-dataset defense proposed in Section V of the paper.

For every received update, the server loads the update into a model copy and
runs inference on a small balanced reference dataset.  Two statistics are
computed from the predictions:

* the **balance value** ``B_i`` — the inverse standard deviation of the
  per-class predicted-label counts (Eq. 6), which is low for updates biased
  towards one class (DFA-G, LIE, Min-Max);
* the **confidence value** ``V_i`` — the mean maximum softmax probability
  over the reference set (Eq. 7), which is low for updates that produce
  ambiguous predictions (DFA-R, Fang).

They are combined into the F-beta-style **D-score** (Eq. 8) and the ``X``
updates with the lowest D-scores are removed before FedAvg aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fl.aggregation import fedavg
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from ..nn.serialization import set_flat_params
from .base import Defense

__all__ = ["Refd", "DScoreReport", "balance_value", "confidence_value", "d_score"]


def balance_value(class_counts: np.ndarray) -> float:
    """Balance value ``B_i`` (Eq. 6): inverse std of the predicted-label histogram."""
    class_counts = np.asarray(class_counts, dtype=np.float64)
    std = float(class_counts.std())
    if std == 0.0:
        return 1.0
    return 1.0 / std


def confidence_value(probabilities: np.ndarray) -> float:
    """Confidence value ``V_i`` (Eq. 7): mean maximum class probability."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be a (num_samples, num_classes) matrix")
    return float(probabilities.max(axis=1).mean())


def d_score(balance: float, confidence: float, alpha: float = 1.0) -> float:
    """D-score (Eq. 8): F-beta style combination of balance and confidence."""
    denominator = alpha ** 2 * balance + confidence
    if denominator <= 0.0:
        return 0.0
    return (1.0 + alpha ** 2) * balance * confidence / denominator


@dataclass
class DScoreReport:
    """Per-update diagnostic emitted by :class:`Refd` for analysis / tests."""

    client_id: int
    balance: float
    confidence: float
    score: float


class Refd(Defense):
    """Reference-dataset defense with D-score filtering.

    Parameters
    ----------
    num_rejected:
        ``X`` in the paper: how many of the lowest-scoring updates to drop
        per round (the paper uses ``X = 2`` for 20% attackers and 10
        selected clients).
    alpha:
        Weighting between balance and confidence value; the paper uses 1.
    max_reference_samples:
        Optional cap on the number of reference samples used per round to
        bound the inference cost (Sec. V-C overhead analysis).
    """

    name = "refd"
    selects_updates = True
    requires_reference_dataset = True

    def __init__(
        self,
        num_rejected: int = 2,
        alpha: float = 1.0,
        max_reference_samples: Optional[int] = None,
    ) -> None:
        if num_rejected < 0:
            raise ValueError("num_rejected must be non-negative")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.num_rejected = num_rejected
        self.alpha = alpha
        self.max_reference_samples = max_reference_samples
        self.last_reports: List[DScoreReport] = []

    # ------------------------------------------------------------------
    def _reference_arrays(self, context: DefenseContext) -> Tuple[np.ndarray, np.ndarray]:
        if context.reference_dataset is None:
            raise ValueError("REFD requires a reference dataset on the server")
        images, labels = context.reference_dataset.arrays()
        if self.max_reference_samples is not None and len(labels) > self.max_reference_samples:
            # Deterministic, class-stratified truncation keeps the reference
            # set balanced, which Eq. 6 relies on.
            order = np.argsort(labels, kind="stable")
            stride = len(labels) / self.max_reference_samples
            chosen = order[(np.arange(self.max_reference_samples) * stride).astype(int)]
            images, labels = images[chosen], labels[chosen]
        return images, labels

    def score_update(
        self, update: ModelUpdate, images: np.ndarray, context: DefenseContext
    ) -> DScoreReport:
        """Compute the D-score report of one update on the reference images."""
        if context.model_factory is None:
            raise ValueError("REFD requires a model factory to evaluate updates")
        from ..fl.training import predict_proba  # local import to avoid cycles

        model = context.model_factory()
        set_flat_params(model, update.parameters)
        probabilities = predict_proba(model, images)
        num_classes = probabilities.shape[1]
        predicted = probabilities.argmax(axis=1)
        counts = np.bincount(predicted, minlength=num_classes)
        balance = balance_value(counts)
        confidence = confidence_value(probabilities)
        return DScoreReport(
            client_id=update.client_id,
            balance=balance,
            confidence=confidence,
            score=d_score(balance, confidence, self.alpha),
        )

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        images, _ = self._reference_arrays(context)
        reports = [self.score_update(update, images, context) for update in updates]
        self.last_reports = reports

        num_rejected = min(self.num_rejected, len(updates) - 1)
        order = np.argsort([report.score for report in reports])
        rejected = set(int(i) for i in order[:num_rejected])
        accepted_updates = [u for i, u in enumerate(updates) if i not in rejected]
        accepted_ids = [u.client_id for u in accepted_updates]
        return AggregationResult(
            new_params=fedavg(accepted_updates),
            accepted_client_ids=accepted_ids,
            scores={report.client_id: report.score for report in reports},
        )
