"""REFD: the reference-dataset defense proposed in Section V of the paper.

For every received update, the server loads the update into a model copy and
runs inference on a small balanced reference dataset.  Two statistics are
computed from the predictions:

* the **balance value** ``B_i`` — the inverse standard deviation of the
  per-class predicted-label counts (Eq. 6), which is low for updates biased
  towards one class (DFA-G, LIE, Min-Max);
* the **confidence value** ``V_i`` — the mean maximum softmax probability
  over the reference set (Eq. 7), which is low for updates that produce
  ambiguous predictions (DFA-R, Fang).

They are combined into the F-beta-style **D-score** (Eq. 8) and the ``X``
updates with the lowest D-scores are removed before FedAvg aggregation.

Scoring is *batched*: one fused loop drives all candidate models through the
reference set, reusing a single model instance and one preallocated
probability buffer, and the balance/confidence/D-score statistics are then
computed vectorized over the update axis.  When the round runs on a pooled
executor, the per-update inference fans out across it instead:
:func:`evaluate_update` is registered in the executor's named fan-out
registry (:data:`EVALUATE_UPDATE_FANOUT`), so thread pools call it directly
and *process* pools ship picklable envelopes — with the reference images
read from the simulation's shared-memory shard store rather than pickled
per update (see :meth:`Refd.score_updates`).  :class:`AdaptiveRefd` rides
the same path: it scores through :meth:`Refd.score_updates` and only
recombines the observed statistics after adapting α.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fl.aggregation import fedavg
from ..fl.dispatch_policy import dispatch_for
from ..fl.executor import (
    SharedArrayRef,
    register_fanout_fn,
    resolve_shared_array,
)
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from ..nn.serialization import set_flat_params
from .base import Defense

__all__ = [
    "Refd",
    "DScoreReport",
    "balance_value",
    "balance_values",
    "max_balance_value",
    "confidence_value",
    "confidence_values",
    "d_score",
    "d_scores",
    "evaluate_update",
    "EVALUATE_UPDATE_FANOUT",
]


def max_balance_value(num_classes: int) -> float:
    """Supremum of the *finite* balance values attainable over ``num_classes``.

    Integer prediction histograms that are not perfectly balanced deviate
    from their mean by at least ``(+1, -1, 0, …)`` (the deviations sum to
    zero), so their std is at least ``sqrt(2 / C)`` and their balance value
    ``1/std`` at most ``sqrt(C / 2)``.  A zero-std (perfectly balanced)
    histogram is mapped to exactly this bound, which keeps Eq. 6's ranking
    intact: perfect balance can never score *below* any imbalanced
    histogram.
    """
    return float(np.sqrt(num_classes / 2.0))


def balance_values(class_counts: np.ndarray) -> np.ndarray:
    """Balance values ``B_i`` (Eq. 6) for a ``(num_updates, num_classes)`` batch.

    The inverse std diverges as the histogram approaches perfect balance,
    so the zero-std case is mapped to :func:`max_balance_value` — the
    supremum of the finite values — rather than an arbitrary sentinel.
    (An earlier revision used ``1.0``, which ranked perfectly balanced
    updates *below* mildly imbalanced ones with ``std < 1`` and could flip
    which clients REFD rejects.)
    """
    class_counts = np.asarray(class_counts, dtype=np.float64)
    stds = class_counts.std(axis=-1)
    balances = np.full_like(stds, max_balance_value(class_counts.shape[-1]))
    nonzero = stds != 0.0
    balances[nonzero] = 1.0 / stds[nonzero]
    return balances


def balance_value(class_counts: np.ndarray) -> float:
    """Balance value ``B_i`` (Eq. 6): inverse std of the predicted-label histogram."""
    return float(balance_values(np.asarray(class_counts)[None, :])[0])


def confidence_values(max_probabilities: np.ndarray) -> np.ndarray:
    """Confidence values ``V_i`` (Eq. 7) from a ``(num_updates, num_samples)``
    matrix of per-sample maximum class probabilities."""
    return np.asarray(max_probabilities, dtype=np.float64).mean(axis=-1)


def confidence_value(probabilities: np.ndarray) -> float:
    """Confidence value ``V_i`` (Eq. 7): mean maximum class probability."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be a (num_samples, num_classes) matrix")
    return float(probabilities.max(axis=1).mean())


def d_scores(
    balances: np.ndarray, confidences: np.ndarray, alpha: float = 1.0
) -> np.ndarray:
    """D-scores (Eq. 8), vectorized over the update axis."""
    balances = np.asarray(balances, dtype=np.float64)
    confidences = np.asarray(confidences, dtype=np.float64)
    denominator = alpha ** 2 * balances + confidences
    scores = np.zeros_like(denominator)
    valid = denominator > 0.0
    scores[valid] = (
        (1.0 + alpha ** 2) * balances[valid] * confidences[valid] / denominator[valid]
    )
    return scores


def d_score(balance: float, confidence: float, alpha: float = 1.0) -> float:
    """D-score (Eq. 8): F-beta style combination of balance and confidence."""
    return float(d_scores(np.asarray([balance]), np.asarray([confidence]), alpha)[0])


@dataclass
class DScoreReport:
    """Per-update diagnostic emitted by :class:`Refd` for analysis / tests."""

    client_id: int
    balance: float
    confidence: float
    score: float


#: Registered fan-out name of :func:`evaluate_update`; the ``module:label``
#: form lets worker processes resolve it by importing this module on demand.
EVALUATE_UPDATE_FANOUT = "repro.defenses.refd:evaluate_update"


def evaluate_update(payload) -> Tuple[np.ndarray, np.ndarray, int]:
    """One update's reference-set inference, as a registered fan-out unit.

    ``payload`` is ``(model_factory, parameters, images)``, every element
    picklable; ``images`` is either an inline array or a
    :class:`~repro.fl.executor.SharedArrayRef` into the simulation's shard
    store, so process-pool fan-out ships only the update's parameter vector
    per work item.  Returns ``(argmax, max_prob, num_classes)`` over the
    reference samples.
    """
    from ..fl.training import predict_proba  # local import to avoid cycles

    model_factory, parameters, images = payload
    if isinstance(images, SharedArrayRef):
        images = resolve_shared_array(images)
    model = model_factory()
    set_flat_params(model, parameters)
    probs = predict_proba(model, images)
    return probs.argmax(axis=1), probs.max(axis=1), probs.shape[1]


register_fanout_fn(EVALUATE_UPDATE_FANOUT, evaluate_update)


class Refd(Defense):
    """Reference-dataset defense with D-score filtering.

    Parameters
    ----------
    num_rejected:
        ``X`` in the paper: how many of the lowest-scoring updates to drop
        per round (the paper uses ``X = 2`` for 20% attackers and 10
        selected clients).
    alpha:
        Weighting between balance and confidence value; the paper uses 1.
    max_reference_samples:
        Optional cap on the number of reference samples used per round to
        bound the inference cost (Sec. V-C overhead analysis).
    """

    name = "refd"
    selects_updates = True
    requires_reference_dataset = True

    def __init__(
        self,
        num_rejected: int = 2,
        alpha: float = 1.0,
        max_reference_samples: Optional[int] = None,
    ) -> None:
        if num_rejected < 0:
            raise ValueError("num_rejected must be non-negative")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.num_rejected = num_rejected
        self.alpha = alpha
        self.max_reference_samples = max_reference_samples
        self.last_reports: List[DScoreReport] = []

    # ------------------------------------------------------------------
    def _reference_arrays(self, context: DefenseContext) -> Tuple[np.ndarray, np.ndarray]:
        if context.reference_dataset is None:
            raise ValueError("REFD requires a reference dataset on the server")
        images, labels = context.reference_dataset.arrays()
        if self.max_reference_samples is not None and len(labels) > self.max_reference_samples:
            # Deterministic, class-stratified truncation keeps the reference
            # set balanced, which Eq. 6 relies on.
            order = np.argsort(labels, kind="stable")
            stride = len(labels) / self.max_reference_samples
            chosen = order[(np.arange(self.max_reference_samples) * stride).astype(int)]
            images, labels = images[chosen], labels[chosen]
        return images, labels

    # ------------------------------------------------------------------
    def _evaluate_batched(
        self,
        updates: Sequence[ModelUpdate],
        images: np.ndarray,
        context: DefenseContext,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Reference-set predictions of every update through one fused loop.

        Returns ``(predicted, max_probs, num_classes)`` where ``predicted``
        is the ``(num_updates, num_samples)`` argmax matrix and ``max_probs``
        the matching maximum-probability matrix.  One model instance and one
        probability buffer are reused across all updates; when the context's
        dispatch policy routes the ``"refd"`` site to a pooled backend, the
        per-update inference runs through :func:`evaluate_update` on that
        pool instead — threads call it directly, the process backend ships
        registry envelopes whose ``images`` element is the shared-memory
        reference ref when the simulation published one
        (``context.reference_ref``, used only when its shape matches
        ``images``, i.e. no ``max_reference_samples`` truncation happened),
        so each work item pickles just one parameter vector.  All capability
        gating lives in :meth:`DispatchPolicy.fanout
        <repro.fl.dispatch_policy.DispatchPolicy.fanout>`: a pickling
        backend without the by-reference hand-off falls back here (``rows is
        None``) and the fused serial loop runs — inlining the reference
        tensor into every envelope would re-ship it ``num_updates`` times
        per round, which the serial loop beats.
        """
        from ..fl.training import predict_proba  # local import to avoid cycles

        dispatch = dispatch_for(context)
        if dispatch is not None and len(updates) > 1:
            images_payload: object = images
            reference_ref = getattr(context, "reference_ref", None)
            if (
                reference_ref is not None
                and tuple(reference_ref.images.shape) == images.shape
            ):
                images_payload = reference_ref.images
            payloads = [
                (context.model_factory, update.parameters, images_payload)
                for update in updates
            ]
            rows = dispatch.fanout(
                "refd",
                EVALUATE_UPDATE_FANOUT,
                payloads,
                work=float(len(updates))
                * float(np.asarray(updates[0].parameters).size),
                payload_by_ref=isinstance(images_payload, SharedArrayRef),
            )
            if rows is not None:
                predicted = np.stack([row[0] for row in rows], axis=0)
                max_probs = np.stack([row[1] for row in rows], axis=0).astype(np.float64)
                return predicted, max_probs, rows[0][2]

        model = context.model_factory()
        probs_buffer: Optional[np.ndarray] = None
        predicted: Optional[np.ndarray] = None
        max_probs: Optional[np.ndarray] = None
        num_classes = 0
        for index, update in enumerate(updates):
            set_flat_params(model, update.parameters)
            probs_buffer = predict_proba(model, images, out=probs_buffer)
            if predicted is None:
                num_classes = probs_buffer.shape[1]
                predicted = np.empty((len(updates), probs_buffer.shape[0]), dtype=np.int64)
                max_probs = np.empty((len(updates), probs_buffer.shape[0]), dtype=np.float64)
            predicted[index] = probs_buffer.argmax(axis=1)
            max_probs[index] = probs_buffer.max(axis=1)
        return predicted, max_probs, num_classes

    def score_updates(
        self,
        updates: Sequence[ModelUpdate],
        images: np.ndarray,
        context: DefenseContext,
    ) -> List[DScoreReport]:
        """Batched D-score reports for all updates on the reference images."""
        if context.model_factory is None:
            raise ValueError("REFD requires a model factory to evaluate updates")
        if not updates:
            return []
        predicted, max_probs, num_classes = self._evaluate_batched(updates, images, context)
        counts = np.zeros((len(updates), num_classes), dtype=np.int64)
        np.add.at(counts, (np.arange(len(updates))[:, None], predicted), 1)
        balances = balance_values(counts)
        confidences = confidence_values(max_probs)
        scores = d_scores(balances, confidences, self.alpha)
        return [
            DScoreReport(
                client_id=update.client_id,
                balance=float(balances[index]),
                confidence=float(confidences[index]),
                score=float(scores[index]),
            )
            for index, update in enumerate(updates)
        ]

    def score_update(
        self, update: ModelUpdate, images: np.ndarray, context: DefenseContext
    ) -> DScoreReport:
        """Compute the D-score report of one update on the reference images."""
        return self.score_updates([update], images, context)[0]

    # ------------------------------------------------------------------
    def _filter_and_aggregate(
        self, updates: Sequence[ModelUpdate], reports: List[DScoreReport]
    ) -> AggregationResult:
        """Drop the ``X`` lowest-scoring updates and FedAvg the rest."""
        self.last_reports = reports
        num_rejected = min(self.num_rejected, len(updates) - 1)
        order = np.argsort([report.score for report in reports])
        rejected = set(int(i) for i in order[:num_rejected])
        accepted_updates = [u for i, u in enumerate(updates) if i not in rejected]
        accepted_ids = [u.client_id for u in accepted_updates]
        return AggregationResult(
            new_params=fedavg(accepted_updates),
            accepted_client_ids=accepted_ids,
            scores={report.client_id: report.score for report in reports},
        )

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        images, _ = self._reference_arrays(context)
        reports = self.score_updates(list(updates), images, context)
        return self._filter_and_aggregate(list(updates), reports)
