"""Krum and Multi-Krum robust aggregation (Blanchard et al., NeurIPS 2017).

Krum scores every update by the sum of squared L2 distances to its
``n - f - 2`` nearest neighbours and keeps the update with the lowest score.
Multi-Krum (mKrum) keeps the ``m`` lowest-scoring updates and averages them,
interpolating between Krum and FedAvg.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..fl.aggregation import stack_updates, unweighted_average
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense

__all__ = ["Krum", "MultiKrum", "krum_scores"]


def krum_scores(matrix: np.ndarray, num_malicious: int) -> np.ndarray:
    """Krum score of each row of ``matrix`` (lower is more trustworthy).

    Parameters
    ----------
    matrix:
        ``(n, dim)`` matrix of flattened updates.
    num_malicious:
        The defense parameter ``f``: assumed number of malicious updates.
    """
    n = matrix.shape[0]
    if n < 3:
        # With fewer than three updates the neighbourhood is degenerate; fall
        # back to distance-to-all scoring.
        neighbourhood = max(n - 1, 1)
    else:
        neighbourhood = max(n - num_malicious - 2, 1)
    # Pairwise squared distances via the Gram matrix.
    squared_norms = (matrix ** 2).sum(axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * matrix @ matrix.T
    np.fill_diagonal(distances, np.inf)
    distances = np.maximum(distances, 0.0)
    sorted_distances = np.sort(distances, axis=1)
    return sorted_distances[:, :neighbourhood].sum(axis=1)


class Krum(Defense):
    """Select the single update with the lowest Krum score."""

    name = "krum"
    selects_updates = True

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        scores = krum_scores(matrix, context.expected_num_malicious)
        best = int(np.argmin(scores))
        accepted = [updates[best].client_id]
        return AggregationResult(
            new_params=matrix[best].copy(),
            accepted_client_ids=accepted,
            scores={update.client_id: float(score) for update, score in zip(updates, scores)},
        )


class MultiKrum(Defense):
    """Average the ``m`` updates with the lowest Krum scores (mKrum).

    ``m`` defaults to ``n - f`` where ``f`` is the expected number of
    malicious updates in the round, matching the original paper.
    """

    name = "mkrum"
    selects_updates = True

    def __init__(self, num_selected: int | None = None) -> None:
        self.num_selected = num_selected

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        n = matrix.shape[0]
        m = self.num_selected if self.num_selected is not None else n - context.expected_num_malicious
        m = int(np.clip(m, 1, n))
        scores = krum_scores(matrix, context.expected_num_malicious)
        chosen = np.argsort(scores)[:m]
        accepted_updates = [updates[i] for i in chosen]
        return AggregationResult(
            new_params=unweighted_average(accepted_updates),
            accepted_client_ids=[update.client_id for update in accepted_updates],
            scores={update.client_id: float(score) for update, score in zip(updates, scores)},
        )
