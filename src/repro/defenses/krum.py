"""Krum and Multi-Krum robust aggregation (Blanchard et al., NeurIPS 2017).

Krum scores every update by the sum of squared L2 distances to its
``n - f - 2`` nearest neighbours and keeps the update with the lowest score.
Multi-Krum (mKrum) keeps the ``m`` lowest-scoring updates and averages them,
interpolating between Krum and FedAvg.

The pairwise geometry comes from the shared defense distance plane
(:mod:`repro.defenses.distances`): exact float64 row-block differences
instead of the old in-dtype Gram trick ``‖x‖²+‖y‖²−2x·y``, which
catastrophically cancelled for near-duplicate float32 updates
(eps32 · ‖x‖² ≫ the true inter-update distance once training converges) and
scrambled which client Krum accepts.  The context's
:class:`~repro.fl.dispatch_policy.DispatchPolicy` decides whether the
distance row blocks run inline or fan out across a pooled backend, and its
cross-round :class:`~repro.fl.dispatch_policy.DistanceCache` skips
recomputation for rows whose exact bytes were already seen.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..fl.aggregation import stack_updates, unweighted_average
from ..fl.dispatch_policy import dispatch_for
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense
from .distances import pairwise_sq_distances

__all__ = [
    "Krum",
    "MultiKrum",
    "krum_scores",
    "krum_scores_from_distances",
    "krum_neighbourhood_size",
    "iterative_krum_selection",
]


def krum_neighbourhood_size(n: int, num_malicious: int) -> int:
    """Size of the scored neighbourhood for ``n`` *current* updates.

    ``n - f - 2`` per the paper, clamped to at least one neighbour when the
    candidate set shrinks below ``f + 3`` (Bulyan's iterative selection
    slices rows off the matrix, so the neighbourhood must always be derived
    from the *remaining* ``n``, not the round's original update count).
    With fewer than three updates the Krum neighbourhood is degenerate and
    the score falls back to the distance-to-all rule.
    """
    if n < 3:
        return max(n - 1, 1)
    return max(n - num_malicious - 2, 1)


def krum_scores_from_distances(distances: np.ndarray, num_malicious: int) -> np.ndarray:
    """Krum scores given a precomputed ``(n, n)`` squared-distance matrix.

    Accumulates in float64; the diagonal is ignored regardless of its
    value, so both raw distance-plane output (zero diagonal) and already
    masked matrices are accepted.
    """
    distances = np.array(distances, dtype=np.float64, copy=True)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError("distances must be a square (n, n) matrix")
    neighbourhood = krum_neighbourhood_size(distances.shape[0], num_malicious)
    np.fill_diagonal(distances, np.inf)
    sorted_distances = np.sort(distances, axis=1)
    return sorted_distances[:, :neighbourhood].sum(axis=1)


def krum_scores(
    matrix: np.ndarray,
    num_malicious: int,
    distances: Optional[np.ndarray] = None,
    executor=None,
    dispatch=None,
) -> np.ndarray:
    """Krum score of each row of ``matrix`` (lower is more trustworthy).

    Parameters
    ----------
    matrix:
        ``(n, dim)`` matrix of flattened updates (any floating dtype; the
        distance computation accumulates in float64 regardless).
    num_malicious:
        The defense parameter ``f``: assumed number of malicious updates.
    distances:
        Optional precomputed squared-distance matrix (skips the pairwise
        computation — Bulyan's iterative selection reuses one matrix for
        every pick).
    executor:
        Optional round executor; pinned into a
        :class:`~repro.fl.dispatch_policy.DispatchPolicy` so pooled
        backends fan the distance row blocks out through the named
        registry.
    dispatch:
        Optional :class:`~repro.fl.dispatch_policy.DispatchPolicy`
        governing the distance-plane fan-out (takes precedence over
        ``executor``).
    """
    if distances is None:
        distances = pairwise_sq_distances(matrix, executor=executor, dispatch=dispatch)
    return krum_scores_from_distances(distances, num_malicious)


def iterative_krum_selection(
    distances: np.ndarray, selection_size: int, num_malicious: int
) -> List[int]:
    """Bulyan's iterative Krum selection from one precomputed distance matrix.

    Repeatedly picks the best-scoring remaining update and rescores the
    survivors by slicing the same matrix — O(θ·n²·log n) total instead of
    the O(θ·n²·dim) of recomputing the pairwise distances on every pick.
    The neighbourhood size is re-derived from the *current* remaining count
    each pick (see :func:`krum_neighbourhood_size`).
    """
    n = distances.shape[0]
    remaining = list(range(n))
    selected: List[int] = []
    while len(selected) < selection_size and remaining:
        sub = distances[np.ix_(remaining, remaining)]
        scores = krum_scores_from_distances(sub, num_malicious)
        best_local = int(np.argmin(scores))
        selected.append(remaining.pop(best_local))
    return selected


class Krum(Defense):
    """Select the single update with the lowest Krum score."""

    name = "krum"
    selects_updates = True

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        distances = pairwise_sq_distances(matrix, dispatch=dispatch_for(context))
        scores = krum_scores_from_distances(distances, context.expected_num_malicious)
        best = int(np.argmin(scores))
        accepted = [updates[best].client_id]
        return AggregationResult(
            new_params=matrix[best].copy(),
            accepted_client_ids=accepted,
            scores={update.client_id: float(score) for update, score in zip(updates, scores)},
        )


class MultiKrum(Defense):
    """Average the ``m`` updates with the lowest Krum scores (mKrum).

    ``m`` defaults to ``n - f`` where ``f`` is the expected number of
    malicious updates in the round, matching the original paper.
    """

    name = "mkrum"
    selects_updates = True

    def __init__(self, num_selected: int | None = None) -> None:
        self.num_selected = num_selected

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        n = matrix.shape[0]
        m = self.num_selected if self.num_selected is not None else n - context.expected_num_malicious
        m = int(np.clip(m, 1, n))
        distances = pairwise_sq_distances(matrix, dispatch=dispatch_for(context))
        scores = krum_scores_from_distances(distances, context.expected_num_malicious)
        chosen = np.argsort(scores)[:m]
        accepted_updates = [updates[i] for i in chosen]
        return AggregationResult(
            new_params=unweighted_average(accepted_updates),
            accepted_client_ids=[update.client_id for update in accepted_updates],
            scores={update.client_id: float(score) for update, score in zip(updates, scores)},
        )
