"""Server-side robust aggregation rules (defenses)."""

from .adaptive_refd import AdaptiveRefd
from .base import Defense, NoDefense
from .bulyan import Bulyan
from .distances import (
    COSINE_BLOCK_FANOUT,
    DISTANCE_BLOCK_FANOUT,
    pairwise_cosine_similarities,
    pairwise_sq_distances,
)
from .foolsgold import FoolsGold, pardoned_similarities
from .krum import (
    Krum,
    MultiKrum,
    iterative_krum_selection,
    krum_neighbourhood_size,
    krum_scores,
    krum_scores_from_distances,
)
from .norm_clipping import NormClipping
from .refd import DScoreReport, Refd, balance_value, confidence_value, d_score
from .registry import DEFENSE_REGISTRY, available_defenses, build_defense
from .statistics import Median, TrimmedMean

__all__ = [
    "Defense",
    "NoDefense",
    "Krum",
    "MultiKrum",
    "krum_scores",
    "krum_scores_from_distances",
    "krum_neighbourhood_size",
    "iterative_krum_selection",
    "pairwise_sq_distances",
    "pairwise_cosine_similarities",
    "pardoned_similarities",
    "DISTANCE_BLOCK_FANOUT",
    "COSINE_BLOCK_FANOUT",
    "Bulyan",
    "Median",
    "TrimmedMean",
    "FoolsGold",
    "NormClipping",
    "Refd",
    "AdaptiveRefd",
    "DScoreReport",
    "balance_value",
    "confidence_value",
    "d_score",
    "DEFENSE_REGISTRY",
    "build_defense",
    "available_defenses",
]
