"""Server-side robust aggregation rules (defenses)."""

from .adaptive_refd import AdaptiveRefd
from .base import Defense, NoDefense
from .bulyan import Bulyan
from .foolsgold import FoolsGold
from .krum import Krum, MultiKrum, krum_scores
from .norm_clipping import NormClipping
from .refd import DScoreReport, Refd, balance_value, confidence_value, d_score
from .registry import DEFENSE_REGISTRY, available_defenses, build_defense
from .statistics import Median, TrimmedMean

__all__ = [
    "Defense",
    "NoDefense",
    "Krum",
    "MultiKrum",
    "krum_scores",
    "Bulyan",
    "Median",
    "TrimmedMean",
    "FoolsGold",
    "NormClipping",
    "Refd",
    "AdaptiveRefd",
    "DScoreReport",
    "balance_value",
    "confidence_value",
    "d_score",
    "DEFENSE_REGISTRY",
    "build_defense",
    "available_defenses",
]
