"""Shared distance-matrix compute plane for the geometry-based defenses.

Krum/Multi-Krum, Bulyan and FoolsGold all reduce the round's update matrix
to a pairwise geometry — squared L2 distances for the Krum family, cosine
similarities for FoolsGold.  PR 2 moved the update pipeline to float32 flat
buffers, which silently broke the Gram-trick expansion
``‖x‖² + ‖y‖² − 2·x·y`` those modules used: for the near-duplicate benign
updates that dominate after a few converged rounds, the true squared
distance (~1e-6) sits far below the float32 rounding of the ~1e4 squared
norms (eps32 · ‖x‖² ≈ 1e-3), so the subtraction catastrophically cancels
and the neighbour ordering — hence *which client Krum accepts* — becomes
noise.

This module fixes that at the root and gives the defenses one shared
compute plane:

* :func:`pairwise_sq_distances` computes **exact row-block differences in
  float64** regardless of the input dtype: each ``(block, n)`` tile is
  ``Σ_d (x_i[d] − x_j[d])²`` accumulated in float64 over fixed-size column
  chunks, so there is no large-term cancellation at all and the result is
  bitwise independent of how rows are grouped into blocks.
* :func:`pairwise_cosine_similarities` normalizes rows in float64 once and
  computes the similarity Gram product per row block in float64 (cosine has
  no cancelling subtraction, but the float32 accumulation loses the
  near-duplicate structure FoolsGold keys on just the same).
* Row blocks route through a
  :class:`~repro.fl.dispatch_policy.DispatchPolicy` (``dispatch=``), which
  decides serial vs pooled from the benchmark-calibrated cost model — at
  the paper's 10-client scale the fan-out overhead loses to the serial
  kernel, so the policy keeps row blocks inline there.  Pooled backends
  whose fan-out pickles its work items receive the stacked matrix **once**
  (``publish``) and each envelope carries only a
  :class:`~repro.fl.executor.SharedArrayRef` plus row indices.  The legacy
  ``executor=`` argument still works and maps onto a policy pinned to that
  executor.
* When a dispatch policy is in play, its
  :class:`~repro.fl.dispatch_policy.DistanceCache` amortises the plane
  across rounds: every pair value is cached under a content hash of the
  exact row bytes, so unchanged benign-benign sub-blocks are reused
  bitwise and only rows whose bytes changed are recomputed (the fan-out
  then ships 4-tuple payloads naming the stale row subset).  Bare calls —
  no executor, no policy — stay pure serial compute with no cache.

Determinism contract
--------------------
The per-pair reduction runs over fixed ``_DIM_CHUNK`` column chunks in a
fixed order, independent of the row-block partition, so serial, thread and
process backends — and any ``block_rows`` override or cached row subset —
produce bitwise identical matrices for the same input.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..fl.dispatch_policy import DispatchPolicy
from ..fl.executor import (
    SharedArrayRef,
    register_fanout_fn,
    resolve_shared_array,
)

__all__ = [
    "DISTANCE_BLOCK_FANOUT",
    "COSINE_BLOCK_FANOUT",
    "distance_block",
    "cosine_block",
    "pairwise_sq_distances",
    "pairwise_cosine_similarities",
]

#: Columns of the update matrix reduced per float64 accumulation step.  The
#: chunk size is a fixed constant so the accumulation order — and therefore
#: the bit pattern of every distance — does not depend on the row blocking.
_DIM_CHUNK = 1 << 16

#: Upper bound on the float64 temporary built per accumulation step
#: (``rows × right_span × min(dim, _DIM_CHUNK)`` elements ≈ 32 MB): the
#: block height, and for large ``n`` the right-hand row span inside
#: :func:`_exact_distance_block`, are both derived from it.
_TARGET_BLOCK_ELEMENTS = 1 << 22

#: Preferred number of row blocks per matrix, so a pooled executor has
#: work to overlap even for the paper's 10-client rounds.
_TARGET_BLOCKS = 4

#: Registered fan-out names (``module:label`` so worker processes resolve
#: them by importing this module on demand).
DISTANCE_BLOCK_FANOUT = "repro.defenses.distances:distance_block"
COSINE_BLOCK_FANOUT = "repro.defenses.distances:cosine_block"


def _default_block_rows(n: int, dim: int) -> int:
    """Rows per block: bounded by the temp-memory budget and spread over
    ``_TARGET_BLOCKS`` blocks so pooled backends overlap; pure function of
    the matrix shape, hence identical in the parent and every worker."""
    budget = _TARGET_BLOCK_ELEMENTS // max(1, n * min(dim, _DIM_CHUNK))
    spread = -(-n // _TARGET_BLOCKS)  # ceil(n / _TARGET_BLOCKS)
    return max(1, min(max(1, budget), spread))


def _row_blocks(n: int, rows: int) -> List[Tuple[int, int]]:
    return [(start, min(start + rows, n)) for start in range(0, n, rows)]


def _exact_distance_block(block: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Squared L2 distances from ``block`` rows to every ``matrix`` row.

    Differences are formed *before* squaring and accumulated in float64
    over fixed column chunks, so near-duplicate rows keep their full
    relative precision (no ``‖x‖²+‖y‖²−2x·y`` cancellation).  When ``n``
    alone blows the temp budget (many clients per round), the right-hand
    rows are additionally tiled: each pair's reduction still runs over the
    same fixed column chunks in the same order, so the tiling never
    changes a single bit of the result.
    """
    rows = block.shape[0]
    n, dim = matrix.shape
    out = np.zeros((rows, n), dtype=np.float64)
    chunk_cols = min(dim, _DIM_CHUNK) if dim else 1
    span = max(1, _TARGET_BLOCK_ELEMENTS // max(1, rows * chunk_cols))
    for start in range(0, dim, _DIM_CHUNK):
        left = np.asarray(block[:, start : start + _DIM_CHUNK], dtype=np.float64)
        for right_start in range(0, n, span):
            right_stop = min(right_start + span, n)
            right = np.asarray(
                matrix[right_start:right_stop, start : start + _DIM_CHUNK],
                dtype=np.float64,
            )
            diff = left[:, None, :] - right[None, :, :]
            out[:, right_start:right_stop] += np.einsum("bnd,bnd->bn", diff, diff)
    return out


def _resolve_matrix(matrix) -> np.ndarray:
    if isinstance(matrix, SharedArrayRef):
        return resolve_shared_array(matrix)
    return matrix


def _payload_block(payload) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve a fan-out payload to ``(left_block, matrix)``.

    Payloads are ``(matrix, start, stop)`` for a contiguous row block of the
    full matrix, or ``(matrix, start, stop, rows)`` where ``rows`` is a
    tuple of row indices and ``start:stop`` slices *that tuple* — the form
    the distance cache uses to recompute only stale rows.  ``matrix`` is
    either the in-process array or a
    :class:`~repro.fl.executor.SharedArrayRef` into the executor's
    published store.
    """
    if len(payload) == 4:
        matrix, start, stop, rows = payload
        matrix = _resolve_matrix(matrix)
        index = np.asarray(rows[start:stop], dtype=np.intp)
        return matrix[index], matrix
    matrix, start, stop = payload
    matrix = _resolve_matrix(matrix)
    return matrix[start:stop], matrix


def distance_block(payload) -> np.ndarray:
    """One ``(rows, n)`` tile of the squared-distance matrix (fan-out unit).

    See :func:`_payload_block` for the payload forms; pure function of the
    payload, bit-identical to the serial path.
    """
    block, matrix = _payload_block(payload)
    return _exact_distance_block(block, matrix)


def cosine_block(payload) -> np.ndarray:
    """One ``(rows, n)`` tile of the cosine-similarity matrix (fan-out unit).

    The payload carries the float64 row-normalized matrix — the parent
    normalizes once, so every block is a plain float64 inner-product tile.
    The reduction runs through ``np.einsum`` (not BLAS) so each pair's
    accumulation order depends only on ``dim``, keeping the result bitwise
    independent of the row blocking — the same contract as
    :func:`distance_block`.
    """
    block, normalized = _payload_block(payload)
    # repro: allow[DT001] the payload contract ships float64 row-normalized
    # operands (asserted by the parent's cast above), invisible to the tracer
    return np.einsum("bd,nd->bn", block, normalized)


register_fanout_fn(DISTANCE_BLOCK_FANOUT, distance_block)
register_fanout_fn(COSINE_BLOCK_FANOUT, cosine_block)


def _resolve_dispatch(dispatch, executor) -> Optional[DispatchPolicy]:
    """Coerce the ``dispatch=``/legacy ``executor=`` arguments to a policy.

    ``None``/``None`` stays ``None``: bare calls run pure serial compute
    with no cache, so e.g. benchmark probes measure the raw kernels.
    """
    if dispatch is not None:
        return DispatchPolicy.coerce(dispatch)
    if executor is not None:
        return DispatchPolicy.for_executor(executor)
    return None


def _greedy_row_cover(pairs: Sequence[Tuple[int, int]]) -> List[int]:
    """Smallest practical row set covering every ``(i, j)`` pair.

    Greedy max-cover: repeatedly take the row participating in the most
    uncovered pairs (lowest index on ties).  When one row mutates, it alone
    covers all its pairs and is picked exactly; on a cold matrix every row
    is picked, in order.  Recomputing a covering row refreshes whole
    ``(row, ·)`` stripes, which is exactly the granularity the block
    kernels produce anyway.
    """
    uncovered = set(pairs)
    need: List[int] = []
    while uncovered:
        counts: Counter = Counter()
        # repro: allow[ORD002] Counter increments commute; the min() below
        # tie-breaks on row index, so the pick is order-independent
        for i, j in uncovered:
            counts[i] += 1
            if j != i:
                counts[j] += 1
        row = min(counts, key=lambda r: (-counts[r], r))
        need.append(row)
        # repro: allow[ORD002] set-to-set filter: membership only, no
        # iteration order reaches the (sorted) result
        uncovered = {pair for pair in uncovered if row not in pair}
    return sorted(need)


def _fanout_tiles(
    dispatch: DispatchPolicy,
    name: str,
    kernel: Callable,
    matrix: np.ndarray,
    n: int,
    dim: int,
    rows_per_block: int,
    subset: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Row-block tiles via ``dispatch.fanout`` (site ``"distance"``).

    The policy handles all backend gating: serial decisions (and capability
    fallbacks) run ``kernel`` in-process; pickling backends get the matrix
    published once and payloads rebuilt over the shared ref.
    """
    row_count = n if subset is None else len(subset)
    blocks = _row_blocks(row_count, rows_per_block)
    if subset is None:
        def build(payload_matrix):
            return [(payload_matrix, start, stop) for start, stop in blocks]
    else:
        rows = tuple(int(row) for row in subset)

        def build(payload_matrix):
            return [(payload_matrix, start, stop, rows) for start, stop in blocks]

    tiles = dispatch.fanout(
        "distance",
        name,
        build(matrix),
        work=float(row_count) * float(n) * float(max(1, dim)),
        kernel=kernel,
        payload_by_ref=False,
        publish={"matrix": matrix},
        payloads_from_refs=lambda refs: build(refs["matrix"]),
    )
    return np.concatenate(tiles, axis=0)


def _pairwise_matrix(
    dispatch: Optional[DispatchPolicy],
    namespace: tuple,
    name: str,
    kernel: Callable,
    source: np.ndarray,
    n: int,
    dim: int,
    rows_per_block: int,
) -> np.ndarray:
    """Assemble the full ``(n, n)`` matrix, through the cache when one exists.

    Cached assembly is bitwise-exact: values are keyed by row content
    digests, computed values come from the same blocking-invariant kernels,
    and the symmetric fill relies on the kernels' exact symmetry
    (``(a−b)²`` and ``a·b`` are IEEE-symmetric, and the accumulation order
    per pair is fixed by ``_DIM_CHUNK``).
    """
    if dispatch is None:
        blocks = _row_blocks(n, rows_per_block)
        tiles = [kernel((source, start, stop)) for start, stop in blocks]
        return np.concatenate(tiles, axis=0)
    cache = getattr(dispatch, "distance_cache", None)
    if cache is None:
        return _fanout_tiles(dispatch, name, kernel, source, n, dim, rows_per_block)
    digests = cache.row_digests(source)
    out = np.empty((n, n), dtype=np.float64)
    unknown: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(i, n):
            value = cache.get(namespace, digests[i], digests[j])
            if value is None:
                unknown.append((i, j))
            else:
                out[i, j] = value
                out[j, i] = value
    if unknown:
        need = _greedy_row_cover(unknown)
        if len(need) == n:
            out = _fanout_tiles(dispatch, name, kernel, source, n, dim, rows_per_block)
        else:
            sub = _fanout_tiles(
                dispatch, name, kernel, source, n, dim, rows_per_block, subset=need
            )
            for local, row in enumerate(need):
                out[row, :] = sub[local]
                out[:, row] = sub[local]
        need_set = set(need)
        for i in range(n):
            for j in range(i, n):
                if i in need_set or j in need_set:
                    cache.put(namespace, digests[i], digests[j], out[i, j])
    return out


def pairwise_sq_distances(
    matrix: np.ndarray,
    executor=None,
    block_rows: Optional[int] = None,
    dispatch=None,
) -> np.ndarray:
    """Exact float64 ``(n, n)`` squared L2 distance matrix of ``matrix`` rows.

    Parameters
    ----------
    matrix:
        ``(n, dim)`` stacked update matrix, any floating dtype.
    executor:
        Legacy round executor; equivalent to
        ``dispatch=DispatchPolicy.for_executor(executor)``.
    block_rows:
        Rows per block (default: derived from the shape).  The result is
        bitwise independent of this value; it only exists for tests and
        tuning.
    dispatch:
        A :class:`~repro.fl.dispatch_policy.DispatchPolicy` (or spec string)
        deciding serial vs pooled per call and carrying the cross-round
        :class:`~repro.fl.dispatch_policy.DistanceCache`.  ``None`` with no
        ``executor`` runs pure serial compute, uncached.
    """
    dispatch = _resolve_dispatch(dispatch, executor)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D (num_updates, dim)")
    n, dim = matrix.shape
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    rows = block_rows if block_rows is not None else _default_block_rows(n, dim)
    namespace = ("sq", dim, matrix.dtype.str)
    return _pairwise_matrix(
        dispatch,
        namespace,
        DISTANCE_BLOCK_FANOUT,
        distance_block,
        matrix,
        n,
        dim,
        max(1, int(rows)),
    )


def pairwise_cosine_similarities(
    matrix: np.ndarray,
    epsilon: float = 0.0,
    executor=None,
    block_rows: Optional[int] = None,
    dispatch=None,
) -> np.ndarray:
    """Float64 ``(n, n)`` cosine-similarity matrix of ``matrix`` rows.

    Rows are normalized once in float64 (``‖x‖ + epsilon`` in the
    denominator, matching FoolsGold's guard against zero histories); the
    Gram product then runs per row block on the same dispatch plane as
    :func:`pairwise_sq_distances`.  Cache keys include ``epsilon``, so
    different guards never share values.
    """
    dispatch = _resolve_dispatch(dispatch, executor)
    matrix64 = np.asarray(matrix, dtype=np.float64)
    if matrix64.ndim != 2:
        raise ValueError("matrix must be 2-D (num_updates, dim)")
    n, dim = matrix64.shape
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    norms = np.sqrt(np.einsum("nd,nd->n", matrix64, matrix64)) + epsilon
    normalized = matrix64 / norms[:, None]
    rows = block_rows if block_rows is not None else _default_block_rows(n, dim)
    namespace = ("cos", dim, matrix64.dtype.str, float(epsilon))
    return _pairwise_matrix(
        dispatch,
        namespace,
        COSINE_BLOCK_FANOUT,
        cosine_block,
        normalized,
        n,
        dim,
        max(1, int(rows)),
    )
