"""Shared distance-matrix compute plane for the geometry-based defenses.

Krum/Multi-Krum, Bulyan and FoolsGold all reduce the round's update matrix
to a pairwise geometry — squared L2 distances for the Krum family, cosine
similarities for FoolsGold.  PR 2 moved the update pipeline to float32 flat
buffers, which silently broke the Gram-trick expansion
``‖x‖² + ‖y‖² − 2·x·y`` those modules used: for the near-duplicate benign
updates that dominate after a few converged rounds, the true squared
distance (~1e-6) sits far below the float32 rounding of the ~1e4 squared
norms (eps32 · ‖x‖² ≈ 1e-3), so the subtraction catastrophically cancels
and the neighbour ordering — hence *which client Krum accepts* — becomes
noise.

This module fixes that at the root and gives the defenses one shared
compute plane:

* :func:`pairwise_sq_distances` computes **exact row-block differences in
  float64** regardless of the input dtype: each ``(block, n)`` tile is
  ``Σ_d (x_i[d] − x_j[d])²`` accumulated in float64 over fixed-size column
  chunks, so there is no large-term cancellation at all and the result is
  bitwise independent of how rows are grouped into blocks.
* :func:`pairwise_cosine_similarities` normalizes rows in float64 once and
  computes the similarity Gram product per row block in float64 (cosine has
  no cancelling subtraction, but the float32 accumulation loses the
  near-duplicate structure FoolsGold keys on just the same).
* Both fan their row blocks out through the executor's named fan-out
  registry (:data:`DISTANCE_BLOCK_FANOUT` / :data:`COSINE_BLOCK_FANOUT`).
  Backends whose fan-out pickles its work items (the process pool) receive
  the stacked matrix **once**, published by the executor in a
  :class:`~repro.fl.executor.SharedArrayStore`
  (:meth:`~repro.fl.executor.ClientExecutor.publish_arrays`); each envelope
  then carries only a :class:`~repro.fl.executor.SharedArrayRef` plus two
  row indices.  Threads receive the in-process array, and the serial path
  runs the *same* block kernels, so every backend is bit-identical.

Determinism contract
--------------------
The per-pair reduction runs over fixed ``_DIM_CHUNK`` column chunks in a
fixed order, independent of the row-block partition, so serial, thread and
process backends — and any ``block_rows`` override — produce bitwise
identical matrices for the same input.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..fl.executor import (
    SharedArrayRef,
    pooled_fanout_ready,
    register_fanout_fn,
    resolve_shared_array,
)

__all__ = [
    "DISTANCE_BLOCK_FANOUT",
    "COSINE_BLOCK_FANOUT",
    "distance_block",
    "cosine_block",
    "pairwise_sq_distances",
    "pairwise_cosine_similarities",
]

#: Columns of the update matrix reduced per float64 accumulation step.  The
#: chunk size is a fixed constant so the accumulation order — and therefore
#: the bit pattern of every distance — does not depend on the row blocking.
_DIM_CHUNK = 1 << 16

#: Upper bound on the float64 temporary built per accumulation step
#: (``rows × right_span × min(dim, _DIM_CHUNK)`` elements ≈ 32 MB): the
#: block height, and for large ``n`` the right-hand row span inside
#: :func:`_exact_distance_block`, are both derived from it.
_TARGET_BLOCK_ELEMENTS = 1 << 22

#: Preferred number of row blocks per matrix, so a pooled executor has
#: work to overlap even for the paper's 10-client rounds.
_TARGET_BLOCKS = 4

#: Registered fan-out names (``module:label`` so worker processes resolve
#: them by importing this module on demand).
DISTANCE_BLOCK_FANOUT = "repro.defenses.distances:distance_block"
COSINE_BLOCK_FANOUT = "repro.defenses.distances:cosine_block"


def _default_block_rows(n: int, dim: int) -> int:
    """Rows per block: bounded by the temp-memory budget and spread over
    ``_TARGET_BLOCKS`` blocks so pooled backends overlap; pure function of
    the matrix shape, hence identical in the parent and every worker."""
    budget = _TARGET_BLOCK_ELEMENTS // max(1, n * min(dim, _DIM_CHUNK))
    spread = -(-n // _TARGET_BLOCKS)  # ceil(n / _TARGET_BLOCKS)
    return max(1, min(max(1, budget), spread))


def _row_blocks(n: int, rows: int) -> List[Tuple[int, int]]:
    return [(start, min(start + rows, n)) for start in range(0, n, rows)]


def _exact_distance_block(block: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Squared L2 distances from ``block`` rows to every ``matrix`` row.

    Differences are formed *before* squaring and accumulated in float64
    over fixed column chunks, so near-duplicate rows keep their full
    relative precision (no ``‖x‖²+‖y‖²−2x·y`` cancellation).  When ``n``
    alone blows the temp budget (many clients per round), the right-hand
    rows are additionally tiled: each pair's reduction still runs over the
    same fixed column chunks in the same order, so the tiling never
    changes a single bit of the result.
    """
    rows = block.shape[0]
    n, dim = matrix.shape
    out = np.zeros((rows, n), dtype=np.float64)
    chunk_cols = min(dim, _DIM_CHUNK) if dim else 1
    span = max(1, _TARGET_BLOCK_ELEMENTS // max(1, rows * chunk_cols))
    for start in range(0, dim, _DIM_CHUNK):
        left = np.asarray(block[:, start : start + _DIM_CHUNK], dtype=np.float64)
        for right_start in range(0, n, span):
            right_stop = min(right_start + span, n)
            right = np.asarray(
                matrix[right_start:right_stop, start : start + _DIM_CHUNK],
                dtype=np.float64,
            )
            diff = left[:, None, :] - right[None, :, :]
            out[:, right_start:right_stop] += np.einsum("bnd,bnd->bn", diff, diff)
    return out


def _resolve_matrix(matrix) -> np.ndarray:
    if isinstance(matrix, SharedArrayRef):
        return resolve_shared_array(matrix)
    return matrix


def distance_block(payload) -> np.ndarray:
    """One ``(rows, n)`` tile of the squared-distance matrix (fan-out unit).

    ``payload`` is ``(matrix, start, stop)`` where ``matrix`` is either the
    in-process stacked update matrix or a
    :class:`~repro.fl.executor.SharedArrayRef` into the executor's
    published store; pure function of the payload, bit-identical to the
    serial path.
    """
    matrix, start, stop = payload
    matrix = _resolve_matrix(matrix)
    return _exact_distance_block(matrix[start:stop], matrix)


def cosine_block(payload) -> np.ndarray:
    """One ``(rows, n)`` tile of the cosine-similarity matrix (fan-out unit).

    ``payload`` is ``(normalized, start, stop)`` over the float64
    row-normalized matrix — the parent normalizes once, so every block is
    a plain float64 inner-product tile.  The reduction runs through
    ``np.einsum`` (not BLAS) so each pair's accumulation order depends only
    on ``dim``, keeping the result bitwise independent of the row blocking
    — the same contract as :func:`distance_block`.
    """
    normalized, start, stop = payload
    normalized = _resolve_matrix(normalized)
    return np.einsum("bd,nd->bn", normalized[start:stop], normalized)


register_fanout_fn(DISTANCE_BLOCK_FANOUT, distance_block)
register_fanout_fn(COSINE_BLOCK_FANOUT, cosine_block)


def _map_blocks(
    name: str,
    kernel: Callable,
    matrix: np.ndarray,
    blocks: Sequence[Tuple[int, int]],
    executor,
) -> List[np.ndarray]:
    """Run the block kernel over every row block, pooled when profitable.

    The serial path calls ``kernel`` directly; a pooled executor receives
    the registered ``name``.  A backend whose fan-out pickles its items
    (process pool) only runs pooled when the matrix can be published once
    via :meth:`~repro.fl.executor.ClientExecutor.publish_arrays` — shipping
    the matrix inside every envelope would re-pickle it per block.
    """
    if len(blocks) <= 1 or not pooled_fanout_ready(executor):
        return [kernel((matrix, start, stop)) for start, stop in blocks]
    payload_matrix: object = matrix
    store = None
    if getattr(executor, "fanout_requires_pickling", False):
        publish = getattr(executor, "publish_arrays", None)
        store = publish({"matrix": matrix}) if publish is not None else None
        if store is None:
            return [kernel((matrix, start, stop)) for start, stop in blocks]
        payload_matrix = store.refs["matrix"]
    try:
        return executor.map_fn(
            name, [(payload_matrix, start, stop) for start, stop in blocks]
        )
    finally:
        if store is not None:
            store.close()


def pairwise_sq_distances(
    matrix: np.ndarray,
    executor=None,
    block_rows: Optional[int] = None,
) -> np.ndarray:
    """Exact float64 ``(n, n)`` squared L2 distance matrix of ``matrix`` rows.

    Parameters
    ----------
    matrix:
        ``(n, dim)`` stacked update matrix, any floating dtype.
    executor:
        Optional round executor; pooled backends fan the row blocks out
        through :data:`DISTANCE_BLOCK_FANOUT`.
    block_rows:
        Rows per block (default: derived from the shape).  The result is
        bitwise independent of this value; it only exists for tests and
        tuning.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D (num_updates, dim)")
    n, dim = matrix.shape
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    rows = block_rows if block_rows is not None else _default_block_rows(n, dim)
    blocks = _row_blocks(n, max(1, int(rows)))
    tiles = _map_blocks(DISTANCE_BLOCK_FANOUT, distance_block, matrix, blocks, executor)
    return np.concatenate(tiles, axis=0)


def pairwise_cosine_similarities(
    matrix: np.ndarray,
    epsilon: float = 0.0,
    executor=None,
    block_rows: Optional[int] = None,
) -> np.ndarray:
    """Float64 ``(n, n)`` cosine-similarity matrix of ``matrix`` rows.

    Rows are normalized once in float64 (``‖x‖ + epsilon`` in the
    denominator, matching FoolsGold's guard against zero histories); the
    Gram product then runs per row block on the same fan-out plane as
    :func:`pairwise_sq_distances`.
    """
    matrix64 = np.asarray(matrix, dtype=np.float64)
    if matrix64.ndim != 2:
        raise ValueError("matrix must be 2-D (num_updates, dim)")
    n, dim = matrix64.shape
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    norms = np.sqrt(np.einsum("nd,nd->n", matrix64, matrix64)) + epsilon
    normalized = matrix64 / norms[:, None]
    rows = block_rows if block_rows is not None else _default_block_rows(n, dim)
    blocks = _row_blocks(n, max(1, int(rows)))
    tiles = _map_blocks(COSINE_BLOCK_FANOUT, cosine_block, normalized, blocks, executor)
    return np.concatenate(tiles, axis=0)
