"""Bulyan robust aggregation (El Mhamdi et al., ICML 2018).

Bulyan runs Multi-Krum selection repeatedly to build a selection set of
``theta`` updates and then aggregates them coordinate-wise: each output
coordinate is the mean of the ``theta - 2*beta`` values **closest to the
coordinate-wise median** (Sec. 4 of the paper).  It is the most aggressive
of the paper's evaluated defenses, rejecting the largest number of updates
per round.

The pairwise geometry comes from the shared defense distance plane
(:mod:`repro.defenses.distances`): the full float64 distance matrix is
computed exactly once (the context's dispatch policy decides whether the
row blocks run inline or fan out) and the iterative θ-selection rescores the shrinking candidate
set by slicing that one matrix — O(θ·n²·log n) instead of the
O(θ·n²·dim) of recomputing Krum scores from the raw updates on every pick.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..fl.aggregation import stack_updates
from ..fl.dispatch_policy import dispatch_for
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense
from .distances import pairwise_sq_distances
from .krum import iterative_krum_selection

__all__ = ["Bulyan"]

#: Valid values of ``coordinate_rule``.
_COORDINATE_RULES = ("median-closest", "trimmed-mean")


class Bulyan(Defense):
    """Iterative Krum selection followed by a per-coordinate robust mean.

    Parameters
    ----------
    selection_size:
        Number of updates retained by the iterative Krum selection
        (``theta`` in the original paper).  Defaults to ``n - 2f`` clipped to
        a valid range.
    trim:
        Number of values excluded per coordinate (``beta``); defaults to
        ``f`` clipped so that at least one value remains.
    coordinate_rule:
        ``"median-closest"`` (default) implements the paper's rule: average
        the ``theta - 2*beta`` coordinates closest to the coordinate-wise
        median.  ``"trimmed-mean"`` is an explicit opt-in for the earlier
        behaviour — sort each coordinate and drop the ``beta`` extremes on
        each side — which coincides with the paper's rule only when the
        median sits centrally in every coordinate's value distribution.
    """

    name = "bulyan"
    selects_updates = True

    def __init__(
        self,
        selection_size: int | None = None,
        trim: int | None = None,
        coordinate_rule: str = "median-closest",
    ) -> None:
        if coordinate_rule not in _COORDINATE_RULES:
            raise ValueError(
                f"unknown coordinate_rule '{coordinate_rule}'; choose from {_COORDINATE_RULES}"
            )
        self.selection_size = selection_size
        self.trim = trim
        self.coordinate_rule = coordinate_rule

    def _aggregate_selected(self, selected_matrix: np.ndarray, beta: int) -> np.ndarray:
        """Coordinate-wise robust mean over the ``theta`` selected updates."""
        theta = selected_matrix.shape[0]
        if beta == 0:
            return selected_matrix.mean(axis=0)
        if self.coordinate_rule == "trimmed-mean":
            ordered = np.sort(selected_matrix, axis=0)
            return ordered[beta : theta - beta].mean(axis=0)
        # Paper's rule: per coordinate, keep the theta - 2*beta values
        # closest to the coordinate-wise median.  The stable argsort makes
        # ties (equidistant values) resolve by row order deterministically.
        keep = theta - 2 * beta
        median = np.median(selected_matrix, axis=0)
        closeness = np.abs(selected_matrix - median[None, :])
        order = np.argsort(closeness, axis=0, kind="stable")[:keep]
        return np.take_along_axis(selected_matrix, order, axis=0).mean(axis=0)

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        n = matrix.shape[0]
        f = int(context.expected_num_malicious)
        theta = self.selection_size if self.selection_size is not None else n - 2 * f
        theta = int(np.clip(theta, 1, n))

        # One exact distance matrix for the whole selection; every pick
        # rescores the remaining candidates by slicing it.
        distances = pairwise_sq_distances(matrix, dispatch=dispatch_for(context))
        selected = iterative_krum_selection(distances, theta, f)

        selected_matrix = matrix[selected]
        beta = self.trim if self.trim is not None else f
        max_beta = (len(selected) - 1) // 2
        beta = int(np.clip(beta, 0, max_beta))
        aggregated = self._aggregate_selected(selected_matrix, beta)

        accepted = [updates[i].client_id for i in selected]
        return AggregationResult(new_params=aggregated, accepted_client_ids=accepted)
