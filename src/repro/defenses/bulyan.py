"""Bulyan robust aggregation (El Mhamdi et al., ICML 2018).

Bulyan runs Multi-Krum selection repeatedly to build a selection set and then
applies a coordinate-wise trimmed mean over the selected updates.  It is the
most aggressive of the paper's evaluated defenses, rejecting the largest
number of updates per round.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..fl.aggregation import stack_updates
from ..fl.types import AggregationResult, DefenseContext, ModelUpdate
from .base import Defense
from .krum import krum_scores

__all__ = ["Bulyan"]


class Bulyan(Defense):
    """mKrum selection followed by a per-coordinate trimmed mean.

    Parameters
    ----------
    selection_size:
        Number of updates retained by the iterative Krum selection
        (``theta`` in the original paper).  Defaults to ``n - 2f`` clipped to
        a valid range.
    trim:
        Number of extreme values removed per coordinate on each side
        (``beta``); defaults to ``f`` clipped so that at least one value
        remains.
    """

    name = "bulyan"
    selects_updates = True

    def __init__(self, selection_size: int | None = None, trim: int | None = None) -> None:
        self.selection_size = selection_size
        self.trim = trim

    def aggregate(
        self, updates: Sequence[ModelUpdate], context: DefenseContext
    ) -> AggregationResult:
        self._validate(updates)
        matrix = stack_updates(updates)
        n = matrix.shape[0]
        f = int(context.expected_num_malicious)
        theta = self.selection_size if self.selection_size is not None else n - 2 * f
        theta = int(np.clip(theta, 1, n))

        # Iterative Krum selection: repeatedly pick the best-scoring update
        # among the remaining ones.
        remaining = list(range(n))
        selected: List[int] = []
        while len(selected) < theta and remaining:
            sub_matrix = matrix[remaining]
            scores = krum_scores(sub_matrix, f)
            best_local = int(np.argmin(scores))
            selected.append(remaining.pop(best_local))

        selected_matrix = matrix[selected]
        beta = self.trim if self.trim is not None else f
        max_beta = (len(selected) - 1) // 2
        beta = int(np.clip(beta, 0, max_beta))
        if beta == 0:
            aggregated = selected_matrix.mean(axis=0)
        else:
            ordered = np.sort(selected_matrix, axis=0)
            aggregated = ordered[beta : len(selected) - beta].mean(axis=0)

        accepted = [updates[i].client_id for i in selected]
        return AggregationResult(new_params=aggregated, accepted_client_ids=accepted)
