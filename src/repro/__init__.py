"""Reproduction of "Fabricated Flips: Poisoning Federated Learning without Data".

The library implements the full system described in the DSN 2023 paper by
Huang, Zhao, Chen and Roos:

* :mod:`repro.nn` — a from-scratch numpy autograd / neural-network substrate
  (the environment has no deep-learning framework installed);
* :mod:`repro.data` — synthetic stand-ins for Fashion-MNIST, CIFAR-10 and
  SVHN plus Dirichlet-based client partitioning;
* :mod:`repro.models` — the paper's classifiers, the DFA-G generator and the
  DFA-R filter network;
* :mod:`repro.fl` — the cross-device federated learning simulation;
* :mod:`repro.attacks` — DFA-R, DFA-G and the LIE / Fang / Min-Max baselines;
* :mod:`repro.defenses` — mKrum, Bulyan, Median, Trimmed mean, FoolsGold and
  the proposed REFD defense;
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the evaluation section.
"""

from . import attacks, data, defenses, experiments, fl, metrics, models, nn, utils

__version__ = "1.0.0"

__all__ = [
    "attacks",
    "data",
    "defenses",
    "experiments",
    "fl",
    "metrics",
    "models",
    "nn",
    "utils",
    "__version__",
]
