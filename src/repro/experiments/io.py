"""Serialization of experiment results to JSON and CSV.

Long sweeps (the paper-scale reproduction in particular) should not have to
keep everything in memory; these helpers persist
:class:`~repro.experiments.runner.ExperimentResult` objects to disk in a
plain, diff-friendly format and load them back for analysis.
"""

from __future__ import annotations

import csv
import json
import logging
import os
import uuid
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..fl.types import RoundRecord
from .config import ExperimentConfig
from .runner import ExperimentResult

__all__ = [
    "atomic_write_json",
    "read_json",
    "quarantine_count",
    "result_to_dict",
    "result_from_dict",
    "save_results",
    "load_results",
    "write_summary_csv",
]

PathLike = Union[str, Path]

logger = logging.getLogger(__name__)

#: Process-wide count of corrupt artifacts renamed to ``<name>.corrupt``.
_QUARANTINED = 0


def quarantine_count() -> int:
    """Corrupt JSON artifacts quarantined by :func:`read_json` so far.

    Grid runs snapshot this before/after a sweep to surface the delta in
    their :class:`~repro.fl.faults.FaultStats`.
    """
    return _QUARANTINED


def _quarantine(path: Path) -> Optional[Path]:
    """Move a corrupt artifact aside so the next read is a clean miss."""
    global _QUARANTINED
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - raced with another reader
        return None
    _QUARANTINED += 1
    logger.warning("quarantined corrupt artifact %s -> %s", path, target.name)
    return target


def atomic_write_json(path: PathLike, payload, indent: Optional[int] = None) -> Path:
    """Write JSON so readers never observe a half-written file.

    The payload lands in a same-directory temporary file (pid + random
    nonce, so concurrent writers — e.g. two grid runners on *different
    hosts* racing on a stolen lease, where pids alone can collide — cannot
    clobber each other's scratch space) and is moved into place with
    :func:`os.replace`, which is atomic on POSIX.  Readers therefore see
    either the previous complete artifact or the new one, never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    tmp.write_text(json.dumps(payload, indent=indent))
    tmp.replace(path)
    return path


def read_json(
    path: PathLike, quarantine: bool = True
) -> Optional[Union[Dict, List]]:
    """Load a JSON file, returning ``None`` when missing or unparsable.

    The forgiving counterpart of :func:`atomic_write_json` for cache-style
    consumers: a missing or corrupt artifact means "not cached", never an
    exception.  A file that *exists* but does not parse (torn by a crashed
    writer on a non-atomic filesystem, truncated by a full disk, or
    corrupted outright) is additionally quarantined as ``<name>.corrupt``
    and logged, so the caller's re-execution can write a clean artifact
    under the original name and the bad bytes stay around for forensics.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except (FileNotFoundError, NotADirectoryError, OSError):
        return None
    try:
        return json.loads(text)
    except ValueError:
        if quarantine:
            _quarantine(path)
        return None


# Round-record serialization lives on the dataclass itself so the fl layer
# (checkpoints) and this module (cache artifacts) share one format.
_record_to_dict = RoundRecord.to_dict
_record_from_dict = RoundRecord.from_dict


def result_to_dict(label: str, result: ExperimentResult) -> Dict:
    """Convert one labelled result into a JSON-serializable dictionary."""
    return {
        "label": label,
        "config": result.config.to_dict(),
        "max_accuracy": result.max_accuracy,
        "final_accuracy": result.final_accuracy,
        "baseline_accuracy": result.baseline_accuracy,
        "asr": result.asr,
        "dpr": result.dpr,
        "records": [_record_to_dict(record) for record in result.records],
        "attack_synthesis_losses": [list(trace) for trace in result.attack_synthesis_losses],
        "fault_stats": dict(result.fault_stats),
    }


def result_from_dict(data: Dict) -> Tuple[str, ExperimentResult]:
    """Inverse of :func:`result_to_dict`."""
    config = ExperimentConfig(**data["config"])
    result = ExperimentResult(
        config=config,
        records=[_record_from_dict(record) for record in data["records"]],
        max_accuracy=data["max_accuracy"],
        final_accuracy=data["final_accuracy"],
        dpr=data["dpr"],
        baseline_accuracy=data["baseline_accuracy"],
        asr=data["asr"],
        attack_synthesis_losses=[list(trace) for trace in data.get("attack_synthesis_losses", [])],
        fault_stats=dict(data.get("fault_stats", {})),
    )
    return data["label"], result


def save_results(
    results: Sequence[Tuple[str, ExperimentResult]], path: PathLike
) -> Path:
    """Write labelled results to a JSON file and return the path."""
    payload = [result_to_dict(label, result) for label, result in results]
    return atomic_write_json(path, payload, indent=2)


def load_results(path: PathLike) -> List[Tuple[str, ExperimentResult]]:
    """Load labelled results previously written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    return [result_from_dict(entry) for entry in payload]


def write_summary_csv(
    results: Sequence[Tuple[str, ExperimentResult]], path: PathLike
) -> Path:
    """Write a one-row-per-experiment CSV summary (label, setup, metrics)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fields = [
        "label",
        "dataset",
        "attack",
        "defense",
        "beta",
        "malicious_fraction",
        "num_rounds",
        "baseline_accuracy",
        "max_accuracy",
        "final_accuracy",
        "asr",
        "dpr",
    ]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for label, result in results:
            config = result.config
            writer.writerow(
                {
                    "label": label,
                    "dataset": config.dataset,
                    "attack": config.attack,
                    "defense": config.defense,
                    "beta": config.beta,
                    "malicious_fraction": config.malicious_fraction,
                    "num_rounds": config.num_rounds,
                    "baseline_accuracy": result.baseline_accuracy,
                    "max_accuracy": result.max_accuracy,
                    "final_accuracy": result.final_accuracy,
                    "asr": result.asr,
                    "dpr": result.dpr,
                }
            )
    return path
