"""Scenario generators: one function per table / figure of the paper.

Each function returns a list of ``(label, ExperimentConfig)`` pairs that,
when run through :class:`~repro.experiments.runner.ExperimentRunner`,
regenerate the corresponding rows or series.  The ``scale`` argument is a
preset factory (``benchmark_scale``, ``paper_scale`` or a custom callable
with the same signature), so the same scenario definitions drive both the
fast benchmark harness and full-scale reproduction runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .config import ExperimentConfig
from .presets import benchmark_scale

__all__ = [
    "PAPER_ATTACKS",
    "PAPER_DEFENSES",
    "PAPER_DATASETS",
    "Scenario",
    "random_weights_motivation",
    "table2_scenarios",
    "fig4_scenarios",
    "fig5_scenarios",
    "fig6_scenarios",
    "fig7_scenarios",
    "table3_scenarios",
    "table4_scenarios",
    "fig8_scenarios",
    "fig9_scenarios",
    "fig10_scenarios",
    "synthetic_set_size_scenarios",
]

#: The five attacks compared in Table II / Figs. 4-6 (our two plus baselines).
PAPER_ATTACKS: Tuple[str, ...] = ("fang", "lie", "min-max", "dfa-r", "dfa-g")
#: The four state-of-the-art defenses of the main evaluation.
PAPER_DEFENSES: Tuple[str, ...] = ("mkrum", "bulyan", "trmean", "median")
#: The three image classification benchmarks.
PAPER_DATASETS: Tuple[str, ...] = ("fashion-mnist", "cifar-10", "svhn")

ScaleFn = Callable[..., ExperimentConfig]
Scenario = Tuple[str, ExperimentConfig]


def _label(*parts: object) -> str:
    return "/".join(str(part) for part in parts)


def random_weights_motivation(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = ("fashion-mnist", "cifar-10"),
) -> List[Scenario]:
    """Sec. III-B motivation: random model weights against mKrum and Bulyan."""
    scenarios: List[Scenario] = []
    for dataset in datasets:
        for defense in ("mkrum", "bulyan"):
            config = scale(dataset, attack="random-weights", defense=defense)
            scenarios.append((_label(dataset, defense, "random-weights"), config))
    return scenarios


def table2_scenarios(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = PAPER_DATASETS,
    attacks: Sequence[str] = PAPER_ATTACKS,
    defenses: Sequence[str] = PAPER_DEFENSES,
) -> List[Scenario]:
    """Table II: ASR of the five attacks under the four defenses (β = 0.5)."""
    scenarios: List[Scenario] = []
    for dataset in datasets:
        for defense in defenses:
            for attack in attacks:
                config = scale(dataset, attack=attack, defense=defense, beta=0.5)
                scenarios.append((_label(dataset, defense, attack), config))
    return scenarios


def fig4_scenarios(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = PAPER_DATASETS,
    attacks: Sequence[str] = PAPER_ATTACKS,
) -> List[Scenario]:
    """Fig. 4: DPR of the five attacks; only the update-selecting defenses."""
    return table2_scenarios(scale, datasets=datasets, attacks=attacks, defenses=("mkrum", "bulyan"))


def fig5_scenarios(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = ("fashion-mnist", "cifar-10"),
    attacks: Sequence[str] = PAPER_ATTACKS,
    betas: Sequence[float] = (0.1, 0.5, 0.9),
) -> List[Scenario]:
    """Fig. 5: ASR vs data heterogeneity under the Bulyan defense."""
    scenarios: List[Scenario] = []
    for dataset in datasets:
        for beta in betas:
            for attack in attacks:
                config = scale(dataset, attack=attack, defense="bulyan", beta=beta)
                scenarios.append((_label(dataset, f"beta={beta}", attack), config))
    return scenarios


def fig6_scenarios(
    scale: ScaleFn = benchmark_scale,
    attacks: Sequence[str] = PAPER_ATTACKS,
    fractions: Sequence[float] = (0.1, 0.2, 0.3),
    defenses: Sequence[str] = ("mkrum", "trmean"),
) -> List[Scenario]:
    """Fig. 6: ASR vs attacker fraction on Fashion-MNIST (mKrum, TRmean)."""
    scenarios: List[Scenario] = []
    for defense in defenses:
        for fraction in fractions:
            for attack in attacks:
                config = scale(
                    "fashion-mnist",
                    attack=attack,
                    defense=defense,
                    malicious_fraction=fraction,
                )
                scenarios.append((_label(defense, f"attackers={fraction:.0%}", attack), config))
    return scenarios


def fig7_scenarios(
    scale: ScaleFn = benchmark_scale,
    defenses: Sequence[str] = PAPER_DEFENSES,
) -> List[Scenario]:
    """Fig. 7: local synthesis-loss convergence of DFA-R / DFA-G (Fashion-MNIST)."""
    scenarios: List[Scenario] = []
    for attack in ("dfa-r", "dfa-g"):
        for defense in defenses:
            config = scale("fashion-mnist", attack=attack, defense=defense)
            scenarios.append((_label(attack, defense), config))
    return scenarios


def table3_scenarios(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = ("fashion-mnist", "cifar-10"),
    defenses: Sequence[str] = PAPER_DEFENSES,
) -> List[Scenario]:
    """Table III: static (untrained) vs trained synthetic-data generation."""
    scenarios: List[Scenario] = []
    for dataset in datasets:
        for attack in ("dfa-r", "dfa-g"):
            for defense in defenses:
                for trained in (False, True):
                    mode = "trained" if trained else "static"
                    config = scale(
                        dataset, attack=attack, defense=defense, train_synthesizer=trained
                    )
                    scenarios.append((_label(dataset, attack, defense, mode), config))
    return scenarios


def table4_scenarios(
    scale: ScaleFn = benchmark_scale,
    defenses: Sequence[str] = PAPER_DEFENSES,
) -> List[Scenario]:
    """Table IV: ablation of the distance-based regularization (Fashion-MNIST)."""
    scenarios: List[Scenario] = []
    for attack in ("dfa-r", "dfa-g"):
        for defense in defenses:
            for regularized in (False, True):
                mode = "with-reg" if regularized else "without-reg"
                config = scale(
                    "fashion-mnist",
                    attack=attack,
                    defense=defense,
                    use_regularization=regularized,
                )
                scenarios.append((_label(attack, defense, mode), config))
    return scenarios


def fig8_scenarios(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = ("fashion-mnist", "cifar-10"),
    defenses: Sequence[str] = PAPER_DEFENSES,
) -> List[Scenario]:
    """Fig. 8: synthetic (DFA-R / DFA-G) vs real attacker data."""
    scenarios: List[Scenario] = []
    for dataset in datasets:
        for defense in defenses:
            for attack in ("dfa-r", "dfa-g", "real-data"):
                config = scale(dataset, attack=attack, defense=defense)
                scenarios.append((_label(dataset, defense, attack), config))
    return scenarios


def fig9_scenarios(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = ("fashion-mnist", "cifar-10"),
    betas: Sequence[Optional[float]] = (None, 0.9, 0.5, 0.1),
) -> List[Scenario]:
    """Fig. 9: REFD vs Bulyan accuracy across heterogeneity levels under DFA."""
    scenarios: List[Scenario] = []
    for dataset in datasets:
        for attack in ("dfa-r", "dfa-g"):
            for beta in betas:
                beta_label = "iid" if beta is None else f"beta={beta}"
                for defense in ("refd", "bulyan"):
                    config = scale(dataset, attack=attack, defense=defense, beta=beta)
                    scenarios.append((_label(dataset, attack, beta_label, defense), config))
    return scenarios


def fig10_scenarios(
    scale: ScaleFn = benchmark_scale,
    datasets: Sequence[str] = ("fashion-mnist", "cifar-10"),
    attacks: Sequence[str] = PAPER_ATTACKS,
    defenses: Sequence[str] = ("mkrum", "bulyan", "trmean", "median", "refd"),
) -> List[Scenario]:
    """Fig. 10: accuracy of all defenses (including REFD) against all attacks."""
    scenarios: List[Scenario] = []
    for dataset in datasets:
        for attack in attacks:
            for defense in defenses:
                config = scale(dataset, attack=attack, defense=defense)
                scenarios.append((_label(dataset, attack, defense), config))
    return scenarios


def synthetic_set_size_scenarios(
    scale: ScaleFn = benchmark_scale,
    sizes: Sequence[int] = (20, 50, 100),
    defenses: Sequence[str] = ("mkrum",),
) -> List[Scenario]:
    """Sec. IV-A sensitivity study: ASR across the synthetic set size |S|."""
    scenarios: List[Scenario] = []
    for attack in ("dfa-r", "dfa-g"):
        for defense in defenses:
            for size in sizes:
                config = scale(
                    "fashion-mnist", attack=attack, defense=defense, num_synthetic=size
                )
                scenarios.append((_label(attack, defense, f"S={size}"), config))
    return scenarios
