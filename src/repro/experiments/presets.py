"""Scale presets: paper-scale and benchmark-scale experiment configurations.

The benchmark harness in ``benchmarks/`` must regenerate every table and
figure within a CI-friendly time budget, so it runs the *same* pipeline at a
much smaller scale (fewer clients, rounds and images, smaller images and a
compact CNN).  Paper-scale presets reproduce the sizes reported in
Sec. IV-A and are intended for long-running offline reproduction.
"""

from __future__ import annotations

from typing import Optional

from .config import ExperimentConfig

__all__ = ["benchmark_scale", "smoke_scale", "paper_scale"]

_PAPER_TRAIN_SIZES = {
    "fashion-mnist": 6000,  # 10% of the original 60 000 images
    "cifar-10": 5000,  # 10% of the original 50 000 images
    "svhn": 73257,  # full training set
}

_PAPER_TEST_SIZES = {
    "fashion-mnist": 10000,
    "cifar-10": 10000,
    "svhn": 26032,
}


def benchmark_scale(dataset: str = "fashion-mnist", **overrides) -> ExperimentConfig:
    """Scaled-down configuration used by the benchmark suite.

    20 clients (8 sampled per round), 16×16 images, a compact two-convolution
    CNN and five rounds: every algorithmic component of the paper's setup is
    exercised, at a few seconds per experiment.
    """
    base = ExperimentConfig(
        dataset=dataset,
        train_size=overrides.pop("train_size", 400),
        test_size=overrides.pop("test_size", 160),
        image_size=overrides.pop("image_size", 16),
        architecture=overrides.pop("architecture", "small-cnn"),
        num_clients=overrides.pop("num_clients", 20),
        clients_per_round=overrides.pop("clients_per_round", 8),
        num_rounds=overrides.pop("num_rounds", 18),
        malicious_fraction=overrides.pop("malicious_fraction", 0.2),
        beta=overrides.pop("beta", 0.5),
        local_epochs=overrides.pop("local_epochs", 1),
        batch_size=overrides.pop("batch_size", 16),
        learning_rate=overrides.pop("learning_rate", 0.25),
        num_synthetic=overrides.pop("num_synthetic", 20),
        synthesis_epochs=overrides.pop("synthesis_epochs", 4),
    )
    return base.with_overrides(**overrides)


def smoke_scale(dataset: str = "fashion-mnist", **overrides) -> ExperimentConfig:
    """Minimal configuration for unit tests (a couple of seconds end to end)."""
    base = ExperimentConfig(
        dataset=dataset,
        train_size=overrides.pop("train_size", 96),
        test_size=overrides.pop("test_size", 48),
        image_size=overrides.pop("image_size", 12),
        architecture=overrides.pop("architecture", "mlp"),
        num_clients=overrides.pop("num_clients", 10),
        clients_per_round=overrides.pop("clients_per_round", 5),
        num_rounds=overrides.pop("num_rounds", 2),
        malicious_fraction=overrides.pop("malicious_fraction", 0.2),
        beta=overrides.pop("beta", 0.5),
        batch_size=overrides.pop("batch_size", 16),
        num_synthetic=overrides.pop("num_synthetic", 8),
        synthesis_epochs=overrides.pop("synthesis_epochs", 2),
    )
    return base.with_overrides(**overrides)


def paper_scale(dataset: str = "fashion-mnist", **overrides) -> ExperimentConfig:
    """Configuration matching the sizes reported in Sec. IV-A of the paper.

    100 clients, 10 sampled per round, 20% attackers, Dirichlet β = 0.5,
    one local epoch, full-size images and the paper's per-dataset model.
    Running these takes hours on CPU; they exist so that the repository can
    reproduce the paper at full scale when the time budget allows.
    """
    key = dataset.lower()
    base = ExperimentConfig(
        dataset=dataset,
        train_size=overrides.pop("train_size", _PAPER_TRAIN_SIZES.get(key, 6000)),
        test_size=overrides.pop("test_size", _PAPER_TEST_SIZES.get(key, 10000)),
        image_size=overrides.pop("image_size", None),
        architecture=overrides.pop("architecture", None),
        num_clients=overrides.pop("num_clients", 100),
        clients_per_round=overrides.pop("clients_per_round", 10),
        num_rounds=overrides.pop("num_rounds", 100),
        malicious_fraction=overrides.pop("malicious_fraction", 0.2),
        beta=overrides.pop("beta", 0.5),
        local_epochs=overrides.pop("local_epochs", 1),
        batch_size=overrides.pop("batch_size", 32),
        learning_rate=overrides.pop("learning_rate", 0.05),
        num_synthetic=overrides.pop("num_synthetic", 50),
        synthesis_epochs=overrides.pop(
            "synthesis_epochs", 5 if key == "fashion-mnist" else 10
        ),
    )
    return base.with_overrides(**overrides)
