"""Cooperative multi-host work distribution over the content-addressed cache.

The grid cache (:mod:`repro.experiments.grid`) keys every finished cell by a
content hash of its configuration, so the artifacts themselves are already
host-agnostic: any runner that points at the same ``cache_dir`` (a shared
filesystem or a synced object-store mount) sees the same
``<hash>.json`` namespace.  This module adds the two pieces that let *N*
independent hosts split one grid through that directory alone, with no
coordinator process:

Claim leases
------------
A runner claims a pending cell by atomically creating
``<cache_dir>/<hash>.claim`` (``O_CREAT | O_EXCL``).  The lease carries the
owner's runner id in its JSON body and uses the file's *mtime* as the
heartbeat, refreshed with :func:`os.utime` while the owner is alive.  A lease
whose heartbeat is older than the TTL is *stale*: any runner may expire it by
atomically renaming it to a tombstone (only one rename can succeed) and then
re-claiming the cell.  Completed cells release their lease after the result
artifact lands, so the steady state of a finished sweep is a directory of
plain ``.json`` artifacts.

The protocol is cooperative, not transactional: if a live owner is wrongly
presumed dead (TTL shorter than a long GC pause, extreme clock skew between
hosts and the shared filesystem), a cell can execute twice.  Executions are
deterministic and artifact writes are atomic, so the duplicate work is wasted
time, never wrong results.  Pick a TTL comfortably above the worst-case cell
runtime divided by the heartbeat interval (the grid runner refreshes at
``ttl / 4``).

Static sharding
---------------
:func:`shard_of` deterministically maps a config hash to one of ``n`` shards
(``int(hash, 16) % n``), giving ``repro grid --shard i/n`` a zero-traffic
fallback when the cache dir is only synced eventually (e.g. object-store
replication) and lease files cannot arbitrate in real time.  Shards are
disjoint and their union covers the grid, but they do not rebalance around
slow or dead hosts the way leases do.

Grid-level dataset store
------------------------
Every cell of a sweep regenerates its dataset from the same
``(dataset, train/test size, image size, dataset seed)`` tuple.
:class:`DatasetBroker` hoists that work to grid level: the parent
materialises each distinct dataset once, publishes its train/test arrays in
one :class:`~repro.fl.executor.SharedArrayStore` per key, and worker
processes attach read-only views through the pool initializer
(:func:`initialize_worker` / :func:`resolve_task`) instead of re-publishing
per cell — a 50-cell same-dataset sweep ships the dataset exactly once per
host.  Partitioning stays per-cell: Dirichlet shards are fancy-indexed
subsets that depend on ``(beta, seed)``, so only the task-level arrays are
shared.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Iterable, Optional, Set, Tuple, Union

from ..data.dataset import ArrayDataset
from ..data.synthetic import SyntheticImageSpec, SyntheticImageTask, load_dataset
from ..fl.executor import SharedArrayRef, SharedArrayStore, attach_array_store
from ..utils.sanitize import seal
from .config import ExperimentConfig

__all__ = [
    "CLAIM_SUFFIX",
    "ClaimLedger",
    "DatasetBroker",
    "claim_path",
    "dataset_key",
    "default_runner_id",
    "initialize_worker",
    "load_task_for",
    "parse_shard",
    "read_claim",
    "resolve_task",
    "shard_of",
    "worker_dataset_attaches",
]

PathLike = Union[str, Path]

CLAIM_SUFFIX = ".claim"


def default_runner_id() -> str:
    """A runner id unique across hosts and processes (host-pid-nonce)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def claim_path(cache_dir: PathLike, config_hash: str) -> Path:
    """Lease-file path for one cell of the cache directory."""
    return Path(cache_dir) / f"{config_hash}{CLAIM_SUFFIX}"


def read_claim(path: PathLike) -> Optional[Dict]:
    """Read a lease file: its JSON body plus the mtime heartbeat.

    Returns ``None`` when the file is missing.  An unreadable body is
    reported with ``owner=None`` but keeps the *mtime* heartbeat: exclusive
    creation and the body write are two separate syscalls, so a peer reading
    in between sees an empty file — its fresh mtime must protect the
    newborn lease from being treated as stale and stolen.  A genuinely
    abandoned corrupt lease ages out through the same TTL as a healthy one.
    """
    path = Path(path)
    try:
        heartbeat = path.stat().st_mtime
    except (FileNotFoundError, NotADirectoryError):
        return None
    except OSError:
        # Transient stat failure (NFS ESTALE/EIO): the lease may well belong
        # to a live owner, so it must read as *fresh* — stealing on an I/O
        # hiccup would duplicate a running cell.
        return {"owner": None, "heartbeat": time.time(), "unreadable": True}
    try:
        body = json.loads(path.read_text())
        if not isinstance(body, dict):
            raise ValueError("claim body must be an object")
    except (FileNotFoundError, NotADirectoryError):
        return None
    except (OSError, ValueError):
        body = {"owner": None, "unreadable": True}
    body["heartbeat"] = heartbeat
    return body


class ClaimLedger:
    """The set of cell leases one runner holds in one cache directory.

    All lease traffic of a :class:`~repro.experiments.grid.GridRunner` goes
    through a ledger: acquiring (:meth:`try_claim`), heartbeating
    (:meth:`refresh`), and releasing (:meth:`release` /
    :meth:`release_all`).  Counters mirror into
    :class:`~repro.experiments.grid.GridStats` after the run.
    """

    def __init__(self, cache_dir: PathLike, owner: str, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError("claim TTL must be positive")
        self.cache_dir = Path(cache_dir)
        self.owner = owner
        self.ttl = float(ttl)
        self.held: Dict[str, Path] = {}
        self._lock = threading.RLock()
        self._heartbeat_stop: Optional[threading.Event] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        self.acquired = 0
        """Leases this ledger successfully acquired."""
        self.stolen = 0
        """Acquisitions that took over a stale peer lease."""
        self.expired = 0
        """Stale peer leases this ledger observed and tombstoned."""
        self.lost = 0
        """Held leases that disappeared or changed owner (we were presumed
        dead by a peer); the affected cell may execute twice."""

    # ------------------------------------------------------------------
    def _create_exclusive(self, path: Path) -> bool:
        payload = json.dumps({"owner": self.owner, "acquired_at": time.time()})
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def _expire(self, path: Path) -> bool:
        """Tombstone a stale lease; only one contending runner can win."""
        tomb = path.with_name(f"{path.name}.expired-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, tomb)
        except (FileNotFoundError, NotADirectoryError, OSError):
            return False
        self.expired += 1
        try:
            tomb.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup
            pass
        return True

    def try_claim(self, config_hash: str) -> bool:
        """Try to acquire the lease for one cell; ``True`` means we own it.

        A lease we already hold is re-entrant; a live peer lease returns
        ``False``; a stale lease is expired and re-claimed (losing a steal
        race to another runner returns ``False``).
        """
        with self._lock:
            path = claim_path(self.cache_dir, config_hash)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            stealing = False
            for _ in range(8):  # bounded retries; contention resolves in 1-2
                if self._create_exclusive(path):
                    self.acquired += 1
                    if stealing:
                        self.stolen += 1
                    self.held[config_hash] = path
                    return True
                claim = read_claim(path)
                if claim is None:
                    continue  # released between our attempts; retry the create
                if claim.get("owner") == self.owner:
                    self.held[config_hash] = path
                    return True
                if time.time() - claim["heartbeat"] <= self.ttl:
                    return False
                if not self._expire(path):
                    return False  # another runner won the steal race
                stealing = True
            return False  # pragma: no cover - pathological contention

    def refresh(self) -> None:
        """Heartbeat every held lease; drop (and count) leases we lost."""
        with self._lock:
            for config_hash, path in list(self.held.items()):
                claim = read_claim(path)
                if claim is not None and claim.get("unreadable"):
                    # Transient read failure: a held lease is ours until a
                    # definitive read says otherwise — keep it and try again
                    # next beat (skipping one of four beats per TTL is safe).
                    continue
                if claim is None or claim.get("owner") != self.owner:
                    if self.held.pop(config_hash, None) is not None:
                        self.lost += 1
                    continue
                try:
                    os.utime(path)
                except FileNotFoundError:  # stolen between read and touch
                    if self.held.pop(config_hash, None) is not None:
                        self.lost += 1

    def release(self, config_hash: str) -> None:
        """Give up one held lease (no-op for leases we do not hold)."""
        with self._lock:
            path = self.held.pop(config_hash, None)
            if path is None:
                return
            claim = read_claim(path)
            if claim is None:
                return
            # Unlink when the body confirms our ownership, and also when it
            # is unreadable (transient I/O or truncation): we tracked the
            # lease in ``held``, so our own bookkeeping outranks a failed
            # read — leaving the file behind would orphan a lease in a
            # finished sweep's cache dir.
            if claim.get("owner") == self.owner or claim.get("unreadable"):
                try:
                    path.unlink()
                except FileNotFoundError:  # pragma: no cover - stolen meanwhile
                    pass

    def release_all(self) -> None:
        """Give up every held lease (crash-path cleanup)."""
        for config_hash in list(self.held):
            self.release(config_hash)

    @property
    def heartbeat_interval(self) -> float:
        """How often the owner should :meth:`refresh` (a quarter TTL)."""
        return max(0.05, self.ttl / 4.0)

    def start_heartbeat(self) -> None:
        """Refresh held leases from a daemon thread every quarter TTL.

        The grid runner's serial path (``workers=1``) executes cells in its
        own process and cannot call :meth:`refresh` while a cell runs, so a
        cell longer than the TTL would look dead to peers and be stolen from
        a live owner; the thread keeps every held lease fresh no matter what
        the main thread is doing.  Idempotent; stop with
        :meth:`stop_heartbeat`.
        """
        if self._heartbeat_thread is not None:
            return
        self._heartbeat_stop = threading.Event()

        def beat() -> None:
            while not self._heartbeat_stop.wait(self.heartbeat_interval):
                self.refresh()

        self._heartbeat_thread = threading.Thread(
            target=beat, name="claim-lease-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def stop_heartbeat(self) -> None:
        """Stop the background heartbeat thread (idempotent)."""
        if self._heartbeat_thread is None:
            return
        self._heartbeat_stop.set()
        self._heartbeat_thread.join()
        self._heartbeat_thread = None
        self._heartbeat_stop = None


# ----------------------------------------------------------------------
# Static sharding
# ----------------------------------------------------------------------
def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse an ``"i/n"`` shard spec into ``(index, count)`` (0-based)."""
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"shard spec must look like 'i/n', got {spec!r}") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"shard index must satisfy 0 <= i < n, got {spec!r}")
    return index, count


def shard_of(config_hash: str, num_shards: int) -> int:
    """Deterministic shard of a config hash: ``int(hash, 16) % n``."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return int(config_hash, 16) % num_shards


# ----------------------------------------------------------------------
# Grid-level dataset store
# ----------------------------------------------------------------------
DatasetKey = Tuple


def dataset_key(config: ExperimentConfig) -> DatasetKey:
    """The fields of a config that determine its generated dataset."""
    return config.dataset_key()


def load_task_for(config: ExperimentConfig) -> SyntheticImageTask:
    """Materialise the dataset task a config describes.

    The one config→``load_dataset`` translation, shared by the broker and
    the experiment runner, so the field list cannot drift between the two
    (drift would silently serve one config the other's dataset).
    """
    return load_dataset(
        config.dataset,
        train_size=config.train_size,
        test_size=config.test_size,
        seed=config.dataset_seed,
        image_size=config.image_size,
    )


#: Worker-process registry of grid-published datasets:
#: ``dataset_key -> (spec, {array name -> SharedArrayRef} | inline task)``.
#: Installed by the pool initializer; consulted by :func:`resolve_task`.
_WORKER_DATASETS: Dict[DatasetKey, Tuple[SyntheticImageSpec, Dict[str, SharedArrayRef]]] = {}
_WORKER_TASKS: Dict[DatasetKey, SyntheticImageTask] = {}
_WORKER_ATTACHES = 0


def initialize_worker(payload: Dict[DatasetKey, Tuple[SyntheticImageSpec, Dict[str, SharedArrayRef]]]) -> None:
    """Process-pool initializer: install the grid's dataset publications."""
    _WORKER_DATASETS.clear()
    _WORKER_DATASETS.update(payload)
    _WORKER_TASKS.clear()


def _readonly_dataset(images, labels) -> ArrayDataset:
    dataset = ArrayDataset(images, labels)
    seal(dataset.images)
    seal(dataset.labels)
    return dataset


def resolve_task(config: ExperimentConfig) -> Optional[SyntheticImageTask]:
    """The grid-published task for a config, or ``None`` when not published.

    Attaches the store's shared-memory segment on first use per
    ``(worker, dataset)`` and memoizes the assembled task, so every cell a
    worker executes reuses the same read-only views.
    """
    global _WORKER_ATTACHES
    key = dataset_key(config)
    task = _WORKER_TASKS.get(key)
    if task is not None:
        return task
    entry = _WORKER_DATASETS.get(key)
    if entry is None:
        return None
    spec, refs = entry
    arrays = attach_array_store(refs)
    task = SyntheticImageTask(
        spec=spec,
        train=_readonly_dataset(arrays["train/images"], arrays["train/labels"]),
        test=_readonly_dataset(arrays["test/images"], arrays["test/labels"]),
    )
    _WORKER_TASKS[key] = task
    _WORKER_ATTACHES += 1
    return task


def worker_dataset_attaches() -> int:
    """How many dataset stores this process attached (per-process counter)."""
    return _WORKER_ATTACHES


class DatasetBroker:
    """Parent-side owner of the grid's once-per-dataset publications.

    ``use_shared_memory=True`` (process pools) copies each distinct dataset
    into one persistent :class:`~repro.fl.executor.SharedArrayStore` and
    hands workers picklable refs through :meth:`worker_payload`;
    ``False`` (in-process execution) memoizes the materialised task directly
    — either way a dataset is *published* exactly once per host per sweep,
    counted by :attr:`publications`.
    """

    def __init__(self, use_shared_memory: bool = True) -> None:
        self.use_shared_memory = use_shared_memory
        self.publications = 0
        self._stores: Dict[DatasetKey, SharedArrayStore] = {}
        self._payload: Dict[DatasetKey, Tuple[SyntheticImageSpec, Dict[str, SharedArrayRef]]] = {}
        self._inline_keys: Set[DatasetKey] = set()

    def publish(self, configs: Iterable[ExperimentConfig]) -> None:
        """Materialise and publish every distinct dataset among ``configs``."""
        for config in configs:
            key = dataset_key(config)
            if key in self._payload or key in self._inline_keys:
                continue
            task = load_task_for(config)
            published = False
            if self.use_shared_memory:
                arrays = {
                    "train/images": task.train.images,
                    "train/labels": task.train.labels,
                    "test/images": task.test.images,
                    "test/labels": task.test.labels,
                }
                try:
                    store = SharedArrayStore(arrays, persistent=True)
                except (ImportError, OSError):  # pragma: no cover - no POSIX shm
                    pass
                else:
                    self._stores[key] = store
                    self._payload[key] = (task.spec, dict(store.refs))
                    # The publishing process resolves through the same
                    # registry its pool workers will (workers=1, baselines
                    # run in-parent, tests) — install the refs here too.
                    _WORKER_DATASETS[key] = self._payload[key]
                    published = True
            if not published:
                self._install_inline(key, task)
            self.publications += 1

    def _install_inline(self, key: DatasetKey, task: SyntheticImageTask) -> None:
        _WORKER_TASKS[key] = SyntheticImageTask(
            spec=task.spec,
            train=_readonly_dataset(task.train.images, task.train.labels),
            test=_readonly_dataset(task.test.images, task.test.labels),
        )
        self._inline_keys.add(key)

    def worker_payload(self) -> Dict[DatasetKey, Tuple[SyntheticImageSpec, Dict[str, SharedArrayRef]]]:
        """Picklable initializer payload mapping dataset keys to store refs."""
        return dict(self._payload)

    def close(self) -> None:
        """Unlink every published store and clear in-process memos."""
        for store in self._stores.values():
            store.close()
        self._stores.clear()
        for key in list(self._payload):
            _WORKER_TASKS.pop(key, None)
            _WORKER_DATASETS.pop(key, None)
        self._payload.clear()
        for key in self._inline_keys:
            _WORKER_TASKS.pop(key, None)
        self._inline_keys.clear()

    def __enter__(self) -> "DatasetBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
