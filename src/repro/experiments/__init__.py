"""Experiment harness: configuration, runner, grid sweeps, presets and I/O."""

from .config import ExperimentConfig
from .grid import (
    GridBaselineError,
    GridExecutionError,
    GridRunner,
    GridSpec,
    GridStats,
    config_hash,
    expand_grid,
    run_grid,
)
from .io import (
    load_results,
    quarantine_count,
    read_json,
    result_from_dict,
    result_to_dict,
    save_results,
    write_summary_csv,
)
from .presets import benchmark_scale, paper_scale, smoke_scale
from .runner import ExperimentResult, ExperimentRunner, build_simulation, run_experiment
from . import scenarios

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "GridBaselineError",
    "GridExecutionError",
    "GridRunner",
    "GridSpec",
    "GridStats",
    "config_hash",
    "expand_grid",
    "run_grid",
    "build_simulation",
    "run_experiment",
    "benchmark_scale",
    "smoke_scale",
    "paper_scale",
    "scenarios",
    "result_to_dict",
    "result_from_dict",
    "save_results",
    "load_results",
    "read_json",
    "quarantine_count",
    "write_summary_csv",
]
