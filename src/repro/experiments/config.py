"""Experiment configuration: a single dataclass describing one FL experiment.

The same configuration object drives unit-test sized smoke runs, the
scaled-down benchmark harness and paper-scale experiments; only the size
knobs change (see :mod:`repro.experiments.presets`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one attack-vs-defense experiment.

    Attributes mirror Sec. IV-A of the paper; every field has a sensible
    default so that presets only override what they need.
    """

    # Dataset ---------------------------------------------------------------
    dataset: str = "fashion-mnist"
    train_size: int = 600
    test_size: int = 200
    image_size: Optional[int] = None
    dataset_seed: int = 0

    # Model -----------------------------------------------------------------
    architecture: Optional[str] = None
    """Classifier architecture; ``None`` picks the paper's default for the dataset."""

    # Federation ------------------------------------------------------------
    num_clients: int = 100
    clients_per_round: int = 10
    num_rounds: int = 20
    malicious_fraction: float = 0.2
    beta: Optional[float] = 0.5
    """Dirichlet heterogeneity; ``None`` means i.i.d. data."""

    # Local training --------------------------------------------------------
    local_epochs: int = 1
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.0

    # Attack ----------------------------------------------------------------
    attack: Optional[str] = None
    attack_kwargs: Dict[str, Any] = field(default_factory=dict)

    # DFA-specific hyper-parameters (ignored by non-DFA attacks) -------------
    num_synthetic: int = 50
    synthesis_epochs: int = 5
    synthesis_lr: float = 0.01
    train_synthesizer: bool = True
    use_regularization: bool = True
    regularization_weight: float = 1.0

    # Defense ---------------------------------------------------------------
    defense: str = "fedavg"
    defense_kwargs: Dict[str, Any] = field(default_factory=dict)
    assumed_malicious_fraction: Optional[float] = None
    reference_fraction: float = 0.5

    # Reproducibility -------------------------------------------------------
    seed: int = 0

    # Execution plane (not science) -----------------------------------------
    dispatch: Optional[str] = None
    """Dispatch-policy spec string (e.g. ``"adaptive"``, ``"process:4"``,
    ``"adaptive,distance=serial"``) parsed by
    :meth:`repro.fl.dispatch_policy.DispatchPolicy.parse`.  Pure execution
    mechanics: it changes how work is scheduled, never the result, and is
    therefore excluded from :meth:`to_dict` (so result caches and grid
    config hashes are unaffected by it)."""

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.train_size < self.num_clients:
            raise ValueError("train_size must be at least num_clients (one sample per client)")
        if not 0.0 <= self.malicious_fraction < 1.0:
            raise ValueError("malicious_fraction must be in [0, 1)")
        if self.beta is not None and self.beta <= 0:
            raise ValueError("beta must be positive or None (i.i.d.)")
        if self.num_rounds < 1:
            raise ValueError("num_rounds must be at least 1")

    # ------------------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "ExperimentConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **overrides)

    def clean_variant(self) -> "ExperimentConfig":
        """The matching no-attack / no-defense configuration (for ``acc``)."""
        return self.with_overrides(
            attack=None,
            attack_kwargs={},
            defense="fedavg",
            defense_kwargs={},
            malicious_fraction=0.0,
        )

    def dataset_key(self) -> Tuple:
        """The fields that determine the generated dataset, and nothing else.

        The single source of truth for "same dataset": grid-level dataset
        sharing (:mod:`repro.experiments.dispatch`) publishes one store per
        distinct key, and :meth:`baseline_key` builds on it.  Any new
        config field that changes what ``load_dataset`` produces must be
        added here.
        """
        return (
            self.dataset,
            self.train_size,
            self.test_size,
            self.image_size,
            self.dataset_seed,
        )

    def baseline_key(self) -> Tuple:
        """Hashable key identifying the clean baseline this config maps to.

        Two configurations that only differ in attack/defense settings share
        the same clean baseline run, so benchmark sweeps can cache it.
        """
        return self.dataset_key() + (
            self.architecture,
            self.num_clients,
            self.clients_per_round,
            self.num_rounds,
            self.beta,
            self.local_epochs,
            self.batch_size,
            self.learning_rate,
            self.momentum,
            self.seed,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dictionary form (useful for logging / serialization).

        Excludes ``dispatch``: it is execution mechanics, not part of the
        experiment's identity, so cache keys and stored configs stay stable
        across machines with different dispatch settings.
        """
        data = asdict(self)
        data.pop("dispatch", None)
        return data
